// Post-training quantization: float MLP -> integer-only QuantizedMlp.
//
// This is the model hand-off the paper describes: "ML training could be
// performed in real-time in userspace using floating point operations, with
// models periodically quantized and pushed to the kernel for inference"
// (section 3.2). Quantization here is symmetric per-layer int16 with a
// power-of-two scale: weights w are stored as round(w * 2^shift) and the
// matvec accumulator is shifted back, so inference uses only integer
// multiply/add/shift — admissible under the VM's no-FPU rule.
//
// Feature standardization is folded into the first layer
// (W'/sigma, b' = b - W mu / sigma), so the in-kernel model consumes raw
// Q16.16 feature values with no float preprocessing.
#ifndef SRC_ML_QUANTIZE_H_
#define SRC_ML_QUANTIZE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/base/status.h"
#include "src/ml/mlp.h"
#include "src/ml/model.h"

namespace rkd {

class QuantizedMlp final : public InferenceModel {
 public:
  // Default-constructed instances are empty (Predict returns 0); build real
  // models with FromMlp.
  QuantizedMlp() = default;

  struct QuantLayer {
    uint32_t out_dim = 0;
    uint32_t in_dim = 0;
    int shift = 0;                 // weights are scaled by 2^shift
    std::vector<int16_t> weights;  // row-major out_dim x in_dim
    std::vector<int32_t> biases;   // Q16.16
  };

  // Quantizes a trained float MLP. Fails if any folded weight cannot be
  // represented in int16 even at shift 0 (pathologically large weights).
  static Result<QuantizedMlp> FromMlp(const Mlp& mlp);

  // Reconstructs a model from serialized layers. Validates dimensional
  // consistency between consecutive layers and within each layer.
  static Result<QuantizedMlp> FromLayers(std::vector<QuantLayer> layers);

  // InferenceModel: `features` are raw values in Q16.16. Returns the argmax
  // class.
  int64_t Predict(std::span<const int32_t> features) const override;
  size_t num_features() const override {
    return layers_.empty() ? 0 : layers_.front().in_dim;
  }
  ModelCost Cost() const override;
  std::string_view kind() const override { return "quantized_mlp"; }

  // Q16.16 output scores (pre-argmax), for tests and distillation.
  std::vector<int32_t> Scores(std::span<const int32_t> features_q16) const;

  // Convenience: predict from raw (non-Q16.16) integer features, converting
  // with a saturating left shift. Mirrors what an RMT action does with
  // ShlImm(16) before kMlCall.
  int64_t PredictRaw(std::span<const int32_t> raw_features) const;

  // Agreement rate with the float teacher on a dataset (quantization QA).
  double Evaluate(const Dataset& data) const;

  const std::vector<QuantLayer>& layers() const { return layers_; }
  int32_t num_classes() const { return num_classes_; }

 private:
  std::vector<QuantLayer> layers_;
  int32_t num_classes_ = 0;
};

// Saturating conversion of a raw integer feature to Q16.16.
int32_t RawToQ16(int64_t raw);

// Adapter installing a QuantizedMlp behind a raw-integer feature interface:
// Predict() converts each lane with RawToQ16 before delegating. Use when the
// collecting table stores raw values (deltas, counters) rather than Q16.16 —
// e.g. swapping an MLP into a slot that a decision tree usually occupies.
class QuantizedMlpRawAdapter final : public InferenceModel {
 public:
  explicit QuantizedMlpRawAdapter(QuantizedMlp inner) : inner_(std::move(inner)) {}

  int64_t Predict(std::span<const int32_t> features) const override {
    return inner_.PredictRaw(features);
  }
  size_t num_features() const override { return inner_.num_features(); }
  ModelCost Cost() const override { return inner_.Cost(); }
  std::string_view kind() const override { return "quantized_mlp_raw"; }

  const QuantizedMlp& inner() const { return inner_; }

 private:
  QuantizedMlp inner_;
};

}  // namespace rkd

#endif  // SRC_ML_QUANTIZE_H_
