// Knowledge distillation: big "teacher" -> small in-kernel "student".
//
// The paper's inference story (section 3.2) leans on distillation to convert
// large teacher models into "drastically smaller students ... (e.g., simpler
// NNs or even decision trees)", with tree students additionally exposing
// which features matter (feeding lean monitoring). DistillToTree relabels a
// transfer dataset with the teacher's predictions and fits an integer
// decision tree to them.
#ifndef SRC_ML_DISTILL_H_
#define SRC_ML_DISTILL_H_

#include <functional>

#include "src/base/status.h"
#include "src/ml/dataset.h"
#include "src/ml/decision_tree.h"

namespace rkd {

// Trains a DecisionTree on `transfer_set` features labeled by `teacher`
// (a raw-integer-features -> class function, so any teacher type works).
Result<DecisionTree> DistillToTree(
    const std::function<int64_t(std::span<const int32_t>)>& teacher,
    const Dataset& transfer_set, const DecisionTreeConfig& config = {});

// Fidelity: fraction of `data` rows where the student reproduces the
// teacher's prediction (not the ground-truth label).
double DistillationFidelity(const std::function<int64_t(std::span<const int32_t>)>& teacher,
                            const DecisionTree& student, const Dataset& data);

}  // namespace rkd

#endif  // SRC_ML_DISTILL_H_
