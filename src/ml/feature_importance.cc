#include "src/ml/feature_importance.h"

#include <algorithm>

namespace rkd {

std::vector<double> PermutationImportance(
    const std::function<int64_t(std::span<const int32_t>)>& predict, const Dataset& data,
    Rng& rng, size_t repeats) {
  std::vector<double> importance(data.num_features(), 0.0);
  if (data.empty()) {
    return importance;
  }

  size_t baseline_correct = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (predict(data.row(i)) == data.label(i)) {
      ++baseline_correct;
    }
  }
  const double baseline =
      static_cast<double>(baseline_correct) / static_cast<double>(data.size());

  std::vector<int32_t> column(data.size());
  std::vector<int32_t> scratch_row(data.num_features());
  for (size_t f = 0; f < data.num_features(); ++f) {
    double total_drop = 0.0;
    for (size_t rep = 0; rep < repeats; ++rep) {
      for (size_t i = 0; i < data.size(); ++i) {
        column[i] = data.row(i)[f];
      }
      rng.Shuffle(column.begin(), column.end());
      size_t correct = 0;
      for (size_t i = 0; i < data.size(); ++i) {
        const auto row = data.row(i);
        std::copy(row.begin(), row.end(), scratch_row.begin());
        scratch_row[f] = column[i];
        if (predict(scratch_row) == data.label(i)) {
          ++correct;
        }
      }
      total_drop += baseline - static_cast<double>(correct) / static_cast<double>(data.size());
    }
    importance[f] = total_drop / static_cast<double>(repeats);
  }
  return importance;
}

std::vector<size_t> RankFeatures(const std::vector<double>& importance) {
  std::vector<size_t> order(importance.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return importance[a] > importance[b]; });
  return order;
}

FeatureSelection SelectTopFeatures(const Dataset& data, const std::vector<double>& importance,
                                   size_t keep) {
  FeatureSelection out;
  const std::vector<size_t> ranked = RankFeatures(importance);
  keep = std::min(keep, ranked.size());
  out.selected.assign(ranked.begin(), ranked.begin() + static_cast<long>(keep));
  out.projected = Dataset(keep);
  std::vector<int32_t> row(keep);
  for (size_t i = 0; i < data.size(); ++i) {
    const auto full = data.row(i);
    for (size_t k = 0; k < keep; ++k) {
      row[k] = full[out.selected[k]];
    }
    out.projected.Add(row, data.label(i));
  }
  return out;
}

std::vector<int32_t> ProjectRow(std::span<const int32_t> row,
                                const std::vector<size_t>& selected) {
  std::vector<int32_t> out(selected.size());
  for (size_t k = 0; k < selected.size(); ++k) {
    out[k] = selected[k] < row.size() ? row[selected[k]] : 0;
  }
  return out;
}

}  // namespace rkd
