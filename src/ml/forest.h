// Random forest: bagged integer decision trees with majority vote.
//
// The natural capacity step between a single tree and an MLP in the model
// library of section 3.2: still pure integer comparisons at inference (so
// admissible in-kernel), much more robust than one tree on noisy monitoring
// data, and its cost model is simply the sum of its trees — which lets the
// verifier trade tree count against the hook budget explicitly.
#ifndef SRC_ML_FOREST_H_
#define SRC_ML_FOREST_H_

#include <cstdint>
#include <vector>

#include "src/base/status.h"
#include "src/ml/decision_tree.h"

namespace rkd {

struct ForestConfig {
  uint32_t num_trees = 8;
  double bootstrap_fraction = 0.8;  // samples drawn (with replacement) per tree
  // Features considered per tree: a random subset of this fraction (>= 1
  // feature), the classic decorrelation trick. Implemented by masking the
  // disabled features to a constant in that tree's bootstrap sample.
  double feature_fraction = 0.7;
  DecisionTreeConfig tree;
  uint64_t seed = 23;
};

class RandomForest final : public InferenceModel {
 public:
  static Result<RandomForest> Train(const Dataset& data, const ForestConfig& config = {});

  // Reassembles a forest from member trees (the serialization path). The
  // class count is recovered from the largest leaf label.
  static Result<RandomForest> FromTrees(std::vector<DecisionTree> trees);

  // InferenceModel: majority vote over the trees (ties break to the lower
  // class id, deterministically).
  int64_t Predict(std::span<const int32_t> features) const override;
  size_t num_features() const override { return num_features_; }
  ModelCost Cost() const override;
  std::string_view kind() const override { return "random_forest"; }

  double Evaluate(const Dataset& data) const;

  // Mean impurity importance across trees (normalized).
  std::vector<double> FeatureImportance() const;

  size_t tree_count() const { return trees_.size(); }
  const std::vector<DecisionTree>& trees() const { return trees_; }

 private:
  RandomForest() = default;

  size_t num_features_ = 0;
  int32_t num_classes_ = 0;
  std::vector<DecisionTree> trees_;
};

}  // namespace rkd

#endif  // SRC_ML_FOREST_H_
