// Labeled datasets exchanged between the monitoring plane and the trainers.
//
// Feature values are int32 in whatever unit the collecting RMT table recorded
// (page deltas, run-queue lengths, ...). Integer models (decision tree,
// integer linear) train on these directly; the float MLP standardizes them
// internally. Labels are small non-negative class ids.
#ifndef SRC_ML_DATASET_H_
#define SRC_ML_DATASET_H_

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "src/base/rng.h"

namespace rkd {

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(size_t num_features) : num_features_(num_features) {}

  size_t num_features() const { return num_features_; }
  size_t size() const { return y_.size(); }
  bool empty() const { return y_.empty(); }

  void Add(std::span<const int32_t> features, int32_t label) {
    assert(features.size() == num_features_);
    x_.insert(x_.end(), features.begin(), features.end());
    y_.push_back(label);
  }

  std::span<const int32_t> row(size_t i) const {
    return std::span<const int32_t>(x_).subspan(i * num_features_, num_features_);
  }
  int32_t label(size_t i) const { return y_[i]; }
  void set_label(size_t i, int32_t label) { y_[i] = label; }

  // Number of classes = max label + 1 (0 when empty).
  int32_t NumClasses() const {
    int32_t max_label = -1;
    for (int32_t label : y_) {
      max_label = label > max_label ? label : max_label;
    }
    return max_label + 1;
  }

  void Clear() {
    x_.clear();
    y_.clear();
  }

  // Deterministic split into train/test by shuffled index; test_fraction of
  // rows go to the second returned dataset.
  std::pair<Dataset, Dataset> Split(double test_fraction, Rng& rng) const {
    std::vector<size_t> order(size());
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    rng.Shuffle(order.begin(), order.end());
    const auto test_count = static_cast<size_t>(static_cast<double>(size()) * test_fraction);
    Dataset train(num_features_);
    Dataset test(num_features_);
    for (size_t i = 0; i < order.size(); ++i) {
      Dataset& target = i < test_count ? test : train;
      target.Add(row(order[i]), label(order[i]));
    }
    return {train, test};
  }

 private:
  size_t num_features_ = 0;
  std::vector<int32_t> x_;  // row-major, size() * num_features_
  std::vector<int32_t> y_;
};

}  // namespace rkd

#endif  // SRC_ML_DATASET_H_
