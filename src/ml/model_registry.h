// Registries binding bytecode resource ids to ML objects.
//
// A verified RMT program references models (kMlCall) and weight tensors
// (kMatMul / kVecAddT) by small integer ids. The control plane owns these
// registries and can hot-swap entries at runtime (model updates from the
// training plane), while the VM only ever reads snapshots.
#ifndef SRC_ML_MODEL_REGISTRY_H_
#define SRC_ML_MODEL_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/base/epoch.h"
#include "src/base/status.h"
#include "src/ml/model.h"
#include "src/ml/online.h"
#include "src/ml/tensor.h"

namespace rkd {

// The slot directory is published through an EpochPtr so the VM's per-kMlCall
// Get() is a lock-free epoch-protected read (the old mutex sat directly on
// the inference datapath). Slot objects live in stable storage for the
// registry's lifetime; AddSlot republishes the directory under the writer
// mutex.
class ModelRegistry {
 public:
  ModelRegistry() = default;

  // Returns the id of the newly added slot (initially empty).
  int64_t AddSlot();

  // Installs or replaces the model in `slot`.
  Status Install(int64_t slot, ModelPtr model);

  // Snapshot of the model in `slot`; nullptr if empty or out of range.
  // Datapath-safe: epoch-protected, no lock.
  ModelPtr Get(int64_t slot) const;

  // Direct slot access for trainers that publish through ModelSlot. The
  // returned slot lives for the registry's lifetime.
  ModelSlot* slot(int64_t id);

  size_t size() const;

 private:
  struct Directory {
    std::vector<ModelSlot*> slots;  // not owned; stable storage below
  };

  mutable std::mutex mutex_;  // writers and slow-path accessors
  // ModelSlot is not movable (writer mutex member), hence unique_ptr
  // elements; pointers handed out stay valid as the vector grows.
  std::vector<std::unique_ptr<ModelSlot>> owned_;  // guarded by mutex_
  EpochPtr<const Directory> dir_;
};

class TensorRegistry {
 public:
  // Registers a weight matrix; returns its tensor id.
  int64_t Add(FixedMatrix tensor);

  // Registers a bias vector as a rows x 1 matrix; returns its tensor id.
  int64_t AddVector(std::span<const int32_t> values);

  const FixedMatrix* Get(int64_t id) const;
  size_t size() const { return tensors_.size(); }

 private:
  std::vector<FixedMatrix> tensors_;
};

}  // namespace rkd

#endif  // SRC_ML_MODEL_REGISTRY_H_
