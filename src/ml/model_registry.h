// Registries binding bytecode resource ids to ML objects.
//
// A verified RMT program references models (kMlCall) and weight tensors
// (kMatMul / kVecAddT) by small integer ids. The control plane owns these
// registries and can hot-swap entries at runtime (model updates from the
// training plane), while the VM only ever reads snapshots.
#ifndef SRC_ML_MODEL_REGISTRY_H_
#define SRC_ML_MODEL_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/base/status.h"
#include "src/ml/model.h"
#include "src/ml/online.h"
#include "src/ml/tensor.h"

namespace rkd {

class ModelRegistry {
 public:
  // Returns the id of the newly added slot (initially empty).
  int64_t AddSlot();

  // Installs or replaces the model in `slot`.
  Status Install(int64_t slot, ModelPtr model);

  // Snapshot of the model in `slot`; nullptr if empty or out of range.
  ModelPtr Get(int64_t slot) const;

  // Direct slot access for trainers that publish through ModelSlot.
  ModelSlot* slot(int64_t id);

  size_t size() const;

 private:
  mutable std::mutex mutex_;
  // ModelSlot is not movable (mutex member), hence unique_ptr elements.
  std::vector<std::unique_ptr<ModelSlot>> slots_;
};

class TensorRegistry {
 public:
  // Registers a weight matrix; returns its tensor id.
  int64_t Add(FixedMatrix tensor);

  // Registers a bias vector as a rows x 1 matrix; returns its tensor id.
  int64_t AddVector(std::span<const int32_t> values);

  const FixedMatrix* Get(int64_t id) const;
  size_t size() const { return tensors_.size(); }

 private:
  std::vector<FixedMatrix> tensors_;
};

}  // namespace rkd

#endif  // SRC_ML_MODEL_REGISTRY_H_
