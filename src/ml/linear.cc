#include "src/ml/linear.h"

#include <algorithm>
#include <cmath>

#include "src/base/fixed_point.h"
#include "src/base/rng.h"

namespace rkd {

Result<IntegerLinear> IntegerLinear::Train(const Dataset& data, const LinearConfig& config) {
  if (data.empty()) {
    return InvalidArgumentError("IntegerLinear::Train: empty dataset");
  }
  for (size_t i = 0; i < data.size(); ++i) {
    if (data.label(i) != 0 && data.label(i) != 1) {
      return InvalidArgumentError("IntegerLinear::Train: labels must be binary (0/1)");
    }
  }
  const size_t num_features = data.num_features();

  // Standardization statistics.
  std::vector<float> mean(num_features, 0.0f);
  std::vector<float> stddev(num_features, 0.0f);
  for (size_t i = 0; i < data.size(); ++i) {
    const auto row = data.row(i);
    for (size_t f = 0; f < num_features; ++f) {
      mean[f] += static_cast<float>(row[f]);
    }
  }
  for (float& m : mean) {
    m /= static_cast<float>(data.size());
  }
  for (size_t i = 0; i < data.size(); ++i) {
    const auto row = data.row(i);
    for (size_t f = 0; f < num_features; ++f) {
      const float d = static_cast<float>(row[f]) - mean[f];
      stddev[f] += d * d;
    }
  }
  for (float& s : stddev) {
    s = std::sqrt(s / static_cast<float>(data.size()));
    if (s < 1e-6f) {
      s = 1.0f;
    }
  }

  // Hinge-loss SGD on standardized features, y in {-1, +1}.
  Rng rng(config.seed);
  std::vector<float> w(num_features, 0.0f);
  float b = 0.0f;
  std::vector<size_t> order(data.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(order.begin(), order.end());
    for (size_t i : order) {
      const auto row = data.row(i);
      const float y = data.label(i) == 1 ? 1.0f : -1.0f;
      float margin = b;
      for (size_t f = 0; f < num_features; ++f) {
        margin += w[f] * (static_cast<float>(row[f]) - mean[f]) / stddev[f];
      }
      if (y * margin < 1.0f) {
        for (size_t f = 0; f < num_features; ++f) {
          const float x = (static_cast<float>(row[f]) - mean[f]) / stddev[f];
          w[f] += config.learning_rate * (y * x - config.l2 * w[f]);
        }
        b += config.learning_rate * y;
      } else {
        for (size_t f = 0; f < num_features; ++f) {
          w[f] -= config.learning_rate * config.l2 * w[f];
        }
      }
    }
  }

  // Fold standardization and quantize to Q16.16:
  //   decision = sum w[f] (x - mu)/sigma + b = sum (w/sigma) x + (b - sum w mu/sigma).
  IntegerLinear model;
  model.weights_q16_.resize(num_features);
  double folded_bias = b;
  for (size_t f = 0; f < num_features; ++f) {
    const double folded_w = static_cast<double>(w[f]) / stddev[f];
    model.weights_q16_[f] = Fixed32::FromDouble(folded_w).raw();
    folded_bias -= folded_w * mean[f];
  }
  model.bias_q16_ = static_cast<int64_t>(folded_bias * Fixed32::kOneRaw);
  return model;
}

Result<IntegerLinear> IntegerLinear::FromWeights(std::vector<int32_t> weights_q16,
                                                 int64_t bias_q16) {
  if (weights_q16.empty()) {
    return InvalidArgumentError("IntegerLinear::FromWeights: no weights");
  }
  IntegerLinear model;
  model.weights_q16_ = std::move(weights_q16);
  model.bias_q16_ = bias_q16;
  return model;
}

int64_t IntegerLinear::DecisionValue(std::span<const int32_t> features) const {
  int64_t acc = bias_q16_;
  for (size_t f = 0; f < weights_q16_.size(); ++f) {
    const int32_t x = f < features.size() ? features[f] : 0;
    acc += (static_cast<int64_t>(weights_q16_[f]) * x);
  }
  return acc;
}

int64_t IntegerLinear::Predict(std::span<const int32_t> features) const {
  return DecisionValue(features) >= 0 ? 1 : 0;
}

ModelCost IntegerLinear::Cost() const {
  ModelCost cost;
  cost.macs = weights_q16_.size();
  cost.param_bytes = weights_q16_.size() * sizeof(int32_t) + sizeof(int64_t);
  cost.depth = 1;
  return cost;
}

double IntegerLinear::Evaluate(const Dataset& data) const {
  if (data.empty()) {
    return 0.0;
  }
  size_t correct = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (Predict(data.row(i)) == data.label(i)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace rkd
