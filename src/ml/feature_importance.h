// Feature importance ranking — the machinery behind "lean monitoring".
//
// The paper's benefit #1 (section 2.1) and case study #2 both hinge on
// identifying which monitored features actually drive decisions so the rest
// of the monitoring can be switched off: "we used the scikit-learn toolbox to
// rank and identify two key features for load balancing (out of 15)". Two
// standard estimators are provided: impurity-based (from a decision tree's
// gini decreases) and model-agnostic permutation importance.
#ifndef SRC_ML_FEATURE_IMPORTANCE_H_
#define SRC_ML_FEATURE_IMPORTANCE_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "src/base/rng.h"
#include "src/ml/dataset.h"
#include "src/ml/model.h"

namespace rkd {

// Accuracy drop when feature f's column is shuffled, averaged over `repeats`
// shuffles: importance[f] = baseline_accuracy - mean(shuffled_accuracy).
// `predict` maps a raw integer feature row to a class id, so the estimator is
// agnostic to model type and numeric representation.
std::vector<double> PermutationImportance(
    const std::function<int64_t(std::span<const int32_t>)>& predict, const Dataset& data,
    Rng& rng, size_t repeats = 3);

// Indices of features sorted by descending importance.
std::vector<size_t> RankFeatures(const std::vector<double>& importance);

// Keeps only the `keep` most important features: returns the dataset
// projected onto those columns plus the selected column indices, in the
// original order of importance rank. This is the "lean monitoring" transform:
// the discarded columns correspond to monitors the kernel can stop running.
struct FeatureSelection {
  std::vector<size_t> selected;  // column indices into the original dataset
  Dataset projected;
};
FeatureSelection SelectTopFeatures(const Dataset& data, const std::vector<double>& importance,
                                   size_t keep);

// Projects a single raw feature row onto previously selected columns.
std::vector<int32_t> ProjectRow(std::span<const int32_t> row,
                                const std::vector<size_t>& selected);

}  // namespace rkd

#endif  // SRC_ML_FEATURE_IMPORTANCE_H_
