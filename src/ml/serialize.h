// Binary wire format for installable models.
//
// Section 3.2's deployment loop — "ML training could be performed in
// real-time in userspace ... with models periodically quantized and pushed
// to the kernel for inference" — needs a serialized model crossing the
// boundary. This format covers every integer model family the VM can host
// (decision tree, quantized MLP, integer linear); deserialization validates
// structure through each family's FromParts/FromLayers/FromWeights factory,
// so a hostile blob cannot produce a model that walks out of bounds.
#ifndef SRC_ML_SERIALIZE_H_
#define SRC_ML_SERIALIZE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/base/status.h"
#include "src/ml/model.h"

namespace rkd {

inline constexpr uint32_t kModelMagic = 0x4d444b52;  // "RKDM"
inline constexpr uint32_t kModelVersion = 1;

// Serializes any supported model. Fails for unknown kinds.
Result<std::vector<uint8_t>> SerializeModel(const InferenceModel& model);

// Reconstructs and validates a model from its wire form.
Result<ModelPtr> DeserializeModel(std::span<const uint8_t> bytes);

}  // namespace rkd

#endif  // SRC_ML_SERIALIZE_H_
