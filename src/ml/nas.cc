#include "src/ml/nas.h"

namespace rkd {

namespace {

// Static work-unit cost of an architecture without training it: an MLP's MAC
// count is architecture-only, so over-budget candidates are skipped before
// any training (the on-demand-compression spirit of section 3.2).
uint64_t ArchitectureWorkUnits(size_t num_features, const std::vector<size_t>& hidden,
                               size_t num_classes) {
  uint64_t macs = 0;
  size_t in_dim = num_features;
  for (size_t width : hidden) {
    macs += static_cast<uint64_t>(in_dim) * width;
    in_dim = width;
  }
  macs += static_cast<uint64_t>(in_dim) * num_classes;
  ModelCost cost;
  cost.macs = macs;
  return cost.WorkUnits();
}

}  // namespace

Result<NasResult> RandomSearchNas(const Dataset& data, const NasConfig& config) {
  if (data.size() < 8) {
    return InvalidArgumentError("RandomSearchNas: dataset too small");
  }
  Rng rng(config.seed);
  auto [train, validation] = data.Split(config.validation_fraction, rng);
  if (train.empty() || validation.empty()) {
    return InvalidArgumentError("RandomSearchNas: split produced an empty partition");
  }
  const auto num_classes = static_cast<size_t>(data.NumClasses());

  NasResult best;
  bool found = false;
  for (size_t trial = 0; trial < config.trials; ++trial) {
    std::vector<size_t> hidden(rng.NextBounded(config.max_layers) + 1);
    for (size_t& width : hidden) {
      width = static_cast<size_t>(
          rng.NextInt(static_cast<int64_t>(config.min_width),
                      static_cast<int64_t>(config.max_width)));
    }
    const uint64_t work =
        ArchitectureWorkUnits(data.num_features(), hidden, num_classes);
    if (config.work_unit_budget != 0 && work > config.work_unit_budget) {
      ++best.trials_over_budget;
      continue;
    }
    MlpConfig mlp_config;
    mlp_config.hidden_sizes = hidden;
    mlp_config.epochs = config.search_epochs;
    mlp_config.seed = rng.Next();
    Result<Mlp> candidate = Mlp::Train(train, mlp_config);
    if (!candidate.ok()) {
      continue;
    }
    ++best.trials_evaluated;
    const double accuracy = candidate->Evaluate(validation);
    if (!found || accuracy > best.validation_accuracy) {
      found = true;
      best.hidden_sizes = hidden;
      best.validation_accuracy = accuracy;
      best.work_units = work;
    }
  }
  if (!found) {
    return ResourceExhaustedError(
        "RandomSearchNas: no sampled architecture fits the work-unit budget");
  }

  // Retrain the winner on all data with the full epoch budget, then quantize.
  MlpConfig final_config;
  final_config.hidden_sizes = best.hidden_sizes;
  final_config.epochs = config.final_epochs;
  final_config.seed = config.seed;
  RKD_ASSIGN_OR_RETURN(Mlp final_mlp, Mlp::Train(data, final_config));
  RKD_ASSIGN_OR_RETURN(best.model, QuantizedMlp::FromMlp(final_mlp));
  best.work_units = best.model.Cost().WorkUnits();
  return best;
}

}  // namespace rkd
