#include "src/ml/quantize.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rkd {

int32_t RawToQ16(int64_t raw) {
  const int64_t wide = raw << 16;
  if (wide > std::numeric_limits<int32_t>::max()) {
    return std::numeric_limits<int32_t>::max();
  }
  if (wide < std::numeric_limits<int32_t>::min()) {
    return std::numeric_limits<int32_t>::min();
  }
  return static_cast<int32_t>(wide);
}

Result<QuantizedMlp> QuantizedMlp::FromMlp(const Mlp& mlp) {
  QuantizedMlp out;
  out.num_classes_ = mlp.num_classes();
  const auto& layers = mlp.layers();
  for (size_t l = 0; l < layers.size(); ++l) {
    const Mlp::Layer& src = layers[l];
    QuantLayer q;
    q.out_dim = static_cast<uint32_t>(src.weights.rows());
    q.in_dim = static_cast<uint32_t>(src.weights.cols());

    // Fold standardization into layer 0: w' = w / sigma, b' = b - w mu/sigma.
    FloatMatrix folded = src.weights;
    std::vector<float> folded_bias = src.biases;
    if (l == 0) {
      const auto mean = mlp.feature_mean();
      const auto stddev = mlp.feature_stddev();
      for (size_t r = 0; r < folded.rows(); ++r) {
        for (size_t c = 0; c < folded.cols(); ++c) {
          const float w = folded.at(r, c) / stddev[c];
          folded.at(r, c) = w;
          folded_bias[r] -= w * mean[c];
        }
      }
    }

    float max_abs = 0.0f;
    for (float w : folded.data()) {
      max_abs = std::max(max_abs, std::abs(w));
    }
    // Largest shift such that max|w| * 2^shift fits int16.
    int shift = 14;
    while (shift > 0 && max_abs * static_cast<float>(1 << shift) > 32000.0f) {
      --shift;
    }
    if (max_abs * static_cast<float>(1 << shift) > 32000.0f) {
      return InvalidArgumentError("QuantizedMlp: weight magnitude too large to quantize");
    }
    q.shift = shift;
    q.weights.resize(static_cast<size_t>(q.out_dim) * q.in_dim);
    for (size_t r = 0; r < folded.rows(); ++r) {
      for (size_t c = 0; c < folded.cols(); ++c) {
        q.weights[r * q.in_dim + c] = static_cast<int16_t>(
            std::lround(folded.at(r, c) * static_cast<float>(1 << shift)));
      }
    }
    q.biases.resize(q.out_dim);
    for (size_t r = 0; r < q.out_dim; ++r) {
      q.biases[r] = Fixed32::FromDouble(folded_bias[r]).raw();
    }
    out.layers_.push_back(std::move(q));
  }
  return out;
}

Result<QuantizedMlp> QuantizedMlp::FromLayers(std::vector<QuantLayer> layers) {
  if (layers.empty()) {
    return InvalidArgumentError("QuantizedMlp::FromLayers: no layers");
  }
  for (size_t l = 0; l < layers.size(); ++l) {
    const QuantLayer& layer = layers[l];
    if (layer.out_dim == 0 || layer.in_dim == 0 ||
        layer.weights.size() != static_cast<size_t>(layer.out_dim) * layer.in_dim ||
        layer.biases.size() != layer.out_dim || layer.shift < 0 || layer.shift > 30) {
      return InvalidArgumentError("QuantizedMlp::FromLayers: malformed layer " +
                                  std::to_string(l));
    }
    if (l > 0 && layers[l - 1].out_dim != layer.in_dim) {
      return InvalidArgumentError("QuantizedMlp::FromLayers: dimension mismatch at layer " +
                                  std::to_string(l));
    }
  }
  QuantizedMlp out;
  out.num_classes_ = static_cast<int32_t>(layers.back().out_dim);
  out.layers_ = std::move(layers);
  return out;
}

std::vector<int32_t> QuantizedMlp::Scores(std::span<const int32_t> features_q16) const {
  std::vector<int32_t> current(features_q16.begin(), features_q16.end());
  std::vector<int32_t> next;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const QuantLayer& layer = layers_[l];
    next.assign(layer.out_dim, 0);
    for (uint32_t r = 0; r < layer.out_dim; ++r) {
      int64_t acc = 0;
      const int16_t* row = &layer.weights[static_cast<size_t>(r) * layer.in_dim];
      for (uint32_t c = 0; c < layer.in_dim; ++c) {
        const int32_t x = c < current.size() ? current[c] : 0;
        acc += static_cast<int64_t>(row[c]) * x;
      }
      acc >>= layer.shift;  // back to Q16.16
      acc += layer.biases[r];
      // Saturate into int32.
      if (acc > std::numeric_limits<int32_t>::max()) {
        acc = std::numeric_limits<int32_t>::max();
      } else if (acc < std::numeric_limits<int32_t>::min()) {
        acc = std::numeric_limits<int32_t>::min();
      }
      int32_t v = static_cast<int32_t>(acc);
      if (l + 1 < layers_.size() && v < 0) {
        v = 0;  // ReLU on hidden layers
      }
      next[r] = v;
    }
    current.swap(next);
  }
  return current;
}

int64_t QuantizedMlp::Predict(std::span<const int32_t> features) const {
  if (layers_.empty()) {
    return 0;  // empty (default-constructed) model
  }
  const std::vector<int32_t> scores = Scores(features);
  if (scores.empty()) {
    return 0;
  }
  return std::max_element(scores.begin(), scores.end()) - scores.begin();
}

int64_t QuantizedMlp::PredictRaw(std::span<const int32_t> raw_features) const {
  std::vector<int32_t> q16(raw_features.size());
  for (size_t i = 0; i < raw_features.size(); ++i) {
    q16[i] = RawToQ16(raw_features[i]);
  }
  return Predict(q16);
}

ModelCost QuantizedMlp::Cost() const {
  ModelCost cost;
  for (const QuantLayer& layer : layers_) {
    cost.macs += static_cast<uint64_t>(layer.out_dim) * layer.in_dim;
    cost.param_bytes += layer.weights.size() * sizeof(int16_t) +
                        layer.biases.size() * sizeof(int32_t);
  }
  cost.depth = static_cast<uint32_t>(layers_.size());
  return cost;
}

double QuantizedMlp::Evaluate(const Dataset& data) const {
  if (data.empty()) {
    return 0.0;
  }
  size_t correct = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (PredictRaw(data.row(i)) == data.label(i)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace rkd
