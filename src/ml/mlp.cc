#include "src/ml/mlp.h"

#include <algorithm>
#include <cmath>

#include "src/base/rng.h"

namespace rkd {

namespace {

// Forward pass storing every layer's post-activation output (index 0 is the
// input itself); the final entry is the raw logits.
void Forward(const std::vector<Mlp::Layer>& layers, std::span<const float> input,
             std::vector<std::vector<float>>& activations) {
  activations.resize(layers.size() + 1);
  activations[0].assign(input.begin(), input.end());
  for (size_t l = 0; l < layers.size(); ++l) {
    const Mlp::Layer& layer = layers[l];
    const std::vector<float>& in = activations[l];
    std::vector<float>& out = activations[l + 1];
    out.assign(layer.biases.begin(), layer.biases.end());
    for (size_t r = 0; r < layer.weights.rows(); ++r) {
      float acc = out[r];
      const std::span<const float> row = layer.weights.row(r);
      for (size_t c = 0; c < row.size(); ++c) {
        acc += row[c] * in[c];
      }
      out[r] = acc;
    }
    if (l + 1 < layers.size()) {
      for (float& v : out) {
        v = v > 0.0f ? v : 0.0f;  // ReLU on hidden layers only
      }
    }
  }
}

void Softmax(std::vector<float>& logits) {
  float max_logit = logits[0];
  for (float v : logits) {
    max_logit = std::max(max_logit, v);
  }
  float total = 0.0f;
  for (float& v : logits) {
    v = std::exp(v - max_logit);
    total += v;
  }
  for (float& v : logits) {
    v /= total;
  }
}

}  // namespace

Result<Mlp> Mlp::Train(const Dataset& data, const MlpConfig& config) {
  if (data.empty()) {
    return InvalidArgumentError("Mlp::Train: empty dataset");
  }
  const int32_t num_classes = data.NumClasses();
  if (num_classes < 2) {
    return InvalidArgumentError("Mlp::Train: need at least two classes");
  }

  Mlp mlp;
  mlp.num_classes_ = num_classes;
  const size_t num_features = data.num_features();

  // Standardization statistics from the training set. A zero-variance
  // feature gets stddev 1 so it standardizes to a constant instead of NaN.
  mlp.feature_mean_.assign(num_features, 0.0f);
  mlp.feature_stddev_.assign(num_features, 0.0f);
  for (size_t i = 0; i < data.size(); ++i) {
    const auto row = data.row(i);
    for (size_t f = 0; f < num_features; ++f) {
      mlp.feature_mean_[f] += static_cast<float>(row[f]);
    }
  }
  for (float& m : mlp.feature_mean_) {
    m /= static_cast<float>(data.size());
  }
  for (size_t i = 0; i < data.size(); ++i) {
    const auto row = data.row(i);
    for (size_t f = 0; f < num_features; ++f) {
      const float d = static_cast<float>(row[f]) - mlp.feature_mean_[f];
      mlp.feature_stddev_[f] += d * d;
    }
  }
  for (float& s : mlp.feature_stddev_) {
    s = std::sqrt(s / static_cast<float>(data.size()));
    if (s < 1e-6f) {
      s = 1.0f;
    }
  }

  // He-initialized layers.
  Rng rng(config.seed);
  std::vector<size_t> sizes;
  sizes.push_back(num_features);
  sizes.insert(sizes.end(), config.hidden_sizes.begin(), config.hidden_sizes.end());
  sizes.push_back(static_cast<size_t>(num_classes));
  for (size_t l = 0; l + 1 < sizes.size(); ++l) {
    Layer layer;
    layer.weights = FloatMatrix(sizes[l + 1], sizes[l]);
    layer.biases.assign(sizes[l + 1], 0.0f);
    const float scale = std::sqrt(2.0f / static_cast<float>(sizes[l]));
    for (float& w : layer.weights.data()) {
      w = static_cast<float>(rng.NextGaussian()) * scale;
    }
    mlp.layers_.push_back(std::move(layer));
  }

  // Minibatch SGD over standardized inputs.
  std::vector<size_t> order(data.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::vector<std::vector<float>> activations;
  std::vector<std::vector<float>> deltas(mlp.layers_.size());
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(order.begin(), order.end());
    for (size_t start = 0; start < order.size(); start += config.batch_size) {
      const size_t end = std::min(start + config.batch_size, order.size());
      // Accumulate gradients over the batch, then apply once.
      std::vector<FloatMatrix> grad_w;
      std::vector<std::vector<float>> grad_b;
      for (const Layer& layer : mlp.layers_) {
        grad_w.emplace_back(layer.weights.rows(), layer.weights.cols());
        grad_b.emplace_back(layer.biases.size(), 0.0f);
      }
      for (size_t bi = start; bi < end; ++bi) {
        const size_t i = order[bi];
        const std::vector<float> x = mlp.Standardize(data.row(i));
        Forward(mlp.layers_, x, activations);
        // Output delta: softmax - onehot.
        std::vector<float> probs = activations.back();
        Softmax(probs);
        deltas.back() = probs;
        deltas.back()[static_cast<size_t>(data.label(i))] -= 1.0f;
        // Backpropagate through hidden layers.
        for (size_t l = mlp.layers_.size(); l-- > 1;) {
          const Layer& layer = mlp.layers_[l];
          std::vector<float>& below = deltas[l - 1];
          below.assign(layer.weights.cols(), 0.0f);
          for (size_t r = 0; r < layer.weights.rows(); ++r) {
            const float d = deltas[l][r];
            const std::span<const float> row = layer.weights.row(r);
            for (size_t c = 0; c < row.size(); ++c) {
              below[c] += row[c] * d;
            }
          }
          // ReLU derivative w.r.t. the pre-activation of layer l-1's output.
          for (size_t c = 0; c < below.size(); ++c) {
            if (activations[l][c] <= 0.0f) {
              below[c] = 0.0f;
            }
          }
        }
        for (size_t l = 0; l < mlp.layers_.size(); ++l) {
          const std::vector<float>& in = activations[l];
          for (size_t r = 0; r < grad_w[l].rows(); ++r) {
            const float d = deltas[l][r];
            grad_b[l][r] += d;
            std::span<float> grow = grad_w[l].row(r);
            for (size_t c = 0; c < grow.size(); ++c) {
              grow[c] += d * in[c];
            }
          }
        }
      }
      const float step = config.learning_rate / static_cast<float>(end - start);
      for (size_t l = 0; l < mlp.layers_.size(); ++l) {
        Layer& layer = mlp.layers_[l];
        std::span<float> w = layer.weights.data();
        std::span<const float> g = grad_w[l].data();
        for (size_t k = 0; k < w.size(); ++k) {
          w[k] -= step * (g[k] + config.l2 * w[k]);
        }
        for (size_t r = 0; r < layer.biases.size(); ++r) {
          layer.biases[r] -= step * grad_b[l][r];
        }
      }
    }
  }
  return mlp;
}

std::vector<float> Mlp::Standardize(std::span<const int32_t> features) const {
  std::vector<float> out(feature_mean_.size(), 0.0f);
  for (size_t f = 0; f < out.size(); ++f) {
    const float raw = f < features.size() ? static_cast<float>(features[f]) : 0.0f;
    out[f] = (raw - feature_mean_[f]) / feature_stddev_[f];
  }
  return out;
}

std::vector<float> Mlp::Logits(std::span<const float> standardized) const {
  std::vector<std::vector<float>> activations;
  Forward(layers_, standardized, activations);
  return activations.back();
}

int32_t Mlp::PredictClass(std::span<const int32_t> features) const {
  const std::vector<float> logits = Logits(Standardize(features));
  return static_cast<int32_t>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

double Mlp::Evaluate(const Dataset& data) const {
  if (data.empty()) {
    return 0.0;
  }
  size_t correct = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (PredictClass(data.row(i)) == data.label(i)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace rkd
