// Integer decision tree — the workhorse in-kernel model of case study #1.
//
// The paper's prefetching prototype trains "an in-kernel integer decision
// tree that can capture more complex access patterns" with gini-index splits
// (the `rmt_ml_dt` object of Figure 1). This implementation trains on int32
// features with CART-style greedy gini splitting and predicts with pure
// integer comparisons, so it is admissible on the no-FPU inference path.
#ifndef SRC_ML_DECISION_TREE_H_
#define SRC_ML_DECISION_TREE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/ml/dataset.h"
#include "src/ml/model.h"

namespace rkd {

struct DecisionTreeConfig {
  uint32_t max_depth = 8;
  uint32_t min_samples_split = 2;
  uint32_t min_samples_leaf = 1;
  // Per feature, at most this many candidate thresholds are evaluated
  // (quantile-sampled when the feature has more distinct values).
  uint32_t max_candidate_thresholds = 32;
};

class DecisionTree final : public InferenceModel {
 public:
  // Flattened node array; left/right are indices, -1 marks a leaf.
  struct Node {
    int32_t feature = -1;
    int32_t threshold = 0;  // goes left when x[feature] <= threshold
    int32_t left = -1;
    int32_t right = -1;
    int32_t leaf_label = 0;
    uint32_t samples = 0;
  };

  // Trains a tree on `data`. Fails on an empty dataset.
  static Result<DecisionTree> Train(const Dataset& data, const DecisionTreeConfig& config = {});

  // Reconstructs a tree from serialized parts. Validates the node array:
  // child indices must point forward (the training order invariant), stay in
  // range, and leaves must have no children. Importance data is not part of
  // the wire format; FeatureImportance() on a reconstructed tree is empty.
  static Result<DecisionTree> FromParts(size_t num_features, uint32_t depth,
                                        std::vector<Node> nodes);

  // InferenceModel:
  int64_t Predict(std::span<const int32_t> features) const override;
  size_t num_features() const override { return num_features_; }
  ModelCost Cost() const override;
  std::string_view kind() const override { return "decision_tree"; }

  // Fraction of `data` classified correctly.
  double Evaluate(const Dataset& data) const;

  // Total gini-impurity decrease attributed to each feature, normalized to
  // sum to 1 (all-zero if the tree is a single leaf). This is the
  // impurity-based importance sklearn reports, used for lean monitoring.
  std::vector<double> FeatureImportance() const;

  size_t node_count() const { return nodes_.size(); }
  uint32_t depth() const { return depth_; }
  const std::vector<Node>& nodes() const { return nodes_; }

 private:
  DecisionTree(size_t num_features, int32_t num_classes)
      : num_features_(num_features), num_classes_(num_classes) {}

  struct BuildContext;
  int32_t BuildNode(BuildContext& ctx, std::vector<uint32_t>& indices, uint32_t depth);

  size_t num_features_ = 0;
  int32_t num_classes_ = 0;
  uint32_t depth_ = 0;
  std::vector<Node> nodes_;
  std::vector<double> importance_;  // unnormalized gini decrease per feature
  DecisionTreeConfig config_;
};

}  // namespace rkd

#endif  // SRC_ML_DECISION_TREE_H_
