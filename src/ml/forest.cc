#include "src/ml/forest.h"

#include <algorithm>

#include "src/base/rng.h"

namespace rkd {

Result<RandomForest> RandomForest::Train(const Dataset& data, const ForestConfig& config) {
  if (data.empty()) {
    return InvalidArgumentError("RandomForest::Train: empty dataset");
  }
  if (config.num_trees == 0) {
    return InvalidArgumentError("RandomForest::Train: need at least one tree");
  }
  RandomForest forest;
  forest.num_features_ = data.num_features();
  forest.num_classes_ = data.NumClasses();

  Rng rng(config.seed);
  const auto bootstrap_size = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(data.size()) * config.bootstrap_fraction));
  const auto features_per_tree = std::max<size_t>(
      1,
      static_cast<size_t>(static_cast<double>(data.num_features()) * config.feature_fraction));

  std::vector<size_t> feature_order(data.num_features());
  for (size_t i = 0; i < feature_order.size(); ++i) {
    feature_order[i] = i;
  }
  std::vector<int32_t> row(data.num_features());

  for (uint32_t t = 0; t < config.num_trees; ++t) {
    // Random feature subset for this tree: disabled features are masked to
    // zero in the bootstrap sample, so splits cannot use them.
    rng.Shuffle(feature_order.begin(), feature_order.end());
    std::vector<bool> enabled(data.num_features(), false);
    for (size_t f = 0; f < features_per_tree; ++f) {
      enabled[feature_order[f]] = true;
    }

    Dataset bootstrap(data.num_features());
    for (size_t s = 0; s < bootstrap_size; ++s) {
      const size_t index = static_cast<size_t>(rng.NextBounded(data.size()));
      const auto source = data.row(index);
      for (size_t f = 0; f < row.size(); ++f) {
        row[f] = enabled[f] ? source[f] : 0;
      }
      bootstrap.Add(row, data.label(index));
    }
    Result<DecisionTree> tree = DecisionTree::Train(bootstrap, config.tree);
    if (!tree.ok()) {
      return tree.status();
    }
    forest.trees_.push_back(std::move(tree).value());
  }
  return forest;
}

Result<RandomForest> RandomForest::FromTrees(std::vector<DecisionTree> trees) {
  if (trees.empty()) {
    return InvalidArgumentError("RandomForest::FromTrees: need at least one tree");
  }
  RandomForest forest;
  forest.num_features_ = trees.front().num_features();
  for (const DecisionTree& tree : trees) {
    if (tree.num_features() != forest.num_features_) {
      return InvalidArgumentError("RandomForest::FromTrees: inconsistent feature counts");
    }
    for (const DecisionTree::Node& node : tree.nodes()) {
      forest.num_classes_ = std::max(forest.num_classes_, node.leaf_label + 1);
    }
  }
  forest.trees_ = std::move(trees);
  return forest;
}

int64_t RandomForest::Predict(std::span<const int32_t> features) const {
  std::vector<uint32_t> votes(static_cast<size_t>(num_classes_ > 0 ? num_classes_ : 1), 0);
  for (const DecisionTree& tree : trees_) {
    const int64_t vote = tree.Predict(features);
    if (vote >= 0 && static_cast<size_t>(vote) < votes.size()) {
      ++votes[static_cast<size_t>(vote)];
    }
  }
  return static_cast<int64_t>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

ModelCost RandomForest::Cost() const {
  ModelCost total;
  for (const DecisionTree& tree : trees_) {
    const ModelCost cost = tree.Cost();
    total.comparisons += cost.comparisons;
    total.param_bytes += cost.param_bytes;
    total.depth = std::max(total.depth, cost.depth);
  }
  return total;
}

double RandomForest::Evaluate(const Dataset& data) const {
  if (data.empty()) {
    return 0.0;
  }
  size_t correct = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (Predict(data.row(i)) == data.label(i)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

std::vector<double> RandomForest::FeatureImportance() const {
  std::vector<double> total(num_features_, 0.0);
  for (const DecisionTree& tree : trees_) {
    const std::vector<double> importance = tree.FeatureImportance();
    for (size_t f = 0; f < total.size(); ++f) {
      total[f] += importance[f];
    }
  }
  double sum = 0.0;
  for (double v : total) {
    sum += v;
  }
  if (sum > 0.0) {
    for (double& v : total) {
      v /= sum;
    }
  }
  return total;
}

}  // namespace rkd
