#include "src/ml/distill.h"

namespace rkd {

Result<DecisionTree> DistillToTree(
    const std::function<int64_t(std::span<const int32_t>)>& teacher,
    const Dataset& transfer_set, const DecisionTreeConfig& config) {
  if (transfer_set.empty()) {
    return InvalidArgumentError("DistillToTree: empty transfer set");
  }
  Dataset relabeled(transfer_set.num_features());
  for (size_t i = 0; i < transfer_set.size(); ++i) {
    relabeled.Add(transfer_set.row(i), static_cast<int32_t>(teacher(transfer_set.row(i))));
  }
  return DecisionTree::Train(relabeled, config);
}

double DistillationFidelity(const std::function<int64_t(std::span<const int32_t>)>& teacher,
                            const DecisionTree& student, const Dataset& data) {
  if (data.empty()) {
    return 0.0;
  }
  size_t agree = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (student.Predict(data.row(i)) == teacher(data.row(i))) {
      ++agree;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(data.size());
}

}  // namespace rkd
