// Online (windowed) training and atomic model hand-off.
//
// Case study #1 "trains a new decision tree periodically in the background
// for each time window, while discarding the old ones" (section 4). The
// WindowedTreeTrainer accumulates labeled samples, retrains when a window
// fills, and publishes the new model through a ModelSlot — the single
// synchronization point between the training plane and the inference path.
#ifndef SRC_ML_ONLINE_H_
#define SRC_ML_ONLINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "src/base/epoch.h"
#include "src/ml/dataset.h"
#include "src/ml/decision_tree.h"
#include "src/ml/model.h"

namespace rkd {

// Holder for the currently installed model of one table action. The
// (model, version) pair lives in an immutable record published through an
// EpochPtr: readers pin an epoch, load the record, and copy the shared_ptr
// out — no lock on the inference path, and an in-flight inference keeps its
// model alive across a concurrent swap. Set() serializes writers and
// retires the displaced record into the global epoch domain.
class ModelSlot {
 public:
  // A coherent (model, version) pair from one published record. Readers that
  // need to attribute observations to a model generation must use Snapshot();
  // calling Get() and version() separately can pair a new model with a stale
  // version (or vice versa) across a concurrent Set().
  struct VersionedModel {
    ModelPtr model;
    uint64_t version = 0;
  };

  ModelSlot() = default;
  ModelSlot(const ModelSlot&) = delete;
  ModelSlot& operator=(const ModelSlot&) = delete;

  void Set(ModelPtr model) {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    ++version_counter_;
    state_.Publish(new Published{std::move(model), version_counter_},
                   GlobalEpochDomain());
  }

  ModelPtr Get() const {
    EpochGuard guard(GlobalEpochDomain());
    const Published* current = state_.Load();
    return current == nullptr ? nullptr : current->model;
  }

  // The epoch-protected coherent read: one pin, one pointer load, one
  // shared_ptr copy.
  VersionedModel Snapshot() const {
    EpochGuard guard(GlobalEpochDomain());
    const Published* current = state_.Load();
    return current == nullptr ? VersionedModel{}
                              : VersionedModel{current->model, current->version};
  }

  uint64_t version() const {
    EpochGuard guard(GlobalEpochDomain());
    const Published* current = state_.Load();
    return current == nullptr ? 0 : current->version;
  }
  bool HasModel() const {
    EpochGuard guard(GlobalEpochDomain());
    const Published* current = state_.Load();
    return current != nullptr && current->model != nullptr;
  }

 private:
  struct Published {
    ModelPtr model;
    uint64_t version = 0;
  };

  std::mutex writer_mutex_;      // serializes Set() (trainer vs control plane)
  uint64_t version_counter_ = 0; // guarded by writer_mutex_
  EpochPtr<const Published> state_;
};

struct WindowedTrainerConfig {
  size_t window_size = 256;       // samples per training window
  size_t min_train_samples = 32;  // below this the window is skipped
  DecisionTreeConfig tree;
};

// Accumulates (features, label) observations; every `window_size` samples it
// trains a fresh DecisionTree on the window and swaps it into the slot,
// discarding the old window ("discarding the old ones").
class WindowedTreeTrainer {
 public:
  WindowedTreeTrainer(size_t num_features, ModelSlot* slot, WindowedTrainerConfig config = {});

  // Records one observation; may trigger a retrain + model swap.
  void Observe(std::span<const int32_t> features, int32_t label);

  // Force-train on whatever the current window holds (used at phase ends).
  // Returns true if a model was produced and installed.
  bool Flush();

  uint64_t windows_trained() const { return windows_trained_; }
  size_t pending_samples() const { return window_.size(); }

 private:
  bool TrainAndInstall();

  ModelSlot* slot_;  // not owned
  WindowedTrainerConfig config_;
  Dataset window_;
  uint64_t windows_trained_ = 0;
};

}  // namespace rkd

#endif  // SRC_ML_ONLINE_H_
