// Online (windowed) training and atomic model hand-off.
//
// Case study #1 "trains a new decision tree periodically in the background
// for each time window, while discarding the old ones" (section 4). The
// WindowedTreeTrainer accumulates labeled samples, retrains when a window
// fills, and publishes the new model through a ModelSlot — the single
// synchronization point between the training plane and the inference path.
#ifndef SRC_ML_ONLINE_H_
#define SRC_ML_ONLINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "src/ml/dataset.h"
#include "src/ml/decision_tree.h"
#include "src/ml/model.h"

namespace rkd {

// Holder for the currently installed model of one table action. Readers
// (the VM's kMlCall) take a shared_ptr snapshot, so an in-flight inference
// keeps its model alive across a concurrent swap.
class ModelSlot {
 public:
  // A coherent (model, version) pair taken under one lock. Readers that need
  // to attribute observations to a model generation must use GetWithVersion;
  // calling Get() and version() separately can pair a new model with a stale
  // version (or vice versa) across a concurrent Set().
  struct VersionedModel {
    ModelPtr model;
    uint64_t version = 0;
  };

  void Set(ModelPtr model) {
    std::lock_guard<std::mutex> lock(mutex_);
    model_ = std::move(model);
    ++version_;
  }

  ModelPtr Get() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return model_;
  }

  VersionedModel GetWithVersion() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return {model_, version_};
  }

  uint64_t version() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return version_;
  }
  bool HasModel() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return model_ != nullptr;
  }

 private:
  mutable std::mutex mutex_;
  ModelPtr model_;
  uint64_t version_ = 0;  // guarded by mutex_, same critical section as model_
};

struct WindowedTrainerConfig {
  size_t window_size = 256;       // samples per training window
  size_t min_train_samples = 32;  // below this the window is skipped
  DecisionTreeConfig tree;
};

// Accumulates (features, label) observations; every `window_size` samples it
// trains a fresh DecisionTree on the window and swaps it into the slot,
// discarding the old window ("discarding the old ones").
class WindowedTreeTrainer {
 public:
  WindowedTreeTrainer(size_t num_features, ModelSlot* slot, WindowedTrainerConfig config = {});

  // Records one observation; may trigger a retrain + model swap.
  void Observe(std::span<const int32_t> features, int32_t label);

  // Force-train on whatever the current window holds (used at phase ends).
  // Returns true if a model was produced and installed.
  bool Flush();

  uint64_t windows_trained() const { return windows_trained_; }
  size_t pending_samples() const { return window_.size(); }

 private:
  bool TrainAndInstall();

  ModelSlot* slot_;  // not owned
  WindowedTrainerConfig config_;
  Dataset window_;
  uint64_t windows_trained_ = 0;
};

}  // namespace rkd

#endif  // SRC_ML_ONLINE_H_
