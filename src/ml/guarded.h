// Inference guardrails for blackbox models (paper section 3.3, "Model
// safety": "add guardrails to blackbox inference to prevent worst-case
// behaviors").
//
// GuardedModel wraps any InferenceModel with two runtime envelopes the
// verifier can reason about statically:
//
//   Range clamp    — predictions outside [min_output, max_output] are
//                    replaced by the fallback value, so an adversarially
//                    perturbed or corrupted model can never steer the kernel
//                    to an out-of-envelope decision (e.g. a prefetch delta
//                    of 2^40 pages).
//   Anomaly trip   — if more than `max_violations` of the last
//                    `violation_window` predictions fell outside the
//                    envelope, the guard trips permanently and every
//                    subsequent prediction returns the fallback; the control
//                    plane observes tripped() and swaps the model out.
//
// The wrapper is itself an InferenceModel, so it installs through the same
// slot/cost machinery; Cost() passes the inner model through with a small
// per-inference comparison surcharge.
#ifndef SRC_ML_GUARDED_H_
#define SRC_ML_GUARDED_H_

#include <atomic>
#include <cstdint>

#include "src/ml/model.h"

namespace rkd {

struct GuardrailConfig {
  int64_t min_output = 0;
  int64_t max_output = 1;
  int64_t fallback = 0;          // returned for clamped or tripped predictions
  uint32_t violation_window = 64;
  uint32_t max_violations = 8;   // violations within the window that trip
};

class GuardedModel final : public InferenceModel {
 public:
  GuardedModel(ModelPtr inner, const GuardrailConfig& config)
      : inner_(std::move(inner)), config_(config) {}

  int64_t Predict(std::span<const int32_t> features) const override;
  size_t num_features() const override { return inner_->num_features(); }
  ModelCost Cost() const override;
  std::string_view kind() const override { return "guarded"; }

  bool tripped() const { return tripped_.load(std::memory_order_relaxed); }
  uint64_t violations() const { return total_violations_.load(std::memory_order_relaxed); }
  const ModelPtr& inner() const { return inner_; }

 private:
  ModelPtr inner_;
  GuardrailConfig config_;
  // Prediction happens on the (conceptually) hot path; the counters are
  // relaxed atomics so the wrapper stays const-callable like every model.
  mutable std::atomic<uint32_t> window_count_{0};
  mutable std::atomic<uint32_t> window_violations_{0};
  mutable std::atomic<uint64_t> total_violations_{0};
  mutable std::atomic<bool> tripped_{false};
};

}  // namespace rkd

#endif  // SRC_ML_GUARDED_H_
