// Budgeted neural architecture search (section 3.2, "Customized ML").
//
// The paper proposes NAS to find per-subsystem model architectures offline,
// admitted only if the verifier's cost model accepts them. This is the
// random-search variant (Bergstra & Bengio-style), which the NAS literature
// uses as the standard strong baseline: sample MLP architectures from a
// space, train each briefly, keep the best validation accuracy among those
// whose *quantized* cost fits the hook's work-unit budget.
#ifndef SRC_ML_NAS_H_
#define SRC_ML_NAS_H_

#include <cstdint>
#include <vector>

#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/ml/dataset.h"
#include "src/ml/mlp.h"
#include "src/ml/quantize.h"

namespace rkd {

struct NasConfig {
  size_t trials = 12;           // architectures sampled
  size_t max_layers = 3;        // hidden layers per candidate
  size_t min_width = 4;
  size_t max_width = 32;
  size_t search_epochs = 15;    // short training during search
  size_t final_epochs = 40;     // full training of the winner
  uint64_t work_unit_budget = 0;  // 0 = unconstrained
  double validation_fraction = 0.25;
  uint64_t seed = 7;
};

struct NasResult {
  std::vector<size_t> hidden_sizes;  // winning architecture
  double validation_accuracy = 0.0;
  uint64_t work_units = 0;           // quantized-model cost of the winner
  size_t trials_evaluated = 0;
  size_t trials_over_budget = 0;
  QuantizedMlp model;                // fully trained + quantized winner
};

// Runs the search. Fails if no sampled architecture fits the budget or the
// dataset is unusable for MLP training.
Result<NasResult> RandomSearchNas(const Dataset& data, const NasConfig& config = {});

}  // namespace rkd

#endif  // SRC_ML_NAS_H_
