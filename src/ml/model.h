// The installable-model interface and its static cost description.
//
// Every learned policy the control plane pushes into the VM implements
// InferenceModel. Prediction is pure integer arithmetic over Q16.16 features
// (the lanes of an RMT vector register), honoring the paper's no-FPU-in-kernel
// constraint. Cost() is the static resource description the RMT verifier's
// cost model checks against per-hook budgets before admission (section 3.2:
// "the RMT verifier will statically check the model ... before JIT-compiling
// it").
#ifndef SRC_ML_MODEL_H_
#define SRC_ML_MODEL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

namespace rkd {

// Static, verifier-checkable resource footprint of a model.
struct ModelCost {
  uint64_t macs = 0;          // multiply-accumulates per inference
  uint64_t comparisons = 0;   // branch-style ops per inference (tree splits)
  uint64_t param_bytes = 0;   // resident parameter memory
  uint32_t depth = 0;         // layers (NN) or max tree depth

  // Scalar "work units" used against hook latency budgets. A MAC is costed
  // heavier than a comparison, roughly reflecting integer multiply vs branch.
  uint64_t WorkUnits() const { return 4 * macs + comparisons; }
};

class InferenceModel {
 public:
  virtual ~InferenceModel() = default;

  // Predicts from a Q16.16 feature vector. The return value is either a class
  // id (classifiers) or a Q16.16 score, per the model's documented contract.
  virtual int64_t Predict(std::span<const int32_t> features) const = 0;

  // Number of features read from the input vector.
  virtual size_t num_features() const = 0;

  virtual ModelCost Cost() const = 0;

  // Stable kind tag ("decision_tree", "quantized_mlp", "integer_linear").
  virtual std::string_view kind() const = 0;
};

using ModelPtr = std::shared_ptr<const InferenceModel>;

}  // namespace rkd

#endif  // SRC_ML_MODEL_H_
