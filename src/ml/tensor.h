// Minimal dense matrix types for rkd's two numeric worlds.
//
// FloatMatrix lives on the "userspace" training path, where the paper allows
// floating point (offline/online training outside the kernel, section 3.2).
// FixedMatrix holds Q16.16 raw values and is what the VM's kMatMul executes
// against; installed models carry only FixedMatrix / integer state.
#ifndef SRC_ML_TENSOR_H_
#define SRC_ML_TENSOR_H_

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "src/base/fixed_point.h"

namespace rkd {

class FloatMatrix {
 public:
  FloatMatrix() = default;
  FloatMatrix(size_t rows, size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  float& at(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float at(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::span<float> row(size_t r) {
    assert(r < rows_);
    return std::span<float>(data_).subspan(r * cols_, cols_);
  }
  std::span<const float> row(size_t r) const {
    assert(r < rows_);
    return std::span<const float>(data_).subspan(r * cols_, cols_);
  }

  std::span<const float> data() const { return data_; }
  std::span<float> data() { return data_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

// Row-major Q16.16 matrix. MatVec computes y = M x with 64-bit accumulation
// and a single shift back to Q16.16, the exact arithmetic kMatMul performs.
class FixedMatrix {
 public:
  FixedMatrix() = default;
  FixedMatrix(size_t rows, size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  static FixedMatrix FromFloat(const FloatMatrix& m) {
    FixedMatrix out(m.rows(), m.cols());
    for (size_t r = 0; r < m.rows(); ++r) {
      for (size_t c = 0; c < m.cols(); ++c) {
        out.at(r, c) = Fixed32::FromDouble(m.at(r, c)).raw();
      }
    }
    return out;
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  int32_t& at(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  int32_t at(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  // y[r] = sum_c M[r,c] * x[c], Q16.16 in and out. x may be longer than
  // cols() (extra lanes ignored) but never shorter; y must hold rows().
  void MatVec(std::span<const int32_t> x, std::span<int32_t> y) const {
    assert(x.size() >= cols_ && y.size() >= rows_);
    for (size_t r = 0; r < rows_; ++r) {
      int64_t acc = 0;
      const int32_t* row = &data_[r * cols_];
      for (size_t c = 0; c < cols_; ++c) {
        acc += static_cast<int64_t>(row[c]) * x[c];
      }
      y[r] = static_cast<int32_t>(acc >> Fixed32::kFractionBits);
    }
  }

  std::span<const int32_t> data() const { return data_; }
  std::span<int32_t> data() { return data_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<int32_t> data_;
};

}  // namespace rkd

#endif  // SRC_ML_TENSOR_H_
