#include "src/ml/decision_tree.h"

#include <algorithm>
#include <cmath>

namespace rkd {

namespace {

// Gini impurity of a class histogram: 1 - sum((n_c / n)^2).
double Gini(const std::vector<uint32_t>& counts, uint32_t total) {
  if (total == 0) {
    return 0.0;
  }
  double sum_sq = 0.0;
  for (uint32_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

int32_t MajorityLabel(const std::vector<uint32_t>& counts) {
  int32_t best = 0;
  uint32_t best_count = 0;
  for (size_t c = 0; c < counts.size(); ++c) {
    if (counts[c] > best_count) {
      best_count = counts[c];
      best = static_cast<int32_t>(c);
    }
  }
  return best;
}

}  // namespace

struct DecisionTree::BuildContext {
  const Dataset* data;
  // Scratch reused across nodes to avoid reallocation.
  std::vector<int32_t> candidate_values;
};

Result<DecisionTree> DecisionTree::Train(const Dataset& data, const DecisionTreeConfig& config) {
  if (data.empty()) {
    return InvalidArgumentError("DecisionTree::Train: empty dataset");
  }
  const int32_t num_classes = data.NumClasses();
  if (num_classes <= 0) {
    return InvalidArgumentError("DecisionTree::Train: labels must be non-negative");
  }
  DecisionTree tree(data.num_features(), num_classes);
  tree.config_ = config;
  tree.importance_.assign(data.num_features(), 0.0);

  BuildContext ctx;
  ctx.data = &data;
  std::vector<uint32_t> indices(data.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    indices[i] = static_cast<uint32_t>(i);
  }
  tree.BuildNode(ctx, indices, 0);
  return tree;
}

int32_t DecisionTree::BuildNode(BuildContext& ctx, std::vector<uint32_t>& indices,
                                uint32_t depth) {
  depth_ = std::max(depth_, depth);
  const Dataset& data = *ctx.data;

  std::vector<uint32_t> counts(static_cast<size_t>(num_classes_), 0);
  for (uint32_t i : indices) {
    ++counts[static_cast<size_t>(data.label(i))];
  }
  const auto total = static_cast<uint32_t>(indices.size());
  const double node_gini = Gini(counts, total);

  const int32_t node_index = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_index].samples = total;
  nodes_[node_index].leaf_label = MajorityLabel(counts);

  const bool pure = node_gini == 0.0;
  if (pure || depth >= config_.max_depth || total < config_.min_samples_split) {
    return node_index;
  }

  // Greedy split search: best (feature, threshold) by weighted gini decrease.
  double best_gain = 0.0;
  int32_t best_feature = -1;
  int32_t best_threshold = 0;
  for (size_t f = 0; f < num_features_; ++f) {
    auto& values = ctx.candidate_values;
    values.clear();
    for (uint32_t i : indices) {
      values.push_back(data.row(i)[f]);
    }
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    if (values.size() < 2) {
      continue;  // constant feature at this node
    }
    // Candidate thresholds are midpoint-free: we test "<= value" for a
    // quantile sample of the distinct values except the maximum (which would
    // send everything left).
    const size_t distinct = values.size() - 1;
    const size_t step = std::max<size_t>(1, distinct / config_.max_candidate_thresholds);
    for (size_t vi = 0; vi < distinct; vi += step) {
      const int32_t threshold = values[vi];
      std::vector<uint32_t> left_counts(static_cast<size_t>(num_classes_), 0);
      uint32_t left_total = 0;
      for (uint32_t i : indices) {
        if (data.row(i)[f] <= threshold) {
          ++left_counts[static_cast<size_t>(data.label(i))];
          ++left_total;
        }
      }
      const uint32_t right_total = total - left_total;
      if (left_total < config_.min_samples_leaf || right_total < config_.min_samples_leaf) {
        continue;
      }
      std::vector<uint32_t> right_counts(static_cast<size_t>(num_classes_), 0);
      for (size_t c = 0; c < counts.size(); ++c) {
        right_counts[c] = counts[c] - left_counts[c];
      }
      const double weighted =
          (static_cast<double>(left_total) * Gini(left_counts, left_total) +
           static_cast<double>(right_total) * Gini(right_counts, right_total)) /
          static_cast<double>(total);
      const double gain = node_gini - weighted;
      if (gain > best_gain + 1e-12) {
        best_gain = gain;
        best_feature = static_cast<int32_t>(f);
        best_threshold = threshold;
      }
    }
  }

  if (best_feature < 0) {
    return node_index;  // no split improves impurity; stay a leaf
  }

  std::vector<uint32_t> left_indices;
  std::vector<uint32_t> right_indices;
  for (uint32_t i : indices) {
    if (data.row(i)[static_cast<size_t>(best_feature)] <= best_threshold) {
      left_indices.push_back(i);
    } else {
      right_indices.push_back(i);
    }
  }
  indices.clear();
  indices.shrink_to_fit();  // free before recursing; trees can be deep

  importance_[static_cast<size_t>(best_feature)] += best_gain * static_cast<double>(total);

  const int32_t left = BuildNode(ctx, left_indices, depth + 1);
  const int32_t right = BuildNode(ctx, right_indices, depth + 1);
  nodes_[node_index].feature = best_feature;
  nodes_[node_index].threshold = best_threshold;
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

Result<DecisionTree> DecisionTree::FromParts(size_t num_features, uint32_t depth,
                                             std::vector<Node> nodes) {
  if (nodes.empty()) {
    return InvalidArgumentError("DecisionTree::FromParts: no nodes");
  }
  int32_t num_classes = 1;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const Node& node = nodes[i];
    const bool is_leaf = node.feature < 0;
    if (is_leaf) {
      if (node.left != -1 || node.right != -1) {
        return InvalidArgumentError("DecisionTree::FromParts: leaf with children");
      }
      if (node.leaf_label < 0) {
        return InvalidArgumentError("DecisionTree::FromParts: negative leaf label");
      }
      num_classes = std::max(num_classes, node.leaf_label + 1);
    } else {
      if (static_cast<size_t>(node.feature) >= num_features) {
        return InvalidArgumentError("DecisionTree::FromParts: split feature out of range");
      }
      // Children must point strictly forward: guarantees acyclic traversal.
      if (node.left <= static_cast<int32_t>(i) || node.right <= static_cast<int32_t>(i) ||
          static_cast<size_t>(node.left) >= nodes.size() ||
          static_cast<size_t>(node.right) >= nodes.size()) {
        return InvalidArgumentError("DecisionTree::FromParts: child index not forward/in range");
      }
    }
  }
  DecisionTree tree(num_features, num_classes);
  tree.depth_ = depth;
  tree.nodes_ = std::move(nodes);
  tree.importance_.assign(num_features, 0.0);
  return tree;
}

int64_t DecisionTree::Predict(std::span<const int32_t> features) const {
  int32_t node = 0;
  while (nodes_[node].feature >= 0) {
    const Node& n = nodes_[static_cast<size_t>(node)];
    const size_t f = static_cast<size_t>(n.feature);
    const int32_t value = f < features.size() ? features[f] : 0;
    node = value <= n.threshold ? n.left : n.right;
  }
  return nodes_[static_cast<size_t>(node)].leaf_label;
}

ModelCost DecisionTree::Cost() const {
  ModelCost cost;
  cost.comparisons = depth_;  // worst-case root-to-leaf path
  cost.param_bytes = nodes_.size() * sizeof(Node);
  cost.depth = depth_;
  return cost;
}

double DecisionTree::Evaluate(const Dataset& data) const {
  if (data.empty()) {
    return 0.0;
  }
  size_t correct = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (Predict(data.row(i)) == data.label(i)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

std::vector<double> DecisionTree::FeatureImportance() const {
  std::vector<double> out = importance_;
  double total = 0.0;
  for (double v : out) {
    total += v;
  }
  if (total > 0.0) {
    for (double& v : out) {
      v /= total;
    }
  }
  return out;
}

}  // namespace rkd
