#include "src/ml/guarded.h"

namespace rkd {

int64_t GuardedModel::Predict(std::span<const int32_t> features) const {
  if (tripped_.load(std::memory_order_relaxed)) {
    return config_.fallback;
  }
  const int64_t raw = inner_->Predict(features);
  const bool in_range = raw >= config_.min_output && raw <= config_.max_output;

  // Window accounting: counts reset together when the window fills.
  const uint32_t count = window_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!in_range) {
    total_violations_.fetch_add(1, std::memory_order_relaxed);
    const uint32_t violations =
        window_violations_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (violations > config_.max_violations) {
      tripped_.store(true, std::memory_order_relaxed);
    }
  }
  if (count >= config_.violation_window) {
    window_count_.store(0, std::memory_order_relaxed);
    window_violations_.store(0, std::memory_order_relaxed);
  }
  return in_range ? raw : config_.fallback;
}

ModelCost GuardedModel::Cost() const {
  ModelCost cost = inner_->Cost();
  cost.comparisons += 4;  // range check + window bookkeeping
  return cost;
}

}  // namespace rkd
