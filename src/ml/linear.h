// Integer linear classifier — the "Integer SVM" of the paper's Figure 1 model
// library. Trained with hinge loss (SVM-style) SGD in float, then stored and
// evaluated as Q16.16 weights; the in-VM decision is a single integer dot
// product plus threshold.
#ifndef SRC_ML_LINEAR_H_
#define SRC_ML_LINEAR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/base/status.h"
#include "src/ml/dataset.h"
#include "src/ml/model.h"

namespace rkd {

struct LinearConfig {
  size_t epochs = 50;
  float learning_rate = 0.01f;
  float l2 = 1e-3f;
  uint64_t seed = 1;
};

// Binary classifier: labels must be 0 or 1. Predict returns 0 or 1.
class IntegerLinear final : public InferenceModel {
 public:
  static Result<IntegerLinear> Train(const Dataset& data, const LinearConfig& config = {});

  // Reconstructs a model from serialized weights (Q16.16) and bias.
  static Result<IntegerLinear> FromWeights(std::vector<int32_t> weights_q16, int64_t bias_q16);

  // InferenceModel: features are raw integer values in the training units.
  int64_t Predict(std::span<const int32_t> features) const override;
  size_t num_features() const override { return weights_q16_.size(); }
  ModelCost Cost() const override;
  std::string_view kind() const override { return "integer_linear"; }

  // Q16.16 decision value (>= 0 means class 1), for margin inspection.
  int64_t DecisionValue(std::span<const int32_t> features) const;

  double Evaluate(const Dataset& data) const;

  std::span<const int32_t> weights_q16() const { return weights_q16_; }
  int64_t bias_q16() const { return bias_q16_; }

 private:
  IntegerLinear() = default;

  // Standardization folded into the integer weights at quantization time,
  // exactly as QuantizedMlp does for its first layer.
  std::vector<int32_t> weights_q16_;
  int64_t bias_q16_ = 0;
};

}  // namespace rkd

#endif  // SRC_ML_LINEAR_H_
