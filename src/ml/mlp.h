// Float multilayer perceptron — the "userspace" training side of the split
// the paper prescribes: train with floating point outside the kernel, then
// quantize and push into the VM for integer-only inference (section 3.2).
//
// Used for case study #2, mimicking Linux CFS `can_migrate_task` decisions
// (an MLP, after Chen et al. APSys'20). Training is plain minibatch SGD with
// ReLU hidden layers and softmax cross-entropy; features are standardized
// internally from training statistics.
#ifndef SRC_ML_MLP_H_
#define SRC_ML_MLP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/base/status.h"
#include "src/ml/dataset.h"
#include "src/ml/tensor.h"

namespace rkd {

struct MlpConfig {
  std::vector<size_t> hidden_sizes = {16};
  size_t epochs = 40;
  size_t batch_size = 32;
  float learning_rate = 0.05f;
  float l2 = 1e-4f;
  uint64_t seed = 1;
};

class Mlp {
 public:
  struct Layer {
    FloatMatrix weights;        // out x in
    std::vector<float> biases;  // out
  };

  // Trains on integer features (standardized internally) and class labels.
  static Result<Mlp> Train(const Dataset& data, const MlpConfig& config = {});

  // Raw output scores for a standardized input; size = number of classes.
  std::vector<float> Logits(std::span<const float> standardized) const;

  // End-to-end prediction from raw integer features.
  int32_t PredictClass(std::span<const int32_t> features) const;

  // Fraction of `data` classified correctly.
  double Evaluate(const Dataset& data) const;

  // Standardizes raw features with the training-set statistics.
  std::vector<float> Standardize(std::span<const int32_t> features) const;

  size_t num_features() const { return feature_mean_.size(); }
  int32_t num_classes() const { return num_classes_; }
  const std::vector<Layer>& layers() const { return layers_; }
  std::span<const float> feature_mean() const { return feature_mean_; }
  std::span<const float> feature_stddev() const { return feature_stddev_; }

 private:
  Mlp() = default;

  std::vector<Layer> layers_;
  std::vector<float> feature_mean_;
  std::vector<float> feature_stddev_;
  int32_t num_classes_ = 0;
};

}  // namespace rkd

#endif  // SRC_ML_MLP_H_
