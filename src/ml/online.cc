#include "src/ml/online.h"

namespace rkd {

WindowedTreeTrainer::WindowedTreeTrainer(size_t num_features, ModelSlot* slot,
                                         WindowedTrainerConfig config)
    : slot_(slot), config_(config), window_(num_features) {}

void WindowedTreeTrainer::Observe(std::span<const int32_t> features, int32_t label) {
  window_.Add(features, label);
  if (window_.size() >= config_.window_size) {
    TrainAndInstall();
    window_.Clear();
  }
}

bool WindowedTreeTrainer::Flush() {
  const bool trained = TrainAndInstall();
  window_.Clear();
  return trained;
}

bool WindowedTreeTrainer::TrainAndInstall() {
  if (window_.size() < config_.min_train_samples) {
    return false;
  }
  // A window whose labels are all one class still yields a valid (single-leaf)
  // tree: "always predict this delta" is exactly the right policy then.
  Result<DecisionTree> tree = DecisionTree::Train(window_, config_.tree);
  if (!tree.ok()) {
    return false;
  }
  slot_->Set(std::make_shared<DecisionTree>(std::move(tree).value()));
  ++windows_trained_;
  return true;
}

}  // namespace rkd
