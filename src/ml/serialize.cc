#include "src/ml/serialize.h"

#include <memory>

#include "src/base/bytes.h"
#include "src/ml/decision_tree.h"
#include "src/ml/forest.h"
#include "src/ml/linear.h"
#include "src/ml/quantize.h"

namespace rkd {

namespace {

enum class ModelTag : uint32_t {
  kDecisionTree = 1,
  kQuantizedMlp = 2,
  kIntegerLinear = 3,
  kRandomForest = 4,
  kQuantizedMlpRaw = 5,
};

void SerializeTreeBody(const DecisionTree& tree, ByteWriter& writer) {
  writer.Put<uint64_t>(tree.num_features());
  writer.Put<uint32_t>(tree.depth());
  writer.Put<uint64_t>(tree.nodes().size());
  for (const DecisionTree::Node& node : tree.nodes()) {
    writer.Put<int32_t>(node.feature);
    writer.Put<int32_t>(node.threshold);
    writer.Put<int32_t>(node.left);
    writer.Put<int32_t>(node.right);
    writer.Put<int32_t>(node.leaf_label);
    writer.Put<uint32_t>(node.samples);
  }
}

void SerializeTree(const DecisionTree& tree, ByteWriter& writer) {
  writer.Put<uint32_t>(static_cast<uint32_t>(ModelTag::kDecisionTree));
  SerializeTreeBody(tree, writer);
}

Result<DecisionTree> DeserializeTreeBody(ByteReader& reader) {
  RKD_ASSIGN_OR_RETURN(uint64_t num_features, reader.Get<uint64_t>());
  RKD_ASSIGN_OR_RETURN(uint32_t depth, reader.Get<uint32_t>());
  RKD_ASSIGN_OR_RETURN(uint64_t node_count, reader.Get<uint64_t>());
  if (num_features == 0 || num_features > 4096 || node_count == 0 || node_count > (1 << 22)) {
    return InvalidArgumentError("tree header out of range");
  }
  std::vector<DecisionTree::Node> nodes;
  nodes.reserve(node_count);
  for (uint64_t i = 0; i < node_count; ++i) {
    DecisionTree::Node node;
    RKD_ASSIGN_OR_RETURN(node.feature, reader.Get<int32_t>());
    RKD_ASSIGN_OR_RETURN(node.threshold, reader.Get<int32_t>());
    RKD_ASSIGN_OR_RETURN(node.left, reader.Get<int32_t>());
    RKD_ASSIGN_OR_RETURN(node.right, reader.Get<int32_t>());
    RKD_ASSIGN_OR_RETURN(node.leaf_label, reader.Get<int32_t>());
    RKD_ASSIGN_OR_RETURN(node.samples, reader.Get<uint32_t>());
    nodes.push_back(node);
  }
  return DecisionTree::FromParts(num_features, depth, std::move(nodes));
}

Result<ModelPtr> DeserializeTree(ByteReader& reader) {
  RKD_ASSIGN_OR_RETURN(DecisionTree tree, DeserializeTreeBody(reader));
  return ModelPtr(std::make_shared<DecisionTree>(std::move(tree)));
}

void SerializeForest(const RandomForest& forest, ByteWriter& writer) {
  writer.Put<uint32_t>(static_cast<uint32_t>(ModelTag::kRandomForest));
  writer.Put<uint64_t>(forest.trees().size());
  for (const DecisionTree& tree : forest.trees()) {
    SerializeTreeBody(tree, writer);
  }
}

Result<ModelPtr> DeserializeForest(ByteReader& reader) {
  RKD_ASSIGN_OR_RETURN(uint64_t tree_count, reader.Get<uint64_t>());
  if (tree_count == 0 || tree_count > 1024) {
    return InvalidArgumentError("forest tree count out of range");
  }
  std::vector<DecisionTree> trees;
  trees.reserve(tree_count);
  for (uint64_t t = 0; t < tree_count; ++t) {
    RKD_ASSIGN_OR_RETURN(DecisionTree tree, DeserializeTreeBody(reader));
    trees.push_back(std::move(tree));
  }
  RKD_ASSIGN_OR_RETURN(RandomForest forest, RandomForest::FromTrees(std::move(trees)));
  return ModelPtr(std::make_shared<RandomForest>(std::move(forest)));
}

void SerializeQuantizedMlpBody(const QuantizedMlp& mlp, ByteWriter& writer) {
  writer.Put<uint64_t>(mlp.layers().size());
  for (const QuantizedMlp::QuantLayer& layer : mlp.layers()) {
    writer.Put<uint32_t>(layer.out_dim);
    writer.Put<uint32_t>(layer.in_dim);
    writer.Put<int32_t>(layer.shift);
    writer.PutArray<int16_t>(layer.weights);
    writer.PutArray<int32_t>(layer.biases);
  }
}

void SerializeQuantizedMlp(const QuantizedMlp& mlp, ByteWriter& writer) {
  writer.Put<uint32_t>(static_cast<uint32_t>(ModelTag::kQuantizedMlp));
  SerializeQuantizedMlpBody(mlp, writer);
}

Result<QuantizedMlp> DeserializeQuantizedMlpBody(ByteReader& reader) {
  RKD_ASSIGN_OR_RETURN(uint64_t layer_count, reader.Get<uint64_t>());
  if (layer_count == 0 || layer_count > 64) {
    return InvalidArgumentError("layer count out of range");
  }
  std::vector<QuantizedMlp::QuantLayer> layers;
  layers.reserve(layer_count);
  for (uint64_t l = 0; l < layer_count; ++l) {
    QuantizedMlp::QuantLayer layer;
    RKD_ASSIGN_OR_RETURN(layer.out_dim, reader.Get<uint32_t>());
    RKD_ASSIGN_OR_RETURN(layer.in_dim, reader.Get<uint32_t>());
    RKD_ASSIGN_OR_RETURN(layer.shift, reader.Get<int32_t>());
    RKD_ASSIGN_OR_RETURN(layer.weights, reader.GetArray<int16_t>());
    RKD_ASSIGN_OR_RETURN(layer.biases, reader.GetArray<int32_t>());
    layers.push_back(std::move(layer));
  }
  return QuantizedMlp::FromLayers(std::move(layers));
}

Result<ModelPtr> DeserializeQuantizedMlp(ByteReader& reader) {
  RKD_ASSIGN_OR_RETURN(QuantizedMlp mlp, DeserializeQuantizedMlpBody(reader));
  return ModelPtr(std::make_shared<QuantizedMlp>(std::move(mlp)));
}

void SerializeQuantizedMlpRaw(const QuantizedMlpRawAdapter& adapter, ByteWriter& writer) {
  writer.Put<uint32_t>(static_cast<uint32_t>(ModelTag::kQuantizedMlpRaw));
  SerializeQuantizedMlpBody(adapter.inner(), writer);
}

Result<ModelPtr> DeserializeQuantizedMlpRaw(ByteReader& reader) {
  RKD_ASSIGN_OR_RETURN(QuantizedMlp mlp, DeserializeQuantizedMlpBody(reader));
  return ModelPtr(std::make_shared<QuantizedMlpRawAdapter>(std::move(mlp)));
}

void SerializeLinear(const IntegerLinear& model, ByteWriter& writer) {
  writer.Put<uint32_t>(static_cast<uint32_t>(ModelTag::kIntegerLinear));
  writer.PutArray<int32_t>(model.weights_q16());
  writer.Put<int64_t>(model.bias_q16());
}

Result<ModelPtr> DeserializeLinear(ByteReader& reader) {
  RKD_ASSIGN_OR_RETURN(std::vector<int32_t> weights, reader.GetArray<int32_t>());
  RKD_ASSIGN_OR_RETURN(int64_t bias, reader.Get<int64_t>());
  RKD_ASSIGN_OR_RETURN(IntegerLinear model,
                       IntegerLinear::FromWeights(std::move(weights), bias));
  return ModelPtr(std::make_shared<IntegerLinear>(std::move(model)));
}

}  // namespace

Result<std::vector<uint8_t>> SerializeModel(const InferenceModel& model) {
  ByteWriter writer;
  writer.Put<uint32_t>(kModelMagic);
  writer.Put<uint32_t>(kModelVersion);
  if (model.kind() == "decision_tree") {
    SerializeTree(static_cast<const DecisionTree&>(model), writer);
  } else if (model.kind() == "quantized_mlp") {
    SerializeQuantizedMlp(static_cast<const QuantizedMlp&>(model), writer);
  } else if (model.kind() == "integer_linear") {
    SerializeLinear(static_cast<const IntegerLinear&>(model), writer);
  } else if (model.kind() == "random_forest") {
    SerializeForest(static_cast<const RandomForest&>(model), writer);
  } else if (model.kind() == "quantized_mlp_raw") {
    SerializeQuantizedMlpRaw(static_cast<const QuantizedMlpRawAdapter&>(model), writer);
  } else {
    return InvalidArgumentError("unsupported model kind '" + std::string(model.kind()) + "'");
  }
  return writer.Take();
}

Result<ModelPtr> DeserializeModel(std::span<const uint8_t> bytes) {
  ByteReader reader(bytes);
  RKD_ASSIGN_OR_RETURN(uint32_t magic, reader.Get<uint32_t>());
  if (magic != kModelMagic) {
    return InvalidArgumentError("not an RKDM model blob");
  }
  RKD_ASSIGN_OR_RETURN(uint32_t version, reader.Get<uint32_t>());
  if (version != kModelVersion) {
    return InvalidArgumentError("unsupported model version " + std::to_string(version));
  }
  RKD_ASSIGN_OR_RETURN(uint32_t tag, reader.Get<uint32_t>());
  Result<ModelPtr> model = [&]() -> Result<ModelPtr> {
    switch (static_cast<ModelTag>(tag)) {
      case ModelTag::kDecisionTree:
        return DeserializeTree(reader);
      case ModelTag::kQuantizedMlp:
        return DeserializeQuantizedMlp(reader);
      case ModelTag::kIntegerLinear:
        return DeserializeLinear(reader);
      case ModelTag::kRandomForest:
        return DeserializeForest(reader);
      case ModelTag::kQuantizedMlpRaw:
        return DeserializeQuantizedMlpRaw(reader);
    }
    return InvalidArgumentError("unknown model tag " + std::to_string(tag));
  }();
  if (model.ok() && !reader.AtEnd()) {
    return InvalidArgumentError("trailing bytes after the model payload");
  }
  return model;
}

}  // namespace rkd
