// Automatic performance-interference guard insertion (paper section 3.3:
// "the verifier may insert additional logic to enforce rate limits").
//
// InsertRateLimitGuards rewrites a program so that every resource-granting
// helper call (kPrefetchEmit, kSetPriorityHint) is immediately preceded by
//
//     call rate_limit_check     ; r0 = limiter verdict for (r1, r2)
//     jeq_imm r0, 0, +1         ; denied -> skip the grant
//     call <original grant>
//
// The limiter key/units are the grant's own r1/r2 arguments, so a program
// that aggressively prefetches for one key exhausts only that key's bucket.
// All branch offsets spanning an insertion point are fixed up; the rewritten
// program re-verifies cleanly under require_rate_limit_guard.
#ifndef SRC_VERIFIER_GUARDS_H_
#define SRC_VERIFIER_GUARDS_H_

#include "src/base/status.h"
#include "src/bytecode/program.h"

namespace rkd {

// Rewrites `program` in place. Returns the number of guards inserted, or an
// error if the program's control flow is malformed (verify first).
Result<int> InsertRateLimitGuards(BytecodeProgram& program);

}  // namespace rkd

#endif  // SRC_VERIFIER_GUARDS_H_
