#include "src/verifier/guards.h"

#include <vector>

namespace rkd {

Result<int> InsertRateLimitGuards(BytecodeProgram& program) {
  const int64_t n = static_cast<int64_t>(program.code.size());

  // Convert branch offsets to absolute targets so insertions are easy to fix.
  std::vector<int64_t> absolute_target(static_cast<size_t>(n), -1);
  for (int64_t pc = 0; pc < n; ++pc) {
    const Instruction& insn = program.code[static_cast<size_t>(pc)];
    if (IsBranch(insn.opcode)) {
      const int64_t target = pc + 1 + insn.offset;
      if (target < 0 || target > n) {
        return InvalidArgumentError("InsertRateLimitGuards: jump out of range at insn " +
                                    std::to_string(pc));
      }
      absolute_target[static_cast<size_t>(pc)] = target;
    }
  }

  // new_index[old] = position of old instruction in the rewritten stream.
  std::vector<int64_t> new_index(static_cast<size_t>(n) + 1, 0);
  std::vector<Instruction> rewritten;
  std::vector<int64_t> rewritten_abs_target;  // parallel to `rewritten`
  int guards = 0;

  for (int64_t pc = 0; pc < n; ++pc) {
    new_index[static_cast<size_t>(pc)] = static_cast<int64_t>(rewritten.size());
    const Instruction& insn = program.code[static_cast<size_t>(pc)];
    const bool granting =
        insn.opcode == Opcode::kCall &&
        (static_cast<HelperId>(insn.imm) == HelperId::kPrefetchEmit ||
         static_cast<HelperId>(insn.imm) == HelperId::kSetPriorityHint);
    // A grant already preceded by its own guard pair is left alone: detect
    // the exact idiom (rate_limit_check; jeq_imm r0,0 over the grant).
    bool already_guarded = false;
    if (granting && pc >= 2) {
      const Instruction& check = program.code[static_cast<size_t>(pc - 2)];
      const Instruction& skip = program.code[static_cast<size_t>(pc - 1)];
      already_guarded =
          check.opcode == Opcode::kCall &&
          static_cast<HelperId>(check.imm) == HelperId::kRateLimitCheck &&
          skip.opcode == Opcode::kJeqImm && skip.dst == 0 && skip.imm == 0 &&
          absolute_target[static_cast<size_t>(pc - 1)] == pc + 1;
    }
    if (granting && !already_guarded) {
      Instruction check;
      check.opcode = Opcode::kCall;
      check.imm = static_cast<int64_t>(HelperId::kRateLimitCheck);
      rewritten.push_back(check);
      rewritten_abs_target.push_back(-1);

      Instruction skip;
      skip.opcode = Opcode::kJeqImm;
      skip.dst = 0;  // r0: limiter verdict
      skip.imm = 0;
      rewritten.push_back(skip);
      // Target: the instruction after the grant, in *old* coordinates.
      rewritten_abs_target.push_back(pc + 1);
      ++guards;
    }
    rewritten.push_back(insn);
    rewritten_abs_target.push_back(absolute_target[static_cast<size_t>(pc)]);
  }
  new_index[static_cast<size_t>(n)] = static_cast<int64_t>(rewritten.size());

  // Re-relativize every branch against the remapped targets.
  for (size_t pc = 0; pc < rewritten.size(); ++pc) {
    const int64_t old_target = rewritten_abs_target[pc];
    if (old_target < 0) {
      continue;
    }
    const int64_t target = new_index[static_cast<size_t>(old_target)];
    rewritten[pc].offset = static_cast<int32_t>(target - static_cast<int64_t>(pc) - 1);
  }

  program.code = std::move(rewritten);
  return guards;
}

}  // namespace rkd
