#include "src/verifier/verifier.h"

#include <algorithm>
#include <bitset>
#include <optional>

namespace rkd {

namespace {

// Helper whitelists per hook kind. Data-collection hooks may not grant
// resources; decision hooks get the subsystem-matching granting helper.
std::vector<HelperId> CommonHelpers() {
  return {HelperId::kGetTime, HelperId::kRecordSample, HelperId::kHistoryAppend,
          HelperId::kHistoryGet, HelperId::kHistoryLen, HelperId::kDpNoise,
          HelperId::kPredictionLog};
}

}  // namespace

std::string_view VerifyCheckKindName(VerifyCheckKind kind) {
  switch (kind) {
    case VerifyCheckKind::kStructure: return "structure";
    case VerifyCheckKind::kControlFlow: return "control_flow";
    case VerifyCheckKind::kRegisters: return "registers";
    case VerifyCheckKind::kResources: return "resources";
    case VerifyCheckKind::kHelpers: return "helpers";
    case VerifyCheckKind::kTermination: return "termination";
    case VerifyCheckKind::kDataflow: return "dataflow";
    case VerifyCheckKind::kCost: return "cost";
    case VerifyCheckKind::kInterference: return "interference";
    case VerifyCheckKind::kPrivacy: return "privacy";
    case VerifyCheckKind::kCheckKindCount: break;
  }
  return "unknown";
}

void Verifier::RecordVerifyTelemetry(const VerifyReport& report, uint64_t start_ns) const {
  if (programs_checked_ == nullptr) {
    return;
  }
  programs_checked_->Increment();
  verify_ns_->Record(MonotonicNowNs() - start_ns);
  if (report.status.ok()) {
    return;
  }
  rejections_->Increment();
  for (size_t k = 0; k < kNumVerifyCheckKinds; ++k) {
    if (report.diags_by_kind[k] > 0) {
      reject_by_kind_[k]->Increment(report.diags_by_kind[k]);
    }
  }
}

void Verifier::BindTelemetry(TelemetryRegistry* telemetry) {
  programs_checked_ = telemetry->GetCounter("rkd.verifier.programs_checked");
  rejections_ = telemetry->GetCounter("rkd.verifier.rejections");
  for (size_t k = 0; k < kNumVerifyCheckKinds; ++k) {
    reject_by_kind_[k] = telemetry->GetCounter(
        "rkd.verifier.reject." +
        std::string(VerifyCheckKindName(static_cast<VerifyCheckKind>(k))));
  }
  verify_ns_ = telemetry->GetHistogram("rkd.verifier.verify_ns");
}

HookBudget BudgetForHook(HookKind kind) {
  HookBudget budget;
  budget.allowed_helpers = CommonHelpers();
  switch (kind) {
    case HookKind::kGeneric:
      budget.allowed_helpers.push_back(HelperId::kRateLimitCheck);
      break;
    case HookKind::kMemAccess:
      // Pure data collection on the fault path: modest instruction budget,
      // no resource-granting helpers at all.
      budget.max_instructions = 256;
      budget.max_path_length = 128;
      budget.max_work_units = 1 << 12;
      break;
    case HookKind::kMemPrefetch:
      // Amortized against disk latency: the largest budgets, plus the
      // prefetch-granting helper (rate-limited).
      budget.max_instructions = 1024;
      budget.max_path_length = 512;
      budget.max_work_units = 1 << 16;
      budget.allowed_helpers.push_back(HelperId::kRateLimitCheck);
      budget.allowed_helpers.push_back(HelperId::kPrefetchEmit);
      break;
    case HookKind::kSchedMigrate:
      // Microsecond-scale decision: tight budgets.
      budget.max_instructions = 256;
      budget.max_path_length = 128;
      budget.max_work_units = 1 << 13;
      budget.allowed_helpers.push_back(HelperId::kRateLimitCheck);
      budget.allowed_helpers.push_back(HelperId::kSetPriorityHint);
      break;
    case HookKind::kSchedTick:
      budget.max_instructions = 512;
      budget.max_path_length = 256;
      budget.max_work_units = 1 << 13;
      budget.allowed_helpers.push_back(HelperId::kRateLimitCheck);
      budget.allowed_helpers.push_back(HelperId::kSetPriorityHint);
      break;
    case HookKind::kNetRx:
      // XDP-style per-packet decision: the tightest instruction budget of
      // any decision hook (the RX path runs at line rate), but enough work
      // units for one small quantized model evaluation. No resource-granting
      // helpers beyond the rate limiter — an RX action classifies and
      // steers, it never allocates.
      budget.max_instructions = 256;
      budget.max_path_length = 96;
      budget.max_work_units = 1 << 13;
      budget.allowed_helpers.push_back(HelperId::kRateLimitCheck);
      break;
  }
  return budget;
}

namespace {

struct RegState {
  // Bit i set = scalar register i definitely initialized on every path here.
  uint32_t scalars = 0;
  uint32_t vectors = 0;   // same for vector registers
  uint64_t stack = 0;     // 8-byte stack slots, bit k = slot at fp - 8*(k+1)
  bool reachable = false;

  static RegState Entry() {
    RegState s;
    // r1..r5 hold arguments; r10 is the frame pointer; r0 and r6..r9 start
    // uninitialized. All vector registers and stack slots start uninitialized.
    s.scalars = 0b0100'0011'1110;  // bits 1..5 (args) and 10 (frame pointer)
    s.reachable = true;
    return s;
  }

  // Meet over paths: a location counts as initialized only if every
  // predecessor initialized it.
  void MergeFrom(const RegState& other) {
    if (!reachable) {
      *this = other;
      return;
    }
    if (other.reachable) {
      scalars &= other.scalars;
      vectors &= other.vectors;
      stack &= other.stack;
    }
  }
};

int StackSlot(int32_t offset) { return (-offset / 8) - 1; }  // offset is -8..-kStackSize

struct OperandRoles {
  bool dst_scalar_read = false;
  bool dst_scalar_write = false;
  bool dst_vector_read = false;
  bool dst_vector_write = false;
  bool src_scalar_read = false;
  bool src_vector_read = false;
};

// Read/write roles of each operand, the ground truth the dataflow pass uses.
OperandRoles RolesOf(Opcode op) {
  OperandRoles r;
  switch (op) {
    // dst = dst ALU src/imm
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul: case Opcode::kDiv:
    case Opcode::kMod: case Opcode::kAnd: case Opcode::kOr: case Opcode::kXor:
    case Opcode::kShl: case Opcode::kShr: case Opcode::kAshr:
      r.dst_scalar_read = r.dst_scalar_write = true;
      r.src_scalar_read = true;
      break;
    case Opcode::kAddImm: case Opcode::kSubImm: case Opcode::kMulImm: case Opcode::kDivImm:
    case Opcode::kModImm: case Opcode::kAndImm: case Opcode::kOrImm: case Opcode::kXorImm:
    case Opcode::kShlImm: case Opcode::kShrImm: case Opcode::kAshrImm: case Opcode::kNeg:
      r.dst_scalar_read = r.dst_scalar_write = true;
      break;
    case Opcode::kMov:
      r.dst_scalar_write = true;
      r.src_scalar_read = true;
      break;
    case Opcode::kMovImm:
      r.dst_scalar_write = true;
      break;
    case Opcode::kJa:
      break;
    case Opcode::kJeq: case Opcode::kJne: case Opcode::kJlt: case Opcode::kJle:
    case Opcode::kJgt: case Opcode::kJge: case Opcode::kJset:
      r.dst_scalar_read = true;
      r.src_scalar_read = true;
      break;
    case Opcode::kJeqImm: case Opcode::kJneImm: case Opcode::kJltImm: case Opcode::kJleImm:
    case Opcode::kJgtImm: case Opcode::kJgeImm: case Opcode::kJsetImm:
      r.dst_scalar_read = true;
      break;
    case Opcode::kLdStack:
      r.dst_scalar_write = true;  // stack read handled separately
      break;
    case Opcode::kStStack:
      r.src_scalar_read = true;
      break;
    case Opcode::kStStackImm:
      break;
    case Opcode::kLdCtxt:
      r.dst_scalar_write = true;
      r.src_scalar_read = true;
      break;
    case Opcode::kStCtxt:
      r.dst_scalar_read = true;  // key
      r.src_scalar_read = true;  // value
      break;
    case Opcode::kMatchCtxt:
      r.dst_scalar_write = true;
      r.src_scalar_read = true;
      break;
    case Opcode::kMapLookup: case Opcode::kMapExists:
      r.dst_scalar_write = true;
      r.src_scalar_read = true;
      break;
    case Opcode::kMapUpdate:
      r.dst_scalar_read = true;
      r.src_scalar_read = true;
      break;
    case Opcode::kMapDelete:
      r.src_scalar_read = true;
      break;
    case Opcode::kVecLdCtxt:
      r.dst_vector_write = true;
      r.src_scalar_read = true;
      break;
    case Opcode::kVecStCtxt:
      r.dst_scalar_read = true;  // key
      r.src_vector_read = true;
      break;
    case Opcode::kVecZero:
      r.dst_vector_write = true;
      break;
    case Opcode::kScalarVal:
      r.dst_vector_read = r.dst_vector_write = true;  // partial update
      r.src_scalar_read = true;
      break;
    case Opcode::kVecExtract:
      r.dst_scalar_write = true;
      r.src_vector_read = true;
      break;
    case Opcode::kMatMul: case Opcode::kVecRelu:
      r.dst_vector_write = true;
      r.src_vector_read = true;
      break;
    case Opcode::kVecAddT:
      r.dst_vector_read = r.dst_vector_write = true;
      break;
    case Opcode::kVecAdd:
      r.dst_vector_read = r.dst_vector_write = true;
      r.src_vector_read = true;
      break;
    case Opcode::kVecArgmax:
      r.dst_scalar_write = true;
      r.src_vector_read = true;
      break;
    case Opcode::kVecDot:
      // Reads vector dst and src, writes scalar dst.
      r.dst_vector_read = true;
      r.dst_scalar_write = true;
      r.src_vector_read = true;
      break;
    case Opcode::kCall:
      break;  // writes r0, reads r1..r5; handled specially
    case Opcode::kMlCall:
      r.dst_scalar_write = true;
      r.src_vector_read = true;
      break;
    case Opcode::kTailCall: case Opcode::kExit: case Opcode::kOpcodeCount:
      break;
  }
  return r;
}

}  // namespace

VerifyReport Verifier::Verify(const BytecodeProgram& program, const ModelRegistry* models,
                              const TensorRegistry* tensors) const {
  const uint64_t verify_start_ns = programs_checked_ != nullptr ? MonotonicNowNs() : 0;
  VerifyReport report;
  // Program-level diagnostic, bucketed by the pass that produced it.
  auto note = [&](VerifyCheckKind kind, std::string message) {
    ++report.diags_by_kind[static_cast<size_t>(kind)];
    report.diagnostics.push_back(std::move(message));
  };
  // Instruction-level diagnostic.
  auto diag = [&](size_t pc, VerifyCheckKind kind, std::string message) {
    note(kind, "insn " + std::to_string(pc) + ": " + std::move(message));
  };

  const HookBudget budget =
      config_.budget_override != nullptr ? *config_.budget_override
                                         : BudgetForHook(program.hook_kind);

  // --- Pass 1: structure ---
  if (program.code.empty()) {
    note(VerifyCheckKind::kStructure, "program is empty");
    report.status = VerificationFailedError("program is empty");
    RecordVerifyTelemetry(report, verify_start_ns);
    return report;
  }
  if (program.code.size() > budget.max_instructions) {
    note(VerifyCheckKind::kStructure,
        "program length " + std::to_string(program.code.size()) + " exceeds hook budget " +
        std::to_string(budget.max_instructions));
  }
  const int64_t n = static_cast<int64_t>(program.code.size());
  bool cfg_ok = true;

  for (int64_t pc = 0; pc < n; ++pc) {
    const Instruction& insn = program.code[static_cast<size_t>(pc)];
    if (insn.opcode >= Opcode::kOpcodeCount) {
      diag(static_cast<size_t>(pc), VerifyCheckKind::kStructure, "invalid opcode");
      cfg_ok = false;
      continue;
    }

    // Operand register ranges.
    const bool vector_op = IsVectorOp(insn.opcode);
    if (vector_op) {
      const bool dst_is_scalar =
          insn.opcode == Opcode::kMlCall || insn.opcode == Opcode::kVecArgmax ||
          insn.opcode == Opcode::kVecExtract || insn.opcode == Opcode::kVecStCtxt;
      const bool src_is_scalar =
          insn.opcode == Opcode::kVecLdCtxt || insn.opcode == Opcode::kScalarVal;
      if ((dst_is_scalar && insn.dst >= kNumScalarRegs) ||
          (!dst_is_scalar && insn.dst >= kNumVectorRegs)) {
        diag(static_cast<size_t>(pc), VerifyCheckKind::kRegisters, "dst register out of range");
      }
      if ((src_is_scalar && insn.src >= kNumScalarRegs) ||
          (!src_is_scalar && insn.src >= kNumVectorRegs)) {
        diag(static_cast<size_t>(pc), VerifyCheckKind::kRegisters, "src register out of range");
      }
    } else {
      if (insn.dst >= kNumScalarRegs) {
        diag(static_cast<size_t>(pc), VerifyCheckKind::kRegisters, "dst register out of range");
      }
      if (insn.src >= kNumScalarRegs) {
        diag(static_cast<size_t>(pc), VerifyCheckKind::kRegisters, "src register out of range");
      }
    }
    // Writes to the frame pointer are forbidden.
    const OperandRoles roles = RolesOf(insn.opcode);
    if (roles.dst_scalar_write && !vector_op && insn.dst == kFramePointerReg) {
      diag(static_cast<size_t>(pc), VerifyCheckKind::kRegisters, "write to read-only frame pointer r10");
    }

    // --- Pass 2: control flow (forward, in range) ---
    if (IsBranch(insn.opcode)) {
      const int64_t target = pc + 1 + insn.offset;
      if (insn.offset < 0) {
        diag(static_cast<size_t>(pc), VerifyCheckKind::kControlFlow, "backward jump (unbounded execution)");
        cfg_ok = false;
      } else if (insn.offset == 0 && insn.opcode == Opcode::kJa) {
        // Harmless no-op jump; allowed.
      }
      if (target < 0 || target >= n) {
        diag(static_cast<size_t>(pc), VerifyCheckKind::kControlFlow, "jump target out of range");
        cfg_ok = false;
      }
    }

    // --- Pass 4: offsets and declared resources ---
    switch (insn.opcode) {
      case Opcode::kLdStack:
      case Opcode::kStStack:
      case Opcode::kStStackImm:
        if (insn.offset < -kStackSize || insn.offset > -8 || insn.offset % 8 != 0) {
          diag(static_cast<size_t>(pc), VerifyCheckKind::kResources, "stack offset outside [-512, -8] or unaligned");
        }
        break;
      case Opcode::kLdCtxt:
      case Opcode::kStCtxt:
        if (insn.offset < 0 || insn.offset >= kCtxtScalarSlots) {
          diag(static_cast<size_t>(pc), VerifyCheckKind::kResources, "context slot out of range");
        }
        break;
      case Opcode::kScalarVal:
      case Opcode::kVecExtract:
        if (insn.offset < 0 || insn.offset >= kVectorLanes) {
          diag(static_cast<size_t>(pc), VerifyCheckKind::kResources, "vector lane out of range");
        }
        break;
      case Opcode::kMapLookup:
      case Opcode::kMapExists:
      case Opcode::kMapUpdate:
      case Opcode::kMapDelete:
        if (insn.imm < 0 || insn.imm >= program.num_maps) {
          diag(static_cast<size_t>(pc), VerifyCheckKind::kResources, "undeclared map id " + std::to_string(insn.imm));
        }
        break;
      case Opcode::kMlCall:
        if (insn.imm < 0 || insn.imm >= program.num_models) {
          diag(static_cast<size_t>(pc), VerifyCheckKind::kResources, "undeclared model id " + std::to_string(insn.imm));
        }
        break;
      case Opcode::kMatMul:
      case Opcode::kVecAddT:
        if (insn.imm < 0 || insn.imm >= program.num_tensors) {
          diag(static_cast<size_t>(pc), VerifyCheckKind::kResources, "undeclared tensor id " + std::to_string(insn.imm));
        }
        break;
      case Opcode::kTailCall:
        if (insn.imm < 0 || insn.imm >= program.num_tables) {
          diag(static_cast<size_t>(pc), VerifyCheckKind::kResources, "undeclared tail-call table " + std::to_string(insn.imm));
        }
        break;
      // --- Pass 5: helpers and constant divisors ---
      case Opcode::kCall: {
        if (insn.imm < 0 || insn.imm >= static_cast<int64_t>(HelperId::kHelperCount)) {
          diag(static_cast<size_t>(pc), VerifyCheckKind::kHelpers, "unknown helper id " + std::to_string(insn.imm));
          break;
        }
        const auto helper = static_cast<HelperId>(insn.imm);
        const bool allowed =
            std::find(budget.allowed_helpers.begin(), budget.allowed_helpers.end(), helper) !=
            budget.allowed_helpers.end();
        if (!allowed) {
          diag(static_cast<size_t>(pc), VerifyCheckKind::kHelpers,
               std::string("helper '") + std::string(HelperName(helper)) +
                   "' not permitted for hook kind '" +
                   std::string(HookKindName(program.hook_kind)) + "'");
        }
        if (helper == HelperId::kDpNoise) {
          ++report.dp_noise_sites;
        }
        break;
      }
      case Opcode::kDivImm:
      case Opcode::kModImm:
        if (insn.imm == 0) {
          diag(static_cast<size_t>(pc), VerifyCheckKind::kHelpers, "constant zero divisor");
        }
        break;
      default:
        break;
    }
  }

  // Termination: last instruction must not fall through.
  const Opcode last = program.code.back().opcode;
  if (last != Opcode::kExit && !(last == Opcode::kJa)) {
    diag(static_cast<size_t>(n - 1), VerifyCheckKind::kTermination, "program can fall off the end (must end in exit)");
    cfg_ok = false;
  }

  // The remaining passes walk the CFG; skip them if it is malformed.
  if (cfg_ok) {
    // --- Pass 3: definite-initialization dataflow. Forward jumps only, so a
    // single in-order sweep reaches the fixpoint. ---
    std::vector<RegState> in_state(static_cast<size_t>(n));
    in_state[0] = RegState::Entry();
    // Longest path (pass 6) shares the sweep: dist[pc] = longest instruction
    // count to reach pc.
    std::vector<int64_t> dist(static_cast<size_t>(n), -1);
    dist[0] = 1;

    for (int64_t pc = 0; pc < n; ++pc) {
      RegState state = in_state[static_cast<size_t>(pc)];
      if (!state.reachable) {
        continue;  // dead code is legal, just unchecked
      }
      const Instruction& insn = program.code[static_cast<size_t>(pc)];
      const OperandRoles roles = RolesOf(insn.opcode);

      const auto require_scalar = [&](int reg, const char* what) {
        if (reg < kNumScalarRegs && (state.scalars & (1u << reg)) == 0) {
          diag(static_cast<size_t>(pc), VerifyCheckKind::kDataflow,
               std::string(what) + " r" + std::to_string(reg) + " read before initialization");
        }
      };
      const auto require_vector = [&](int reg, const char* what) {
        if (reg < kNumVectorRegs && (state.vectors & (1u << reg)) == 0) {
          diag(static_cast<size_t>(pc), VerifyCheckKind::kDataflow,
               std::string(what) + " v" + std::to_string(reg) + " read before initialization");
        }
      };

      if (roles.dst_scalar_read) {
        require_scalar(insn.dst, "dst");
      }
      if (roles.src_scalar_read) {
        require_scalar(insn.src, "src");
      }
      if (roles.dst_vector_read) {
        require_vector(insn.dst, "dst");
      }
      if (roles.src_vector_read) {
        require_vector(insn.src, "src");
      }
      if (insn.opcode == Opcode::kLdStack) {
        const int slot = StackSlot(insn.offset);
        if (slot >= 0 && slot < 64 && (state.stack & (1ull << slot)) == 0) {
          diag(static_cast<size_t>(pc), VerifyCheckKind::kDataflow, "stack slot read before initialization");
        }
      }
      if (insn.opcode == Opcode::kCall) {
        // Helpers read the five argument registers.
        for (int reg = 1; reg <= 5; ++reg) {
          require_scalar(reg, "helper argument");
        }
      }

      // Apply writes.
      if (roles.dst_scalar_write) {
        state.scalars |= (1u << insn.dst);
      }
      if (roles.dst_vector_write && insn.dst < kNumVectorRegs) {
        state.vectors |= (1u << insn.dst);
      }
      if (insn.opcode == Opcode::kCall) {
        state.scalars |= 1u;  // r0 = helper result
      }
      if (insn.opcode == Opcode::kStStack || insn.opcode == Opcode::kStStackImm) {
        const int slot = StackSlot(insn.offset);
        if (slot >= 0 && slot < 64) {
          state.stack |= (1ull << slot);
        }
      }

      // Propagate to successors (fall-through and/or branch target).
      const int64_t d = dist[static_cast<size_t>(pc)];
      const auto propagate = [&](int64_t successor) {
        if (successor >= n) {
          return;
        }
        in_state[static_cast<size_t>(successor)].MergeFrom(state);
        dist[static_cast<size_t>(successor)] =
            std::max(dist[static_cast<size_t>(successor)], d + 1);
      };
      if (insn.opcode == Opcode::kExit) {
        report.longest_path = std::max<uint64_t>(report.longest_path, static_cast<uint64_t>(d));
        continue;
      }
      if (insn.opcode == Opcode::kJa) {
        propagate(pc + 1 + insn.offset);
      } else if (IsConditional(insn.opcode)) {
        propagate(pc + 1 + insn.offset);
        propagate(pc + 1);
      } else {
        propagate(pc + 1);  // includes kTailCall's fall-through path
      }
    }

    if (report.longest_path > budget.max_path_length) {
      note(VerifyCheckKind::kCost,
          "longest execution path " + std::to_string(report.longest_path) +
          " exceeds hook budget " + std::to_string(budget.max_path_length));
    }

    // --- Pass 6 (cost model): work units of every referenced model/tensor.
    // Each tail call can cascade another full table action, so the budget is
    // applied per program; the pipeline applies the chain limit. ---
    std::vector<bool> counted_model(static_cast<size_t>(std::max<uint32_t>(program.num_models, 1)),
                                    false);
    std::vector<bool> counted_tensor(
        static_cast<size_t>(std::max<uint32_t>(program.num_tensors, 1)), false);
    for (int64_t pc = 0; pc < n; ++pc) {
      const Instruction& insn = program.code[static_cast<size_t>(pc)];
      if (insn.opcode == Opcode::kMlCall && models != nullptr && insn.imm >= 0 &&
          insn.imm < program.num_models && !counted_model[static_cast<size_t>(insn.imm)]) {
        counted_model[static_cast<size_t>(insn.imm)] = true;
        const ModelPtr model = models->Get(insn.imm);
        if (model != nullptr) {
          report.model_work_units += model->Cost().WorkUnits();
        }
      }
      if ((insn.opcode == Opcode::kMatMul || insn.opcode == Opcode::kVecAddT) &&
          tensors != nullptr && insn.imm >= 0 && insn.imm < program.num_tensors &&
          !counted_tensor[static_cast<size_t>(insn.imm)]) {
        counted_tensor[static_cast<size_t>(insn.imm)] = true;
        const FixedMatrix* tensor = tensors->Get(insn.imm);
        if (tensor != nullptr) {
          ModelCost cost;
          cost.macs = tensor->rows() * tensor->cols();
          report.model_work_units += cost.WorkUnits();
        }
      }
    }
    if (report.model_work_units > budget.max_work_units) {
      note(VerifyCheckKind::kCost,
          "ML work units " + std::to_string(report.model_work_units) + " exceed hook budget " +
          std::to_string(budget.max_work_units) +
          " (consider distillation or on-demand compression)");
    }

    // --- Pass 7: interference guards. Straight-program-order dominance
    // approximation: a granting call is guarded if some kRateLimitCheck call
    // appears earlier in the instruction stream. ---
    if (config_.require_rate_limit_guard) {
      bool seen_guard = false;
      for (int64_t pc = 0; pc < n; ++pc) {
        const Instruction& insn = program.code[static_cast<size_t>(pc)];
        if (insn.opcode != Opcode::kCall) {
          continue;
        }
        const auto helper = static_cast<HelperId>(insn.imm);
        if (helper == HelperId::kRateLimitCheck) {
          seen_guard = true;
        } else if ((helper == HelperId::kPrefetchEmit ||
                    helper == HelperId::kSetPriorityHint) &&
                   !seen_guard) {
          diag(static_cast<size_t>(pc), VerifyCheckKind::kInterference,
               std::string("resource-granting helper '") + std::string(HelperName(helper)) +
                   "' without a preceding rate_limit_check (run InsertRateLimitGuards)");
        }
      }
    }
  }

  // --- Pass 8: privacy budget ---
  report.epsilon_spend = report.dp_noise_sites * config_.epsilon_per_noise_site;
  if (report.epsilon_spend > config_.max_epsilon + 1e-12) {
    note(VerifyCheckKind::kPrivacy,
        "static epsilon spend " + std::to_string(report.epsilon_spend) +
        " exceeds privacy budget " + std::to_string(config_.max_epsilon));
  }

  report.status = report.diagnostics.empty()
                      ? OkStatus()
                      : VerificationFailedError("program '" + program.name + "': " +
                                                std::to_string(report.diagnostics.size()) +
                                                " verification diagnostics; first: " +
                                                report.diagnostics.front());
  RecordVerifyTelemetry(report, verify_start_ns);
  return report;
}

}  // namespace rkd
