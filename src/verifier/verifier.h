// The RMT program verifier (paper section 3.3).
//
// "Any code that is downloaded into the kernel must be safe." Admission
// control runs these static passes over a BytecodeProgram:
//
//   1. structure     — non-empty, valid opcodes, cannot fall off the end
//   2. control flow  — all jumps in range and strictly forward (so every
//                      admitted program has bounded execution, and the JIT
//                      tier may drop step accounting)
//   3. registers     — operand ranges; no scalar/vector register or stack
//                      slot is read before every path to it has written it
//   4. resources     — map/model/tensor/table ids within the program's
//                      declarations; ctxt slots and vector lanes in range
//   5. helpers       — per-hook whitelist ("constrained set of kernel
//                      functions"); constant-zero divisors rejected
//   6. cost model    — longest-path instruction count plus the work units of
//                      every referenced ML model and tensor must fit the
//                      hook's latency budget (scheduler hooks get microsecond
//                      budgets, prefetch hooks more, section 3.2)
//   7. interference  — resource-granting helpers (prefetch emit, priority
//                      hints) must be guarded by a rate-limit check; the
//                      companion pass in guards.h can insert the guard
//                      automatically ("the verifier may insert additional
//                      logic to enforce rate limits")
//   8. privacy       — each kDpNoise call site spends epsilon; total static
//                      spend must fit the per-program budget
//
// Verify() never stops at the first problem: the report carries every
// diagnostic so a program author fixes one round, not one error, per attempt.
#ifndef SRC_VERIFIER_VERIFIER_H_
#define SRC_VERIFIER_VERIFIER_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/bytecode/program.h"
#include "src/ml/model_registry.h"
#include "src/telemetry/telemetry.h"

namespace rkd {

// Which verification pass produced a diagnostic. Used to bucket rejection
// telemetry (rkd.verifier.reject.<kind>) so operators can see WHAT kind of
// unsafety admission control is catching, not just how often it fires.
enum class VerifyCheckKind : uint8_t {
  kStructure,     // empty / oversize program, invalid opcodes
  kControlFlow,   // backward or out-of-range jumps
  kRegisters,     // operand ranges, frame-pointer writes
  kResources,     // undeclared maps/models/tensors/tables, bad offsets
  kHelpers,       // helper whitelist, constant-zero divisors
  kTermination,   // program can fall off the end
  kDataflow,      // read-before-initialization
  kCost,          // path length / ML work units over the hook budget
  kInterference,  // unguarded resource-granting helpers
  kPrivacy,       // static epsilon spend over budget
  kCheckKindCount,
};
inline constexpr size_t kNumVerifyCheckKinds =
    static_cast<size_t>(VerifyCheckKind::kCheckKindCount);
std::string_view VerifyCheckKindName(VerifyCheckKind kind);

// Per-hook admission budget. Scheduler decision points run at microsecond
// granularity, prefetch decisions amortize over disk latency — the budgets
// encode that asymmetry.
struct HookBudget {
  uint64_t max_instructions = 512;   // static program length
  uint64_t max_path_length = 256;    // longest execution path
  uint64_t max_work_units = 1 << 14; // ML model cost (ModelCost::WorkUnits)
  std::vector<HelperId> allowed_helpers;
};

// The default budget table; tests construct custom ones.
HookBudget BudgetForHook(HookKind kind);

struct VerifierConfig {
  // When true, every kPrefetchEmit / kSetPriorityHint must be dominated (in
  // straight program order) by a kRateLimitCheck.
  bool require_rate_limit_guard = true;
  // Privacy: per-program epsilon budget and per-kDpNoise-call-site spend.
  double max_epsilon = 1.0;
  double epsilon_per_noise_site = 0.1;
  // Overrides BudgetForHook when set.
  const HookBudget* budget_override = nullptr;
};

struct VerifyReport {
  Status status;  // OK iff diagnostics is empty
  std::vector<std::string> diagnostics;
  // Diagnostic count per verification pass (indexed by VerifyCheckKind).
  std::array<uint32_t, kNumVerifyCheckKinds> diags_by_kind{};

  // Analysis results (valid when the structural passes succeeded).
  uint64_t longest_path = 0;       // instructions on the longest path
  uint64_t model_work_units = 0;   // summed cost of referenced models/tensors
  uint32_t dp_noise_sites = 0;
  double epsilon_spend = 0.0;
  bool ok() const { return status.ok(); }
};

class Verifier {
 public:
  explicit Verifier(VerifierConfig config = {}) : config_(config) {}

  // `models` / `tensors` may be null; model/tensor cost checks are then
  // limited to id-range validation (the control plane re-verifies cost at
  // model install time).
  VerifyReport Verify(const BytecodeProgram& program, const ModelRegistry* models = nullptr,
                      const TensorRegistry* tensors = nullptr) const;

  // Exports admission telemetry into `telemetry` under "rkd.verifier.*":
  // programs_checked, rejections, reject.<check kind>, and the verify_ns
  // latency histogram. Unbound verifiers (the default) record nothing.
  void BindTelemetry(TelemetryRegistry* telemetry);

  const VerifierConfig& config() const { return config_; }

 private:
  void RecordVerifyTelemetry(const VerifyReport& report, uint64_t start_ns) const;

  VerifierConfig config_;
  // Telemetry slice; null until BindTelemetry. Pointers so the const
  // Verify() can record through them.
  Counter* programs_checked_ = nullptr;
  Counter* rejections_ = nullptr;
  std::array<Counter*, kNumVerifyCheckKinds> reject_by_kind_{};
  LatencyHistogram* verify_ns_ = nullptr;
};

}  // namespace rkd

#endif  // SRC_VERIFIER_VERIFIER_H_
