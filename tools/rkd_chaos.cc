// rkd_chaos: deterministic fault-injection soak for the simulators.
//
// Arms a set of failpoints (see src/base/failpoints.h) and drives the
// case-study substrates — the CFS scheduler simulator behind the RMT
// migration oracle, the demand-paging simulator behind the RMT ML
// prefetcher, and the packet RX simulator behind the RMT net datapath —
// asserting the hook contract's graceful degradation: injected faults on the
// datapath (helper calls, model evaluation) may cost performance, never
// correctness or a crash. The scheduler scenario also runs the policy
// guardian, showing a faulting program being quarantined and the workload
// completing on the stock heuristic afterwards.
//
//   $ build/tools/rkd_chaos                 # full soak
//   $ build/tools/rkd_chaos --quick         # CI smoke (seconds)
//   $ build/tools/rkd_chaos --fail=ml.eval=always+error --bound=2.0
//
// Exit code: 0 = every invariant held, 1 = a degradation bound or sanity
// check failed, 2 = usage error.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/base/failpoints.h"
#include "src/bytecode/assembler.h"
#include "src/ml/mlp.h"
#include "src/ml/quantize.h"
#include "src/rmt/governor.h"
#include "src/rmt/guardian.h"
#include "src/sim/mem/memory_sim.h"
#include "src/sim/mem/ml_prefetcher.h"
#include "src/sim/mem/readahead.h"
#include "src/sim/net/net_sim.h"
#include "src/sim/net/rx_datapath.h"
#include "src/sim/sched/cfs_sim.h"
#include "src/sim/sched/rmt_oracle.h"
#include "src/workloads/access_trace.h"
#include "src/workloads/cpu_jobs.h"
#include "src/workloads/packet_trace.h"

namespace {

using namespace rkd;

int g_failures = 0;

void Check(bool ok, const char* what, const std::string& detail) {
  std::printf("  [%s] %s%s%s\n", ok ? "ok" : "FAIL", what, detail.empty() ? "" : ": ",
              detail.c_str());
  if (!ok) {
    ++g_failures;
  }
}

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--quick] [--storm] [--bound=R] [--fail=name=spec ...]\n"
               "  --quick       smaller workloads (CI smoke)\n"
               "  --storm       overload-storm scenario only (governor ladder)\n"
               "  --bound=R     completion-time slack vs the stock baseline (default 1.5)\n"
               "  --fail=D      failpoint directive, e.g. ml.eval=every:3+error\n"
               "                (repeatable; replaces the default set)\n",
               argv0);
}

// --- Scenario 3: overload storm — multi-thread burst fires against a
// latency-payload failpoint, with the overload governor driving the
// degradation ladder. Invariants: fire p99 stays bounded once the ladder
// engages (the fallback oracle serves, not the 1ms-latency learned path),
// and the program recovers to kFull after the storm passes. ---

void SoakOverloadStorm(bool quick) {
  std::printf("=== overload storm (burst fire + latency payload + governor) ===\n");

  HookRegistry hooks;
  ControlPlane cp(&hooks);
  const HookId hook = *hooks.Register("generic.burst", HookKind::kGeneric);
  (void)hooks.SetFallbackOracle(hook, [](uint64_t key, std::span<const int64_t>) {
    return static_cast<int64_t>(key) + 1;  // the cheap heuristic answer
  });

  // Helper call + long straight-line body, so both VM tiers cross a deadline
  // poll after the latency payload has been paid.
  Assembler a("storm_add", HookKind::kGeneric);
  a.Call(HelperId::kGetTime);
  a.Mov(0, 1);
  for (int i = 0; i < 160; ++i) {
    a.AddImm(0, 1);
  }
  a.Exit();
  RmtProgramSpec spec;
  spec.name = "storm_prog";
  spec.fire_deadline_ns = 100'000;  // 100us budget per fire
  RmtTableSpec table;
  table.name = "tab";
  table.hook_point = "generic.burst";
  table.actions.push_back(std::move(a.Build()).value());
  table.default_action = 0;
  spec.tables.push_back(std::move(table));
  Result<ControlPlane::ProgramHandle> handle = cp.Install(std::move(spec));
  if (!handle.ok()) {
    Check(false, "install storm program", handle.status().ToString());
    return;
  }

  OverloadGovernor governor(&cp);
  GovernorConfig config;
  config.window_fires = 64;
  config.max_deadline_rate = 0.25;
  config.promote_windows = 3;  // stays degraded through the whole storm
  config.shed_probe_ticks = 2;
  if (!governor.Govern(*handle, config).ok()) {
    Check(false, "govern storm program", "");
    return;
  }

  // The storm payload: every helper call busy-waits 1ms — 10x the fire
  // budget — so at kFull every execution overruns its deadline.
  FailpointRegistry& failpoints = FailpointRegistry::Global();
  (void)failpoints.EnableFromDirective("vm.helper=always+latency:1000000");

  const int kThreads = 4;
  const int per_thread = quick ? 32 : 128;
  const auto burst = [&] {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&hooks, hook, per_thread] {
        for (int i = 0; i < per_thread; ++i) {
          hooks.Fire(hook, 7);
        }
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  };

  // Round 1: the ladder engages — the burst fills the verdict window with
  // deadline overruns and the tick demotes to the fallback oracle.
  burst();
  for (const OverloadGovernor::LadderEvent& event : governor.Tick().transitions) {
    std::printf("  governor: %s %s -> %s (%s)\n", event.program.c_str(),
                std::string(GovLevelName(event.from)).c_str(),
                std::string(GovLevelName(event.to)).c_str(), event.reason.c_str());
  }
  Check(governor.LevelOf(*handle) == GovLevel::kDegraded, "ladder engages under storm",
        std::string(GovLevelName(governor.LevelOf(*handle))));

  // Round 2: still storming, but the fallback oracle serves; fire p99 over
  // this round must stay bounded by the fire budget even though the latency
  // payload is still armed.
  const HookMetrics metrics = hooks.MetricsOf(hook);
  HistogramWindow window;
  window.Reset(metrics.fire_ns());
  const uint64_t degraded_before = metrics.degraded_fires();
  burst();
  const double p99 = window.DeltaPercentile(metrics.fire_ns(), 99.0);
  Check(p99 > 0.0 && p99 < 100'000.0, "fire p99 bounded while degraded",
        std::to_string(p99) + "ns vs 100000ns budget");
  Check(metrics.degraded_fires() - degraded_before ==
            static_cast<uint64_t>(kThreads * per_thread),
        "every storm fire answered by the fallback oracle", "");
  governor.Tick();

  // The storm passes: clean ticks walk the program back up to kFull.
  failpoints.DisableAll();
  for (int i = 0; i < 8 && governor.LevelOf(*handle) != GovLevel::kFull; ++i) {
    governor.Tick();
  }
  Check(governor.LevelOf(*handle) == GovLevel::kFull, "recovery to kFull after the storm",
        std::string(GovLevelName(governor.LevelOf(*handle))));
  Check(hooks.Fire(hook, 7) == 7 + 160, "learned policy serves again", "");

  TelemetryRegistry& telemetry = cp.telemetry();
  std::printf("  rkd.gov.demotions=%llu rkd.gov.promotions=%llu degraded_fires=%llu\n",
              static_cast<unsigned long long>(
                  telemetry.GetCounter("rkd.gov.demotions")->value()),
              static_cast<unsigned long long>(
                  telemetry.GetCounter("rkd.gov.promotions")->value()),
              static_cast<unsigned long long>(metrics.degraded_fires()));
}

// --- Scenario 3b: the same storm against the net datapath. The learned
// flow action is a handful of instructions — too short to cross a
// mid-execution deadline poll — so the overload is scripted through the
// program's injectable timebase instead of a latency failpoint: every clock
// read jumps past the fire budget, each execution overruns at the entry
// poll, and the ladder must demote the program to the governor's RSS
// fallback oracle. ---

// Every Now() read advances the timebase by `step`; a step larger than the
// fire budget makes each execution overrun its deadline at the entry poll.
struct StormClock {
  std::atomic<uint64_t> now{1};
  std::atomic<uint64_t> step{0};
  uint64_t Read() { return now.fetch_add(step.load()) + step.load(); }
};

void SoakNetStorm(bool quick) {
  std::printf("=== net overload storm (scripted timebase + governor) ===\n");

  NetConfig net_config;
  net_config.fire_deadline_ns = 100'000;  // 100us budget per fire
  net_config.enable_tiering = false;      // hold the program on its install tier
  RmtRxDatapath datapath(net_config, RxPolicyKind::kLearned);
  const Status init = datapath.Init();
  if (!init.ok()) {
    Check(false, "init net datapath", init.ToString());
    return;
  }
  // No model installed: the learned action answers with the RSS hash — the
  // storm is about deadline overruns, not steering quality.

  auto clock = std::make_shared<StormClock>();
  OverloadGovernor governor(&datapath.control_plane(),
                            [clock] { return clock->Read(); });
  GovernorConfig config;
  config.window_fires = 64;
  config.max_deadline_rate = 0.25;
  config.promote_windows = 3;
  config.shed_probe_ticks = 2;
  if (!governor.Govern(datapath.handle(), config).ok()) {
    Check(false, "govern net program", "");
    return;
  }

  // The storm: each clock read jumps 1.5x the whole fire budget.
  clock->step = 150'000;

  HookRegistry& hooks = datapath.hooks();
  const HookId hook = datapath.packet_hook();
  const int kThreads = 4;
  const int per_thread = quick ? 32 : 128;
  const auto burst = [&hooks, hook, kThreads, per_thread] {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&hooks, hook, per_thread, t] {
        const int64_t args[1] = {kRxPass};  // clean ACL verdict
        for (int i = 0; i < per_thread; ++i) {
          const uint64_t flow = (static_cast<uint64_t>(t + 1) << 32) + i;
          hooks.Fire(hook, flow, args);
        }
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  };

  burst();
  for (const OverloadGovernor::LadderEvent& event : governor.Tick().transitions) {
    std::printf("  governor: %s %s -> %s (%s)\n", event.program.c_str(),
                std::string(GovLevelName(event.from)).c_str(),
                std::string(GovLevelName(event.to)).c_str(), event.reason.c_str());
  }
  Check(governor.LevelOf(datapath.handle()) == GovLevel::kDegraded,
        "net ladder engages under storm",
        std::string(GovLevelName(governor.LevelOf(datapath.handle()))));

  const HookMetrics metrics = hooks.MetricsOf(hook);
  HistogramWindow window;
  window.Reset(metrics.fire_ns());
  const uint64_t degraded_before = metrics.degraded_fires();
  burst();
  const double p99 = window.DeltaPercentile(metrics.fire_ns(), 99.0);
  Check(p99 > 0.0 && p99 < 100'000.0, "net fire p99 bounded while degraded",
        std::to_string(p99) + "ns vs 100000ns budget");
  Check(metrics.degraded_fires() - degraded_before ==
            static_cast<uint64_t>(kThreads * per_thread),
        "every storm packet answered by the RSS fallback oracle", "");
  governor.Tick();

  // The storm passes: the timebase behaves again and clean ticks walk the
  // program back up to kFull.
  clock->step = 0;
  for (int i = 0; i < 8 && governor.LevelOf(datapath.handle()) != GovLevel::kFull; ++i) {
    governor.Tick();
  }
  Check(governor.LevelOf(datapath.handle()) == GovLevel::kFull,
        "net recovery to kFull after the storm",
        std::string(GovLevelName(governor.LevelOf(datapath.handle()))));
  const int64_t args[1] = {kRxPass};
  const int64_t decision = hooks.Fire(hook, 0x123456789abcdefull, args);
  Check(decision >= 0 && decision < static_cast<int64_t>(datapath.config().queues),
        "learned program steers again", std::to_string(decision));

  TelemetryRegistry& telemetry = datapath.control_plane().telemetry();
  std::printf("  rkd.gov.demotions=%llu rkd.gov.promotions=%llu degraded_fires=%llu\n",
              static_cast<unsigned long long>(
                  telemetry.GetCounter("rkd.gov.demotions")->value()),
              static_cast<unsigned long long>(
                  telemetry.GetCounter("rkd.gov.promotions")->value()),
              static_cast<unsigned long long>(metrics.degraded_fires()));
}

// --- Scenario 1: scheduler under model/helper faults, with the guardian ---

void SoakScheduler(bool quick, double bound, const std::vector<std::string>& directives) {
  std::printf("=== scheduler soak (CfsSim + RmtMigrationOracle) ===\n");

  JobConfig job_config;
  if (quick) {
    job_config.num_tasks = 8;
    job_config.base_work = 500;
  }
  const JobSpec job = MakeJob(JobKind::kStreamcluster, job_config);
  SchedConfig sched_config;
  CfsSim sim(sched_config);

  const SchedMetrics stock = sim.Run(job);
  std::printf("  stock heuristic: %llu ticks\n",
              static_cast<unsigned long long>(stock.ticks));

  // Train a migration model the usual way, then put faults in its path.
  Dataset train = CollectMigrationDataset(sched_config, job);
  MlpConfig mlp_config;
  mlp_config.hidden_sizes = {16, 16};
  mlp_config.epochs = quick ? 20 : 40;
  Result<Mlp> mlp = Mlp::Train(train, mlp_config);
  if (!mlp.ok()) {
    Check(false, "train migration model", mlp.status().ToString());
    return;
  }
  Result<QuantizedMlp> quantized = QuantizedMlp::FromMlp(*mlp);
  if (!quantized.ok()) {
    Check(false, "quantize migration model", quantized.status().ToString());
    return;
  }
  RmtMigrationOracle oracle;
  Status status = oracle.Init();
  if (status.ok()) {
    status = oracle.InstallModel(
        std::make_shared<QuantizedMlp>(std::move(quantized).value()));
  }
  if (!status.ok()) {
    Check(false, "install migration oracle", status.ToString());
    return;
  }

  // Guard the oracle's program: one trip quarantines it for good.
  PolicyGuardian guardian(&oracle.control_plane());
  BreakerConfig breaker;
  breaker.window_execs = 64;
  breaker.max_error_rate = 0.2;
  breaker.max_trips = 1;
  status = guardian.Guard(oracle.handle(), breaker);
  if (!status.ok()) {
    Check(false, "guard oracle program", status.ToString());
    return;
  }

  FailpointRegistry& failpoints = FailpointRegistry::Global();
  for (const std::string& directive : directives) {
    std::printf("  arm %s\n", directive.c_str());
    const Status armed = failpoints.EnableFromDirective(directive);
    if (!armed.ok()) {
      Check(false, "arm failpoint", armed.ToString());
      return;
    }
  }

  const SchedMetrics faulted = sim.Run(job, oracle.AsOracle());
  Check(faulted.completed, "faulted run completes", "");
  Check(static_cast<double>(faulted.ticks) <= bound * static_cast<double>(stock.ticks),
        "faulted run within bound",
        std::to_string(faulted.ticks) + " ticks vs " + std::to_string(stock.ticks) +
            " stock (bound " + std::to_string(bound) + "x)");
  std::printf("  faulted: %llu ticks, %llu/%llu decisions fell back\n",
              static_cast<unsigned long long>(faulted.ticks),
              static_cast<unsigned long long>(faulted.oracle_fallbacks),
              static_cast<unsigned long long>(faulted.decisions));

  // The guardian sees the exec-error rate and quarantines the program — but
  // only if the armed directives actually hit its datapath (a map-only fault
  // set, say, never touches a program with no map ops, and a clean program
  // must be left alone).
  const PolicyGuardian::TickSummary summary = guardian.Tick();
  for (const PolicyGuardian::GuardEvent& event : summary.transitions) {
    std::printf("  guardian: %s %s -> %s (%s)\n", event.program.c_str(),
                std::string(GuardStateName(event.from)).c_str(),
                std::string(GuardStateName(event.to)).c_str(), event.reason.c_str());
  }
  if (faulted.oracle_fallbacks > 0) {
    Check(guardian.StateOf(oracle.handle()) == GuardState::kQuarantined,
          "guardian quarantines the faulting program", "");

    // Quarantined: the hook reverts to the stock heuristic wholesale, so the
    // workload behaves exactly as stock even with failpoints still armed.
    const SchedMetrics contained = sim.Run(job, oracle.AsOracle());
    Check(contained.completed, "contained run completes", "");
    Check(contained.oracle_fallbacks == contained.decisions,
          "quarantined program never decides", "");
    Check(contained.ticks == stock.ticks, "contained run matches stock ticks",
          std::to_string(contained.ticks) + " vs " + std::to_string(stock.ticks));
  } else {
    std::printf("  directives never hit the oracle's datapath\n");
    Check(guardian.StateOf(oracle.handle()) == GuardState::kHealthy,
          "guardian leaves the unaffected program alone", "");
  }

  failpoints.DisableAll();

  TelemetryRegistry& telemetry = oracle.control_plane().telemetry();
  std::printf("  rkd.guard.trips=%llu rkd.guard.quarantines=%llu\n",
              static_cast<unsigned long long>(telemetry.GetCounter("rkd.guard.trips")->value()),
              static_cast<unsigned long long>(
                  telemetry.GetCounter("rkd.guard.quarantines")->value()));
}

// --- Scenario 2: prefetcher under helper/model faults ---

void SoakPrefetcher(bool quick, double bound, const std::vector<std::string>& directives) {
  std::printf("=== prefetcher soak (MemorySim + RmtMlPrefetcher) ===\n");

  Rng rng(2021);
  VideoResizeConfig video;
  if (quick) {
    video.frames = 8;
  }
  const AccessTrace trace = MakeVideoResizeTrace(video, rng);
  MemSimConfig mem_config;
  mem_config.frame_capacity = 192;

  // Stock-kernel baseline: Linux-style readahead, no faults.
  ReadaheadPrefetcher readahead;
  MemorySim readahead_sim(mem_config, &readahead);
  const MemMetrics stock = readahead_sim.Run(trace);
  // Degradation floor: demand paging only. A prefetcher whose actions fault
  // must never do worse than having no prefetcher at all (within slack).
  NullPrefetcher none;
  MemorySim null_sim(mem_config, &none);
  const MemMetrics floor = null_sim.Run(trace);
  std::printf("  readahead: %.3fs, demand-only: %.3fs\n", stock.completion_seconds(),
              floor.completion_seconds());

  RmtMlPrefetcher prefetcher;
  const Status status = prefetcher.Init();
  if (!status.ok()) {
    Check(false, "init ml prefetcher", status.ToString());
    return;
  }

  FailpointRegistry& failpoints = FailpointRegistry::Global();
  for (const std::string& directive : directives) {
    std::printf("  arm %s\n", directive.c_str());
    const Status armed = failpoints.EnableFromDirective(directive);
    if (!armed.ok()) {
      Check(false, "arm failpoint", armed.ToString());
      return;
    }
  }

  MemorySim faulted_sim(mem_config, &prefetcher);
  const MemMetrics faulted = faulted_sim.Run(trace);
  failpoints.DisableAll();

  Check(faulted.accesses == trace.size(), "every access served",
        std::to_string(faulted.accesses) + " of " + std::to_string(trace.size()));
  Check(faulted.completion_seconds() <= bound * floor.completion_seconds(),
        "faulted run within bound of demand paging",
        std::to_string(faulted.completion_seconds()) + "s vs " +
            std::to_string(floor.completion_seconds()) + "s floor (bound " +
            std::to_string(bound) + "x)");
  std::printf("  faulted ml prefetcher: %.3fs, accuracy %.1f%%, coverage %.1f%%\n",
              faulted.completion_seconds(), faulted.accuracy() * 100.0,
              faulted.coverage() * 100.0);

  TelemetryRegistry& telemetry = prefetcher.hooks().telemetry();
  std::printf("  exec errors under fault: %llu\n",
              static_cast<unsigned long long>(
                  telemetry.GetCounter("rkd.hook.mm.swap_cluster_readahead.exec_errors")
                      ->value()));
}

// --- Scenario 4: net datapath under model/helper faults. The learned flow
// action's MlCall is the fault surface; every injected exec error must fall
// back to the static RSS answer, so accounting stays exact and legitimate
// traffic keeps flowing within the bound. ---

void SoakNetDatapath(bool quick, double bound, const std::vector<std::string>& directives) {
  std::printf("=== net soak (NetRxSim + RmtRxDatapath learned steering) ===\n");

  const NetConfig net_config;
  // Same shape as rkd_net's trace: Zipf flows plus a flood window over the
  // back third, big enough for the tree to learn the rank/hash/flood splits.
  PacketTraceConfig trace_config;
  trace_config.packets = quick ? 8192 : 32768;
  trace_config.flows = 512;
  trace_config.prefixes = 64;
  trace_config.flood_begin = 0.55;
  trace_config.flood_end = 0.85;
  trace_config.flood_prob = 0.5;
  trace_config.victim_prefix = 7;
  Rng rng(2021);
  const PacketTrace trace = MakePacketTrace(trace_config, rng);

  // Stock baseline: the heuristic RSS policy, no faults. Its run doubles as
  // the training pass for the learned steering model.
  RmtRxDatapath heuristic(net_config, RxPolicyKind::kHeuristic);
  Status status = heuristic.Init();
  if (!status.ok()) {
    Check(false, "init heuristic datapath", status.ToString());
    return;
  }
  Dataset training(kNetFeatureCount);
  NetRxSim stock_sim(&heuristic);
  stock_sim.set_training_sink(&training);
  stock_sim.Run(trace);
  const NetMetrics& stock = stock_sim.metrics();
  std::printf("  stock heuristic: legit delivery %.4f, imbalance %.3f\n",
              stock.LegitDeliveryRate(), stock.SteeringImbalance());

  Result<ModelPtr> model = TrainNetModel(training, NetModelFamily::kDecisionTree, 2021);
  if (!model.ok()) {
    Check(false, "train steering model", model.status().ToString());
    return;
  }
  RmtRxDatapath learned(net_config, RxPolicyKind::kLearned);
  status = learned.Init();
  if (status.ok()) {
    status = learned.InstallModel(std::move(model).value());
  }
  if (!status.ok()) {
    Check(false, "install learned datapath", status.ToString());
    return;
  }

  FailpointRegistry& failpoints = FailpointRegistry::Global();
  for (const std::string& directive : directives) {
    std::printf("  arm %s\n", directive.c_str());
    const Status armed = failpoints.EnableFromDirective(directive);
    if (!armed.ok()) {
      Check(false, "arm failpoint", armed.ToString());
      return;
    }
  }

  NetRxSim faulted_sim(&learned);
  faulted_sim.Run(trace);
  failpoints.DisableAll();
  const NetMetrics& faulted = faulted_sim.metrics();

  Check(faulted.packets == trace.size(), "every packet decided",
        std::to_string(faulted.packets) + " of " + std::to_string(trace.size()));
  Check(faulted.legit_packets + faulted.flood_packets == faulted.packets,
        "flood/legit split accounts for every packet", "");
  Check(faulted.legit_delivered + faulted.legit_dropped == faulted.legit_packets &&
            faulted.flood_delivered + faulted.flood_dropped == faulted.flood_packets,
        "delivery accounting balances under fault", "");
  Check(faulted.LegitDeliveryRate() >= stock.LegitDeliveryRate() / bound,
        "faulted legit delivery within bound of stock",
        std::to_string(faulted.LegitDeliveryRate()) + " vs " +
            std::to_string(stock.LegitDeliveryRate()) + " stock (bound " +
            std::to_string(bound) + "x)");
  std::printf("  faulted learned: legit delivery %.4f, imbalance %.3f, fallbacks %llu\n",
              faulted.LegitDeliveryRate(), faulted.SteeringImbalance(),
              static_cast<unsigned long long>(faulted.fallback_decisions));

  TelemetryRegistry& telemetry = learned.hooks().telemetry();
  std::printf("  exec errors under fault: %llu\n",
              static_cast<unsigned long long>(
                  telemetry.GetCounter("rkd.hook.net.rx.packet.exec_errors")->value()));
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool storm = false;
  double bound = 1.5;
  std::vector<std::string> directives;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(arg, "--storm") == 0) {
      storm = true;
    } else if (std::strncmp(arg, "--bound=", 8) == 0) {
      bound = std::strtod(arg + 8, nullptr);
    } else if (std::strncmp(arg, "--fail=", 7) == 0) {
      directives.emplace_back(arg + 7);
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (bound <= 0.0) {
    Usage(argv[0]);
    return 2;
  }
  if (directives.empty()) {
    // Default chaos set: intermittent model-evaluation faults and helper
    // faults — the two datapath seams a deployed policy actually has.
    directives = {"ml.eval=every:3+error", "vm.helper=every:7+error"};
  }

  if (storm) {
    SoakOverloadStorm(quick);
    SoakNetStorm(quick);
  } else {
    SoakScheduler(quick, bound, directives);
    SoakPrefetcher(quick, bound, directives);
    SoakNetDatapath(quick, bound, directives);
  }

  if (g_failures > 0) {
    std::printf("\nrkd_chaos: %d invariant(s) violated\n", g_failures);
    return 1;
  }
  std::printf("\nrkd_chaos: all invariants held\n");
  return 0;
}
