// rkd_mtfire: multi-threaded fire driver for the epoch-based datapath.
//
// Exercises the concurrency model end-to-end with real programs: the
// scheduler migration program ("sched.can_migrate_task"), both memory
// programs ("mm.lookup_swap_cache" + "mm.swap_cluster_readahead"), and the
// packet RX pipeline ("net.rx.route" / "net.rx.classify" / "net.rx.packet")
// are installed into one registry, then N threads fire all the hooks at full
// rate while (optionally, --churn) a reconfigurer thread mutates tables,
// hot-swaps models, and suspends/resumes programs through the control
// plane. Every fire's result is checked against the closed set of values
// the installed actions can produce, so a torn snapshot, use-after-retire,
// or lost update shows up as an invariant failure (and, under
// -fsanitize=thread, as a TSan report).
//
// Thread discipline mirrors a real kernel datapath: the match key is a pid,
// and per-pid execution context is only ever touched by the thread that
// owns the pid (threads fire disjoint pid ranges). Everything the threads
// DO share — the hook directory, attachment lists, model slots, table
// snapshots, telemetry, rate limiter, sample ring, prediction log — is
// exactly the surface the epoch scheme and the sharded/atomic telemetry
// protect.
//
//   $ build/tools/rkd_mtfire                      # soak: 4 threads + churn
//   $ build/tools/rkd_mtfire --threads=8          # wider fan-out
//   $ build/tools/rkd_mtfire --quick              # CI smoke (seconds)
//   $ build/tools/rkd_mtfire --no-churn           # readers only
//
// Exit code: 0 = every invariant held, 1 = an invariant failed, 2 = usage.
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/base/epoch.h"
#include "src/ml/decision_tree.h"
#include "src/ml/quantize.h"
#include "src/rmt/control_plane.h"
#include "src/rmt/hooks.h"
#include "src/sim/mem/ml_prefetcher.h"
#include "src/sim/net/rx_datapath.h"
#include "src/sim/sched/rmt_oracle.h"

namespace {

using namespace rkd;

int g_failures = 0;

void Check(bool ok, const char* what, const std::string& detail) {
  std::printf("  [%s] %s%s%s\n", ok ? "ok" : "FAIL", what, detail.empty() ? "" : ": ",
              detail.c_str());
  if (!ok) {
    ++g_failures;
  }
}

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--threads=N] [--seconds=S] [--quick] [--no-churn]\n"
               "  --threads=N   fire threads (default 4)\n"
               "  --seconds=S   soak duration per phase (default 3)\n"
               "  --quick       CI smoke: 2 threads, ~1s\n"
               "  --no-churn    skip the reconfigurer thread\n",
               argv0);
}

// Deterministic single-leaf tree: Predict() == label for any input.
ModelPtr MakeConstantTree(int32_t label) {
  Dataset data(1);
  data.Add(std::array<int32_t, 1>{0}, label);
  data.Add(std::array<int32_t, 1>{1}, label);
  return std::make_shared<DecisionTree>(std::move(DecisionTree::Train(data)).value());
}

struct FireTally {
  uint64_t fires = 0;
  uint64_t fallbacks = 0;
};

}  // namespace

int main(int argc, char** argv) {
  int threads = 4;
  int seconds = 3;
  bool churn = true;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      threads = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--seconds=", 10) == 0) {
      seconds = std::atoi(arg + 10);
    } else if (std::strcmp(arg, "--quick") == 0) {
      threads = 2;
      seconds = 1;
    } else if (std::strcmp(arg, "--no-churn") == 0) {
      churn = false;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (threads < 1 || threads > 64 || seconds < 1) {
    Usage(argv[0]);
    return 2;
  }

  std::printf("rkd_mtfire: %d fire threads, %ds, churn=%s\n", threads, seconds,
              churn ? "on" : "off");

  // --- Setup: one registry, both sim programs, driver-owned bindings. ---
  // The sims' own bindings close over single-threaded simulator state (the
  // prefetcher appends to a plain emit buffer), so the driver substitutes
  // thread-safe equivalents: a virtual clock and an emitted-pages counter,
  // both atomics.
  HookRegistry hooks;
  ControlPlane cp(&hooks);

  std::atomic<uint64_t> virtual_now{0};
  std::atomic<uint64_t> pages_emitted{0};

  SubsystemBindings mem_bindings;
  mem_bindings.now = [&virtual_now] { return virtual_now.load(std::memory_order_relaxed); };
  mem_bindings.prefetch_emit = [&pages_emitted](int64_t /*first*/, int64_t count) {
    pages_emitted.fetch_add(static_cast<uint64_t>(count > 0 ? count : 0),
                            std::memory_order_relaxed);
  };

  SubsystemBindings net_bindings;
  net_bindings.now = [&virtual_now] { return virtual_now.load(std::memory_order_relaxed); };

  auto sched_hook = hooks.Register("sched.can_migrate_task", HookKind::kSchedMigrate);
  auto access_hook = hooks.Register("mm.lookup_swap_cache", HookKind::kMemAccess, mem_bindings);
  auto prefetch_hook =
      hooks.Register("mm.swap_cluster_readahead", HookKind::kMemPrefetch, mem_bindings);
  auto route_hook = hooks.Register("net.rx.route", HookKind::kNetRx, net_bindings);
  auto classify_hook = hooks.Register("net.rx.classify", HookKind::kNetRx, net_bindings);
  auto packet_hook = hooks.Register("net.rx.packet", HookKind::kNetRx, net_bindings);
  if (!sched_hook.ok() || !access_hook.ok() || !prefetch_hook.ok() || !route_hook.ok() ||
      !classify_hook.ok() || !packet_hook.ok()) {
    std::fprintf(stderr, "hook registration failed\n");
    return 1;
  }

  // Program specs come straight from the sims' builders; the driver installs
  // them into its own control plane (the builders are only spec factories
  // here — Init() is never called, so their private registries stay empty).
  auto sched_handle = cp.Install(RmtMigrationOracle{}.BuildProgramSpec("mt_sched_prog"));
  auto mem_handle = cp.Install(RmtMlPrefetcher{}.BuildProgramSpec("mt_prefetch_prog"));
  const NetConfig net_config;
  auto net_handle =
      cp.Install(RmtRxDatapath(net_config, RxPolicyKind::kHeuristic)
                     .BuildProgramSpec(RxPolicyKind::kHeuristic, "mt_net_prog"));
  if (!sched_handle.ok() || !mem_handle.ok() || !net_handle.ok()) {
    std::fprintf(stderr, "program install failed\n");
    return 1;
  }

  // Sched model: constant tree -> every fire returns its label. The label
  // set {0, 1, 2} is what the churn thread rotates through, so readers can
  // check against the closed set.
  Check(cp.InstallModel(*sched_handle, 0, MakeConstantTree(1)).ok(), "sched model installed",
        "");
  // Prefetch model: constant class 1, vocabulary maps class 1 -> delta 4,
  // depth knob 2. The prefetch action then takes the prediction path and
  // emits through the (atomic) binding; its r0 is always 0.
  Check(cp.InstallModel(*mem_handle, 0, MakeConstantTree(1)).ok(), "prefetch model installed",
        "");
  Check(cp.WriteMap(*mem_handle, /*config map*/ 0, /*knob key*/ 0, 2).ok(), "depth knob set",
        "");
  Check(cp.WriteMap(*mem_handle, /*vocab map*/ 1, /*class*/ 1, /*delta*/ 4).ok(),
        "vocabulary entry set", "");

  // Pre-create every pid's context entry on this thread, before any fire:
  // the context store's hash map is not safe against concurrent insert, and
  // per-pid entries are single-writer by the pid-ownership discipline. Each
  // thread owns pids [t*kPidsPerThread, (t+1)*kPidsPerThread).
  constexpr uint64_t kPidsPerThread = 16;
  ContextStore& sched_ctxt = cp.Get(*sched_handle)->context();
  ContextStore& mem_ctxt = cp.Get(*mem_handle)->context();
  for (uint64_t pid = 0; pid < static_cast<uint64_t>(threads) * kPidsPerThread; ++pid) {
    ContextEntry* entry = sched_ctxt.FindOrCreate(pid);
    if (entry != nullptr) {
      entry->features.fill(RawToQ16(0.5));
    }
    (void)mem_ctxt.FindOrCreate(pid);
  }

  // --- Fire phase. ---
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad_results{0};
  std::vector<FireTally> tallies(static_cast<size_t>(threads));

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      FireTally tally;
      const uint64_t pid_base = static_cast<uint64_t>(t) * kPidsPerThread;
      std::array<HookEvent, 8> batch;
      std::array<int64_t, 8> batch_results;
      uint64_t iter = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t pid = pid_base + iter % kPidsPerThread;
        const int64_t page = static_cast<int64_t>(100 + iter % 64);

        // Sched fire: constant tree -> label in {0,1,2}; kHookFallback when
        // the program is suspended or mid-swap.
        const int64_t decision = hooks.Fire(*sched_hook, pid);
        if (!(decision == kHookFallback || (decision >= 0 && decision <= 2))) {
          bad_results.fetch_add(1, std::memory_order_relaxed);
        }

        // Mem access fire: action always exits r0=0 (or fallback).
        const int64_t args[2] = {static_cast<int64_t>(pid), page};
        const int64_t observed = hooks.Fire(*access_hook, pid, args);
        if (!(observed == 0 || observed == kHookFallback)) {
          bad_results.fetch_add(1, std::memory_order_relaxed);
        }

        // Prefetch fires, batched: exercises FireBatch's shared-prologue
        // path under contention.
        const uint32_t n = 4;
        for (uint32_t i = 0; i < n; ++i) {
          batch[i] = HookEvent(pid, {static_cast<int64_t>(pid), page + i});
        }
        hooks.FireBatch(*prefetch_hook, std::span(batch.data(), n),
                        std::span(batch_results.data(), n));
        for (uint32_t i = 0; i < n; ++i) {
          if (!(batch_results[i] == 0 || batch_results[i] == kHookFallback)) {
            bad_results.fetch_add(1, std::memory_order_relaxed);
          }
          if (batch_results[i] == kHookFallback) {
            ++tally.fallbacks;
          }
        }

        // Net RX fires, batched: each thread steers its own flow range and
        // rotates the ACL verdict argument through pass/drop/redirect so all
        // three branches of the flow action run under contention. The
        // heuristic action's result set is closed: an RSS queue in
        // [0, queues), the packed drop/redirect verdicts, or fallback.
        const uint64_t flow_base = (pid_base + 1) << 32;
        for (uint32_t i = 0; i < n; ++i) {
          const uint64_t flow = flow_base + (iter + i) % 64;
          const int64_t acl = static_cast<int64_t>((iter + i) % 3);
          batch[i] = HookEvent(flow, {acl, /*route_class=*/0, /*length=*/64});
        }
        hooks.FireBatch(*packet_hook, std::span(batch.data(), n),
                        std::span(batch_results.data(), n));
        for (uint32_t i = 0; i < n; ++i) {
          const int64_t r = batch_results[i];
          const bool steered = r >= 0 && r < net_config.queues;
          const bool verdict = r == MakeRxDecision(kRxDrop, 0) ||
                               r == MakeRxDecision(kRxRedirect, 0);
          if (!(steered || verdict || r == kHookFallback)) {
            bad_results.fetch_add(1, std::memory_order_relaxed);
          }
          if (r == kHookFallback) {
            ++tally.fallbacks;
          }
        }
        // Route + classify stages on the same packet window.
        const int64_t route = hooks.Fire(*route_hook, PrefixBase(iter % 256) + 1);
        if (!(route == kHookFallback ||
              (route >= 0 && route < net_config.route_classes))) {
          bad_results.fetch_add(1, std::memory_order_relaxed);
        }
        const int64_t acl_verdict =
            hooks.Fire(*classify_hook, (17ull << 32) | (1024ull << 16) | 53ull);
        if (!(acl_verdict == kHookFallback ||
              (acl_verdict >= kRxPass && acl_verdict <= kRxRedirect))) {
          bad_results.fetch_add(1, std::memory_order_relaxed);
        }
        if (route == kHookFallback) {
          ++tally.fallbacks;
        }
        if (acl_verdict == kHookFallback) {
          ++tally.fallbacks;
        }
        tally.fires += 4 + 2 * n;
        if (decision == kHookFallback) {
          ++tally.fallbacks;
        }
        if (observed == kHookFallback) {
          ++tally.fallbacks;
        }
        virtual_now.fetch_add(1, std::memory_order_relaxed);
        ++iter;
      }
      tallies[static_cast<size_t>(t)] = tally;
    });
  }

  // Reconfigurer: the control plane's full mutation surface against live
  // fire — entry add/remove, model hot-swap, suspend/resume — plus the
  // quiescence tick that lets the epoch domain reclaim.
  std::atomic<uint64_t> churn_rounds{0};
  std::thread reconfigurer;
  if (churn) {
    reconfigurer = std::thread([&] {
      uint64_t round = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        (void)cp.InstallModel(*sched_handle, 0,
                              MakeConstantTree(static_cast<int32_t>(round % 3)));
        TableEntry entry;
        entry.key = 1'000'000 + round % 32;  // outside every fired pid range
        entry.action_index = 0;
        (void)cp.AddEntry(*sched_handle, "can_migrate_tab", entry);
        (void)cp.RemoveEntry(*sched_handle, "can_migrate_tab", 1'000'000 + (round + 16) % 32);
        (void)cp.WriteMap(*mem_handle, 0, 0, static_cast<int64_t>(1 + round % 3));
        // Net flow-cache churn: insert/evict exact-match entries in a key
        // range no fire thread touches, mirroring the sim's LRU traffic.
        TableEntry flow_entry;
        flow_entry.key = (1ull << 60) + round % 128;
        flow_entry.action_index = 0;
        (void)cp.AddEntry(*net_handle, "rx_flow", flow_entry);
        (void)cp.RemoveEntry(*net_handle, "rx_flow", (1ull << 60) + (round + 64) % 128);
        if (round % 10 == 9) {
          (void)cp.Suspend(*mem_handle);
          (void)cp.Resume(*mem_handle);
        }
        if (round % 10 == 4) {
          (void)cp.Suspend(*net_handle);
          (void)cp.Resume(*net_handle);
        }
        // Quiescence point: in the sims this is the control-plane tick.
        (void)GlobalEpochDomain().TryAdvance();
        ++round;
      }
      churn_rounds.store(round, std::memory_order_relaxed);
    });
  }

  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  stop.store(true);
  for (std::thread& w : workers) {
    w.join();
  }
  if (reconfigurer.joinable()) {
    reconfigurer.join();
  }

  uint64_t total_fires = 0;
  uint64_t total_fallbacks = 0;
  for (const FireTally& tally : tallies) {
    total_fires += tally.fires;
    total_fallbacks += tally.fallbacks;
  }

  // --- Invariants. ---
  char detail[160];
  std::snprintf(detail, sizeof(detail), "%" PRIu64 " fires, %" PRIu64 " fallbacks, %" PRIu64
                " churn rounds", total_fires, total_fallbacks, churn_rounds.load());
  Check(bad_results.load() == 0, "every fire returned a value from the action's result set",
        std::to_string(bad_results.load()) + " bad results");
  Check(total_fires > 0, "fire threads made progress", detail);
  // With churn the memory program is suspended ~10% of rounds, so some
  // fallbacks are expected — but the datapath must keep answering.
  Check(pages_emitted.load() > 0, "prefetch emissions reached the subsystem binding",
        std::to_string(pages_emitted.load()) + " pages");

  // Telemetry must agree across threads: fires counted by the hook layer
  // match what the threads report (sched + access are plain Fires; the
  // batch path counts per event).
  const uint64_t counted = hooks.MetricsOf(*sched_hook).fires() +
                           hooks.MetricsOf(*access_hook).fires() +
                           hooks.MetricsOf(*prefetch_hook).fires() +
                           hooks.MetricsOf(*route_hook).fires() +
                           hooks.MetricsOf(*classify_hook).fires() +
                           hooks.MetricsOf(*packet_hook).fires();
  Check(counted == total_fires,
        "hook fire counters are exact under contention",
        std::to_string(counted) + " counted vs " + std::to_string(total_fires) + " fired");

  // Uninstall under no fire traffic, then drain the epoch domain: after
  // quiescence no retired snapshot may remain.
  Check(cp.Uninstall(*sched_handle).ok(), "sched program uninstalled", "");
  Check(cp.Uninstall(*mem_handle).ok(), "mem program uninstalled", "");
  Check(cp.Uninstall(*net_handle).ok(), "net program uninstalled", "");
  GlobalEpochDomain().Synchronize();
  (void)GlobalEpochDomain().TryAdvance();
  Check(GlobalEpochDomain().pending() == 0, "epoch domain fully reclaimed after quiescence",
        std::to_string(GlobalEpochDomain().pending()) + " pending");

  std::printf("%s (%d failure%s)\n", g_failures == 0 ? "PASS" : "FAIL", g_failures,
              g_failures == 1 ? "" : "s");
  return g_failures == 0 ? 0 : 1;
}
