// rkd_trace: causal span tracing and flight-recorder demo over both sims.
//
// Runs a simulator substrate with span tracing enabled, then:
//   1. exports the flight recorder as a Perfetto/Chrome trace-event JSON
//      (load it at ui.perfetto.dev or chrome://tracing),
//   2. prints a sample of the causal trees (hook fire -> table.lookup /
//      vm.exec -> ml.eval) plus the top-N hottest span names,
//   3. prints the per-program sampled opcode profile,
//   4. forces a guardian trip under an armed failpoint and asserts that the
//      flight recorder auto-dumped a trace naming the quarantined program.
//
//   $ build/tools/rkd_trace                    # both sims, full workloads
//   $ build/tools/rkd_trace --quick            # CI smoke (seconds)
//   $ build/tools/rkd_trace --sim=prefetch --out=prefetch_trace.json
//
// Exit code: 0 = every check held, 1 = a check failed, 2 = usage error.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/base/failpoints.h"
#include "src/bytecode/isa.h"
#include "src/ml/mlp.h"
#include "src/ml/quantize.h"
#include "src/rmt/guardian.h"
#include "src/sim/mem/memory_sim.h"
#include "src/sim/mem/ml_prefetcher.h"
#include "src/sim/sched/cfs_sim.h"
#include "src/sim/sched/rmt_oracle.h"
#include "src/telemetry/span.h"
#include "src/telemetry/trace_export.h"
#include "src/workloads/access_trace.h"
#include "src/workloads/cpu_jobs.h"

namespace {

using namespace rkd;

int g_failures = 0;

void Check(bool ok, const char* what, const std::string& detail = "") {
  std::printf("  [%s] %s%s%s\n", ok ? "ok" : "FAIL", what, detail.empty() ? "" : ": ",
              detail.c_str());
  if (!ok) {
    ++g_failures;
  }
}

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--sim=prefetch|sched|both] [--quick] [--out=PREFIX]\n"
               "          [--sample=N] [--top=N] [--flight-dir=DIR]\n"
               "  --sim=S         which substrate to trace (default both)\n"
               "  --quick         smaller workloads (CI smoke)\n"
               "  --out=PREFIX    trace files PREFIX_<sim>.json (default rkd_trace)\n"
               "  --sample=N      trace 1-in-N hook fires (default 4)\n"
               "  --top=N         hottest spans/opcodes listed (default 10)\n"
               "  --flight-dir=D  guardian flight-recorder dump dir (default .)\n",
               argv0);
}

const SpanRecord* FindSpan(const std::vector<SpanRecord>& spans, const char* name,
                           uint64_t parent_id) {
  for (const SpanRecord& span : spans) {
    if (std::strcmp(span.name, name) == 0 && (parent_id == 0 || span.parent_id == parent_id)) {
      return &span;
    }
  }
  return nullptr;
}

// Asserts one complete causal chain hook -> {table.lookup, vm.exec} and, when
// `expect_ml` is set, vm.exec -> ml.eval — the acceptance shape of one traced
// fire of `hook_span_name`.
void CheckCausalChain(const std::vector<SpanRecord>& spans, const char* hook_span_name,
                      bool expect_ml) {
  // Walk every traced fire of this hook, accumulating evidence per causal
  // edge: ring wraparound evicts a tree's earliest-pushed children first, so
  // one root may retain vm.exec but not table.lookup while another retains
  // both. Stop early only on a root whose tree is complete.
  const SpanRecord* found_exec = nullptr;
  const SpanRecord* found_ml = nullptr;
  bool found_lookup = false;
  for (const SpanRecord& root : spans) {
    if (std::strcmp(root.name, hook_span_name) != 0 || root.parent_id != 0) {
      continue;
    }
    const SpanRecord* lookup = FindSpan(spans, "table.lookup", root.span_id);
    const SpanRecord* exec = FindSpan(spans, "vm.exec", root.span_id);
    if (lookup != nullptr) {
      found_lookup = true;
    }
    if (exec == nullptr) {
      continue;
    }
    found_exec = exec;
    if (const SpanRecord* ml = FindSpan(spans, "ml.eval", exec->span_id); ml != nullptr) {
      found_ml = ml;
    }
    if (found_lookup && lookup != nullptr && (!expect_ml || found_ml != nullptr)) {
      break;
    }
  }
  Check(found_lookup, "table.lookup nests under the hook span", hook_span_name);
  Check(found_exec != nullptr, "vm.exec nests under the hook span", hook_span_name);
  if (expect_ml) {
    Check(found_ml != nullptr, "ml.eval nests under vm.exec", hook_span_name);
  }
  if (found_exec != nullptr) {
    const SpanRecord* root = nullptr;
    for (const SpanRecord& span : spans) {
      if (span.span_id == found_exec->parent_id) {
        root = &span;
        break;
      }
    }
    Check(root != nullptr && found_exec->start_ns >= root->start_ns &&
              found_exec->end_ns <= root->end_ns,
          "child span is time-contained in its parent", hook_span_name);
  }
}

void PrintHottest(const std::vector<SpanRecord>& spans, size_t top) {
  std::printf("  hottest spans:\n");
  const std::vector<SpanAggregate> aggregates = AggregateSpans(spans);
  size_t listed = 0;
  for (const SpanAggregate& agg : aggregates) {
    if (listed++ >= top) {
      break;
    }
    std::printf("    %-24s %8llu spans  %12llu ns total  %12llu ns self  %10llu ns max\n",
                agg.name.c_str(), static_cast<unsigned long long>(agg.count),
                static_cast<unsigned long long>(agg.total_ns),
                static_cast<unsigned long long>(agg.self_ns),
                static_cast<unsigned long long>(agg.max_ns));
  }
}

void PrintOpcodeProfile(const char* program, const OpcodeProfile& profile, size_t top) {
  struct Row {
    Opcode op;
    uint64_t count;
    uint64_t ns;
  };
  std::vector<Row> rows;
  for (size_t i = 0; i < OpcodeProfile::kNumOpcodes; ++i) {
    const uint64_t count = profile.counts[i].load(std::memory_order_relaxed);
    if (count > 0) {
      rows.push_back(Row{static_cast<Opcode>(i), count,
                         profile.ns[i].load(std::memory_order_relaxed)});
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.count > b.count;
  });
  std::printf("  opcode profile for '%s' (sampled):\n", program);
  size_t listed = 0;
  for (const Row& row : rows) {
    if (listed++ >= top) {
      break;
    }
    std::printf("    %-12s %10llu execs  %12llu ns cumulative\n",
                std::string(OpcodeName(row.op)).c_str(),
                static_cast<unsigned long long>(row.count),
                static_cast<unsigned long long>(row.ns));
  }
  Check(!rows.empty(), "opcode profile populated by traced fires", program);
}

bool WriteTrace(const std::vector<SpanRecord>& spans, const std::vector<TraceEvent>& events,
                const std::string& path) {
  TraceExportOptions options;
  // Counter tracks (governor/tier/canary) line up with the span stream in
  // the Perfetto UI; empty when the run saw no transitions.
  options.counters = CounterTracksFromTrace(events);
  const bool ok = WriteTextFile(path, ExportPerfettoTrace(spans, options));
  Check(ok, "wrote Perfetto trace", path);
  return ok;
}

// --- Scenario 1: the ML prefetcher on the demand-paging simulator ---

void TracePrefetcher(bool quick, const std::string& out_prefix, uint32_t sample, size_t top,
                     const std::string& flight_dir) {
  std::printf("=== prefetcher trace (MemorySim + RmtMlPrefetcher) ===\n");

  Rng rng(2021);
  VideoResizeConfig video;
  if (quick) {
    video.frames = 8;
  }
  const AccessTrace trace = MakeVideoResizeTrace(video, rng);
  MemSimConfig mem_config;
  mem_config.frame_capacity = 192;

  RmtMlPrefetcher prefetcher;
  if (const Status status = prefetcher.Init(); !status.ok()) {
    Check(false, "init ml prefetcher", status.ToString());
    return;
  }
  Tracer& tracer = prefetcher.hooks().telemetry().tracer();
  tracer.set_sample_every(sample);

  MemorySim sim(mem_config, &prefetcher);
  const MemMetrics metrics = sim.Run(trace);
  std::printf("  run: %.3fs, accuracy %.1f%%, %llu spans recorded (%llu dropped)\n",
              metrics.completion_seconds(), metrics.accuracy() * 100.0,
              static_cast<unsigned long long>(tracer.spans_recorded()),
              static_cast<unsigned long long>(tracer.spans_dropped()));

  const std::vector<SpanRecord> spans = tracer.Snapshot();
  Check(!spans.empty(), "spans recorded");
  // The prefetch decision rides the single-Fire path, so its causal tree is
  // the full acceptance chain; ml.eval only appears once a window trained.
  CheckCausalChain(spans, "hook.mm.swap_cluster_readahead",
                   prefetcher.windows_trained() > 0);
  WriteTrace(spans, prefetcher.hooks().telemetry().trace().Snapshot(),
             out_prefix + "_prefetch.json");

  std::printf("%s", RenderSpanTree(spans, 2).c_str());
  PrintHottest(spans, top);
  InstalledProgram* program = prefetcher.control_plane().Get(prefetcher.handle());
  if (program != nullptr) {
    PrintOpcodeProfile(program->name().c_str(), program->opcode_profile(), top);
  }

  // --- Forced guardian trip: helper faults until quarantine, then assert the
  // flight recorder auto-dumped a trace naming the offending program. ---
  std::printf("  forcing a guardian trip (vm.helper=always+error)...\n");
  PolicyGuardian guardian(&prefetcher.control_plane());
  guardian.set_flight_recorder_dir(flight_dir);
  BreakerConfig breaker;
  breaker.window_execs = 16;
  breaker.max_error_rate = 0.2;
  breaker.max_trips = 1;  // first trip quarantines
  if (const Status status = guardian.Guard(prefetcher.handle(), breaker); !status.ok()) {
    Check(false, "guard prefetcher program", status.ToString());
    return;
  }
  {
    FailpointSpec fault;
    fault.mode = FailpointMode::kAlways;
    fault.force_error = true;
    ScopedFailpoint burst("vm.helper", fault);
    MemorySim faulted_sim(mem_config, &prefetcher);
    (void)faulted_sim.Run(trace);
  }
  const PolicyGuardian::TickSummary summary = guardian.Tick();
  for (const PolicyGuardian::GuardEvent& event : summary.transitions) {
    std::printf("  guardian: %s %s -> %s (%s)\n", event.program.c_str(),
                std::string(GuardStateName(event.from)).c_str(),
                std::string(GuardStateName(event.to)).c_str(), event.reason.c_str());
  }
  Check(guardian.StateOf(prefetcher.handle()) == GuardState::kQuarantined,
        "guardian quarantines the faulting program");
  Check(!guardian.last_flight_dump().empty(), "flight recorder auto-dumped",
        guardian.last_flight_dump());
  if (!guardian.last_flight_dump().empty()) {
    std::FILE* dump = std::fopen(guardian.last_flight_dump().c_str(), "rb");
    Check(dump != nullptr, "flight dump file exists", guardian.last_flight_dump());
    if (dump != nullptr) {
      std::string contents;
      char buffer[4096];
      size_t n = 0;
      while ((n = std::fread(buffer, 1, sizeof(buffer), dump)) > 0) {
        contents.append(buffer, n);
      }
      std::fclose(dump);
      Check(contents.find("rmt_prefetch_prog") != std::string::npos,
            "flight dump names the quarantined program");
      Check(contents.find("traceEvents") != std::string::npos,
            "flight dump is a trace-event JSON");
    }
  }
}

// --- Scenario 2: the migration oracle on the CFS simulator ---

void TraceScheduler(bool quick, const std::string& out_prefix, uint32_t sample, size_t top) {
  std::printf("=== scheduler trace (CfsSim + RmtMigrationOracle) ===\n");

  JobConfig job_config;
  if (quick) {
    job_config.num_tasks = 8;
    job_config.base_work = 500;
  }
  const JobSpec job = MakeJob(JobKind::kStreamcluster, job_config);
  SchedConfig sched_config;
  CfsSim sim(sched_config);

  Dataset train = CollectMigrationDataset(sched_config, job);
  MlpConfig mlp_config;
  mlp_config.hidden_sizes = {16, 16};
  mlp_config.epochs = quick ? 20 : 40;
  Result<Mlp> mlp = Mlp::Train(train, mlp_config);
  if (!mlp.ok()) {
    Check(false, "train migration model", mlp.status().ToString());
    return;
  }
  Result<QuantizedMlp> quantized = QuantizedMlp::FromMlp(*mlp);
  if (!quantized.ok()) {
    Check(false, "quantize migration model", quantized.status().ToString());
    return;
  }
  RmtMigrationOracle oracle;
  Status status = oracle.Init();
  if (status.ok()) {
    status = oracle.InstallModel(
        std::make_shared<QuantizedMlp>(std::move(quantized).value()));
  }
  if (!status.ok()) {
    Check(false, "install migration oracle", status.ToString());
    return;
  }
  Tracer& tracer = oracle.hooks().telemetry().tracer();
  tracer.set_sample_every(sample);

  const SchedMetrics metrics = sim.Run(job, oracle.AsOracle());
  std::printf("  run: %llu ticks, %llu decisions, %llu spans recorded\n",
              static_cast<unsigned long long>(metrics.ticks),
              static_cast<unsigned long long>(metrics.decisions),
              static_cast<unsigned long long>(tracer.spans_recorded()));

  const std::vector<SpanRecord> spans = tracer.Snapshot();
  Check(!spans.empty(), "spans recorded");
  CheckCausalChain(spans, "hook.sched.can_migrate_task", /*expect_ml=*/true);
  WriteTrace(spans, oracle.hooks().telemetry().trace().Snapshot(),
             out_prefix + "_sched.json");

  std::printf("%s", RenderSpanTree(spans, 2).c_str());
  PrintHottest(spans, top);
  InstalledProgram* program = oracle.control_plane().Get(oracle.handle());
  if (program != nullptr) {
    PrintOpcodeProfile(program->name().c_str(), program->opcode_profile(), top);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string sim = "both";
  std::string out_prefix = "rkd_trace";
  std::string flight_dir = ".";
  bool quick = false;
  uint32_t sample = 4;
  size_t top = 10;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--sim=", 6) == 0) {
      sim = arg + 6;
    } else if (std::strcmp(arg, "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_prefix = arg + 6;
    } else if (std::strncmp(arg, "--sample=", 9) == 0) {
      sample = static_cast<uint32_t>(std::strtoul(arg + 9, nullptr, 10));
    } else if (std::strncmp(arg, "--top=", 6) == 0) {
      top = std::strtoull(arg + 6, nullptr, 10);
    } else if (std::strncmp(arg, "--flight-dir=", 13) == 0) {
      flight_dir = arg + 13;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (sim != "prefetch" && sim != "sched" && sim != "both") {
    Usage(argv[0]);
    return 2;
  }
  if (sample == 0) {
    Usage(argv[0]);
    return 2;
  }

  if (sim == "prefetch" || sim == "both") {
    TracePrefetcher(quick, out_prefix, sample, top, flight_dir);
  }
  if (sim == "sched" || sim == "both") {
    TraceScheduler(quick, out_prefix, sample, top);
  }

  if (g_failures > 0) {
    std::printf("\nrkd_trace: %d check(s) failed\n", g_failures);
    return 1;
  }
  std::printf("\nrkd_trace: all checks held\n");
  return 0;
}
