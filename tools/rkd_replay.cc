// rkd_replay: record, inspect, replay, diff, and shadow-gate experience
// corpora (src/replay/).
//
//   $ build/tools/rkd_replay record --sim=prefetch --out=prefetch.rkdr
//   $ build/tools/rkd_replay inspect --corpus=prefetch.rkdr
//   $ build/tools/rkd_replay replay --corpus=prefetch.rkdr --tier=interpreter
//   $ build/tools/rkd_replay diff --corpus=prefetch.rkdr --a=incumbent --b=broken
//   $ build/tools/rkd_replay gate --corpus=prefetch.rkdr --flight-dir=.
//
// `record` runs the named simulator substrate with an ExperienceRecorder
// attached and flushes the corpus. `replay` re-fires the corpus against a
// candidate program (the incumbent spec rebuilt from source, or a
// deliberately broken variant) and prints the deterministic divergence
// report. `diff` replays two candidates over the same corpus side by side.
// `gate` is the full shadowed-admission demo: a broken candidate must be
// rejected (with a flight-recorder dump) and the incumbent must be admitted
// to canary — the same checks the replay tests assert.
//
// Exit code: 0 = ok / every gate check held, 1 = a check failed, 2 = usage
// or I/O error.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/bytecode/assembler.h"
#include "src/ml/mlp.h"
#include "src/ml/quantize.h"
#include "src/replay/experience_log.h"
#include "src/replay/recorder.h"
#include "src/replay/replay.h"
#include "src/replay/shadow.h"
#include "src/rmt/control_plane.h"
#include "src/sim/mem/memory_sim.h"
#include "src/sim/mem/ml_prefetcher.h"
#include "src/sim/net/net_sim.h"
#include "src/sim/net/rx_datapath.h"
#include "src/sim/sched/cfs_sim.h"
#include "src/sim/sched/rmt_oracle.h"
#include "src/telemetry/trace_export.h"
#include "src/workloads/access_trace.h"
#include "src/workloads/cpu_jobs.h"
#include "src/workloads/packet_trace.h"

namespace {

using namespace rkd;

int g_failures = 0;

void Check(bool ok, const char* what, const std::string& detail = "") {
  std::printf("  [%s] %s%s%s\n", ok ? "ok" : "FAIL", what, detail.empty() ? "" : ": ",
              detail.c_str());
  if (!ok) {
    ++g_failures;
  }
}

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <command> [flags]\n"
               "  record  --sim=prefetch|sched|net --out=FILE [--quick] [--max-records=N]\n"
               "  inspect --corpus=FILE\n"
               "  replay  --corpus=FILE [--tier=jit|interpreter]\n"
               "          [--candidate=incumbent|broken|learned] [--report=FILE]\n"
               "  diff    --corpus=FILE [--tier=T] [--a=incumbent] [--b=broken]\n"
               "  gate    --corpus=FILE [--flight-dir=DIR] [--tier=T]\n",
               argv0);
}

const char* DecisionSourceName(DecisionSource source) {
  switch (source) {
    case DecisionSource::kResult:
      return "result";
    case DecisionSource::kFirstEmit:
      return "first_emit";
  }
  return "?";
}

// --- Candidate program builders -------------------------------------------
// The incumbent specs are rebuilt from the simulator classes (the exact
// bundle Init() installs); "broken" is a verifier-clean program that ignores
// its inputs, so replay must find it wildly divergent.

RmtProgramSpec BuildIncumbentSpec(const std::string& source, const std::string& name) {
  if (source == "prefetch") {
    return RmtMlPrefetcher().BuildProgramSpec(name);
  }
  if (source == "net") {
    // The record path uses the default NetConfig, so the default-config
    // rebuild is the exact installed bundle.
    return RmtRxDatapath(NetConfig{}, RxPolicyKind::kHeuristic)
        .BuildProgramSpec(RxPolicyKind::kHeuristic, name);
  }
  return RmtMigrationOracle().BuildProgramSpec(name);
}

// The learned steering candidate for a net corpus: same tables, but the flow
// action consults model slot 0 — which the corpus's recorded model install
// populates during replay.
RmtProgramSpec BuildLearnedNetSpec(const std::string& name) {
  return RmtRxDatapath(NetConfig{}, RxPolicyKind::kLearned)
      .BuildProgramSpec(RxPolicyKind::kLearned, name);
}

RmtProgramSpec BuildBrokenSpec(const std::string& source) {
  RmtProgramSpec spec;
  RmtTableSpec table;
  if (source == "prefetch") {
    // Never emits a prefetch: the kFirstEmit decision is always the
    // fallback sentinel, diverging from every recorded emission.
    Assembler a("broken_noop", HookKind::kMemPrefetch);
    a.MovImm(0, 0);
    a.Exit();
    spec.name = "broken_prefetch_prog";
    table.name = "broken_prefetch_tab";
    table.hook_point = "mm.swap_cluster_readahead";
    table.actions.push_back(std::move(a.Build()).value());
  } else if (source == "net") {
    // Steers every packet to a queue id no recorded fire ever produced.
    Assembler a("broken_steer", HookKind::kNetRx);
    a.MovImm(0, 99);
    a.Exit();
    spec.name = "broken_net_prog";
    table.name = "broken_net_tab";
    table.hook_point = "net.rx.packet";
    table.actions.push_back(std::move(a.Build()).value());
  } else {
    // Returns a decision no recorded fire ever produced.
    Assembler a("broken_const", HookKind::kSchedMigrate);
    a.MovImm(0, 1000);
    a.Exit();
    spec.name = "broken_sched_prog";
    table.name = "broken_sched_tab";
    table.hook_point = "sched.can_migrate_task";
    table.actions.push_back(std::move(a.Build()).value());
  }
  table.default_action = 0;
  spec.tables.push_back(std::move(table));
  return spec;
}

// --- record ----------------------------------------------------------------

int RecordPrefetch(bool quick, const std::string& out, size_t max_records) {
  Rng rng(2021);
  VideoResizeConfig video;
  if (quick) {
    video.frames = 8;
  }
  const AccessTrace trace = MakeVideoResizeTrace(video, rng);
  MemSimConfig mem_config;
  mem_config.frame_capacity = 192;

  RmtMlPrefetcher prefetcher;
  if (const Status status = prefetcher.Init(); !status.ok()) {
    std::fprintf(stderr, "rkd_replay: init prefetcher: %s\n", status.ToString().c_str());
    return 2;
  }
  ExperienceRecorderConfig recorder_config;
  recorder_config.source = "prefetch";
  recorder_config.max_records = max_records;
  ExperienceRecorder recorder(&prefetcher.hooks(), recorder_config);
  if (const Status status = prefetcher.AttachRecorder(&recorder); !status.ok()) {
    std::fprintf(stderr, "rkd_replay: attach recorder: %s\n", status.ToString().c_str());
    return 2;
  }

  MemorySim sim(mem_config, &prefetcher);
  const MemMetrics metrics = sim.Run(trace);
  if (const Status status = recorder.Flush(out); !status.ok()) {
    std::fprintf(stderr, "rkd_replay: flush corpus: %s\n", status.ToString().c_str());
    return 2;
  }
  std::printf("recorded %" PRIu64 " records (%" PRIu64 " dropped) -> %s\n",
              recorder.recorded(), recorder.dropped(), out.c_str());
  std::printf("  run: accuracy %.1f%%, %" PRIu64 " windows trained\n",
              metrics.accuracy() * 100.0, prefetcher.windows_trained());
  return 0;
}

int RecordSched(bool quick, const std::string& out, size_t max_records) {
  JobConfig job_config;
  if (quick) {
    job_config.num_tasks = 8;
    job_config.base_work = 500;
  }
  const JobSpec job = MakeJob(JobKind::kStreamcluster, job_config);
  SchedConfig sched_config;
  CfsSim sim(sched_config);

  const Dataset train = CollectMigrationDataset(sched_config, job);
  MlpConfig mlp_config;
  mlp_config.hidden_sizes = {16, 16};
  mlp_config.epochs = quick ? 20 : 40;
  Result<Mlp> mlp = Mlp::Train(train, mlp_config);
  if (!mlp.ok()) {
    std::fprintf(stderr, "rkd_replay: train model: %s\n", mlp.status().ToString().c_str());
    return 2;
  }
  Result<QuantizedMlp> quantized = QuantizedMlp::FromMlp(*mlp);
  if (!quantized.ok()) {
    std::fprintf(stderr, "rkd_replay: quantize model: %s\n",
                 quantized.status().ToString().c_str());
    return 2;
  }

  RmtMigrationOracle oracle;
  if (const Status status = oracle.Init(); !status.ok()) {
    std::fprintf(stderr, "rkd_replay: init oracle: %s\n", status.ToString().c_str());
    return 2;
  }
  ExperienceRecorderConfig recorder_config;
  recorder_config.source = "sched";
  recorder_config.max_records = max_records;
  ExperienceRecorder recorder(&oracle.hooks(), recorder_config);
  // Attach before InstallModel so the model push is in the corpus and replay
  // resolves the same kMlCall the incumbent did.
  Status status = oracle.AttachRecorder(&recorder);
  if (status.ok()) {
    status = oracle.InstallModel(std::make_shared<QuantizedMlp>(std::move(quantized).value()));
  }
  if (!status.ok()) {
    std::fprintf(stderr, "rkd_replay: wire oracle: %s\n", status.ToString().c_str());
    return 2;
  }

  const SchedMetrics metrics = sim.Run(job, oracle.AsOracle());
  if (const Status flushed = recorder.Flush(out); !flushed.ok()) {
    std::fprintf(stderr, "rkd_replay: flush corpus: %s\n", flushed.ToString().c_str());
    return 2;
  }
  std::printf("recorded %" PRIu64 " records (%" PRIu64 " dropped) -> %s\n",
              recorder.recorded(), recorder.dropped(), out.c_str());
  std::printf("  run: %" PRIu64 " ticks, %" PRIu64 " oracle queries\n", metrics.ticks,
              oracle.queries());
  return 0;
}

int RecordNet(bool quick, const std::string& out, size_t max_records) {
  // Keep the spec-shaping NetConfig fields (tables, queues, deadline) at
  // their defaults: replay rebuilds the incumbent from a default-config
  // datapath, and the specs must be identical. batch_size only shapes the
  // fire stream, so quick mode shrinks it to still cover several batches.
  NetConfig net_config;
  if (quick) {
    net_config.batch_size = 256;
  }
  PacketTraceConfig trace_config;
  trace_config.packets = quick ? 1024 : 24576;
  trace_config.flows = 256;
  trace_config.prefixes = 64;
  trace_config.flood_begin = 0.5;
  trace_config.flood_end = 0.85;
  trace_config.flood_prob = 0.4;

  // Baseline pass: run the heuristic to harvest a training set, so the
  // corpus can carry a model-install record (making the learned candidate
  // replayable against it).
  Dataset training(kNetFeatureCount);
  {
    RmtRxDatapath baseline(net_config, RxPolicyKind::kHeuristic);
    if (const Status status = baseline.Init(); !status.ok()) {
      std::fprintf(stderr, "rkd_replay: init baseline: %s\n", status.ToString().c_str());
      return 2;
    }
    Rng rng(2021);
    const PacketTrace trace = MakePacketTrace(trace_config, rng);
    NetRxSim sim(&baseline);
    sim.set_training_sink(&training);
    sim.Run(trace);
  }
  Result<ModelPtr> model = TrainNetModel(training, NetModelFamily::kDecisionTree, 2021);
  if (!model.ok()) {
    std::fprintf(stderr, "rkd_replay: train model: %s\n", model.status().ToString().c_str());
    return 2;
  }

  RmtRxDatapath datapath(net_config, RxPolicyKind::kHeuristic);
  if (const Status status = datapath.Init(); !status.ok()) {
    std::fprintf(stderr, "rkd_replay: init datapath: %s\n", status.ToString().c_str());
    return 2;
  }
  ExperienceRecorderConfig recorder_config;
  recorder_config.source = "net";
  recorder_config.max_records = max_records;
  ExperienceRecorder recorder(&datapath.hooks(), recorder_config);
  // Attach before the model push so the install record lands in the stream
  // (the heuristic action ignores the slot; a learned candidate reads it).
  Status status = datapath.AttachRecorder(&recorder);
  if (status.ok()) {
    status = datapath.InstallModel(std::move(model).value());
  }
  if (!status.ok()) {
    std::fprintf(stderr, "rkd_replay: wire datapath: %s\n", status.ToString().c_str());
    return 2;
  }

  Rng rng(2022);
  const PacketTrace trace = MakePacketTrace(trace_config, rng);
  NetRxSim sim(&datapath);
  sim.Run(trace);
  if (const Status flushed = recorder.Flush(out); !flushed.ok()) {
    std::fprintf(stderr, "rkd_replay: flush corpus: %s\n", flushed.ToString().c_str());
    return 2;
  }
  std::printf("recorded %" PRIu64 " records (%" PRIu64 " dropped) -> %s\n",
              recorder.recorded(), recorder.dropped(), out.c_str());
  const NetMetrics& metrics = sim.metrics();
  std::printf("  run: %" PRIu64 " packets, imbalance %.3f, cache hit %.3f\n",
              metrics.packets, metrics.SteeringImbalance(), metrics.CacheHitRate());
  return 0;
}

// --- inspect ---------------------------------------------------------------

int Inspect(const std::string& path) {
  Result<ExperienceLog> log = ReadExperienceLog(path);
  if (!log.ok()) {
    std::fprintf(stderr, "rkd_replay: %s\n", log.status().ToString().c_str());
    return 2;
  }
  uint64_t fires = 0, map_writes = 0, model_installs = 0, model_bytes = 0;
  std::vector<uint64_t> hook_fires(log->hooks.size(), 0);
  std::vector<uint64_t> hook_labeled(log->hooks.size(), 0);
  std::vector<uint64_t> hook_recorded_match(log->hooks.size(), 0);
  for (const ExperienceRecord& record : log->records) {
    switch (record.kind) {
      case ExperienceRecordKind::kFire:
        ++fires;
        if (record.hook_index < log->hooks.size()) {
          ++hook_fires[record.hook_index];
          if ((record.flags & kExperienceLabeled) != 0) {
            ++hook_labeled[record.hook_index];
            if ((record.flags & kExperienceRecordedMatch) != 0) {
              ++hook_recorded_match[record.hook_index];
            }
          }
        }
        break;
      case ExperienceRecordKind::kMapWrite:
        ++map_writes;
        break;
      case ExperienceRecordKind::kModelInstall:
        ++model_installs;
        model_bytes += record.model_bytes.size();
        break;
    }
  }
  std::printf("corpus %s\n", path.c_str());
  std::printf("  source:      %s\n", log->source.c_str());
  std::printf("  fingerprint: %08x\n", log->fingerprint);
  std::printf("  records:     %zu (%" PRIu64 " fires, %" PRIu64 " map writes, %" PRIu64
              " model installs, %" PRIu64 " model bytes)\n",
              log->records.size(), fires, map_writes, model_installs, model_bytes);
  std::printf("  hooks:\n");
  for (size_t i = 0; i < log->hooks.size(); ++i) {
    const ExperienceHookInfo& hook = log->hooks[i];
    std::printf("    [%zu] %-28s kind=%-14s decision=%-10s label=%s\n", i, hook.name.c_str(),
                std::string(HookKindName(hook.kind)).c_str(),
                DecisionSourceName(hook.decision_source),
                hook.label_kind.empty() ? "(unlabeled)" : hook.label_kind.c_str());
    std::printf("         %" PRIu64 " fires, %" PRIu64 " labeled, %" PRIu64
                " recorded-match\n",
                hook_fires[i], hook_labeled[i], hook_recorded_match[i]);
  }
  return 0;
}

// --- replay / diff ---------------------------------------------------------

void PrintReportSummary(const DivergenceReport& report) {
  std::printf("  program %s on corpus '%s' (%08x), tier %s\n", report.program.c_str(),
              report.corpus_source.c_str(), report.corpus_fingerprint,
              report.tier == ExecTier::kJit ? "jit" : "interpreter");
  for (const HookDivergence& hook : report.hooks) {
    std::printf("    %-28s %8" PRIu64 " fires  match %.4f  labeled %" PRIu64
                "  exec errors %" PRIu64 "\n",
                hook.hook.c_str(), hook.fires, hook.decision_match_rate(), hook.labeled,
                hook.exec_errors);
  }
  std::printf("    decision match %.4f, counterfactual %.4f vs recorded %.4f, %" PRIu64
              " exec errors\n",
              report.decision_match_rate(), report.counterfactual_score(),
              report.recorded_score(), report.total_exec_errors());
}

int Replay(const std::string& path, const std::string& candidate, ExecTier tier,
           const std::string& report_path) {
  Result<ExperienceLog> log = ReadExperienceLog(path);
  if (!log.ok()) {
    std::fprintf(stderr, "rkd_replay: %s\n", log.status().ToString().c_str());
    return 2;
  }
  if (candidate == "learned" && log->source != "net") {
    std::fprintf(stderr, "rkd_replay: --candidate=learned requires a net corpus\n");
    return 2;
  }
  const RmtProgramSpec spec =
      candidate == "broken"    ? BuildBrokenSpec(log->source)
      : candidate == "learned" ? BuildLearnedNetSpec("replay_candidate")
                               : BuildIncumbentSpec(log->source, "replay_candidate");
  ReplayEngine engine;
  ReplayOptions options;
  options.tier = tier;
  Result<DivergenceReport> report = engine.Replay(*log, spec, options);
  if (!report.ok()) {
    std::fprintf(stderr, "rkd_replay: replay: %s\n", report.status().ToString().c_str());
    return 2;
  }
  PrintReportSummary(*report);
  const std::string serialized = report->Serialize();
  if (!report_path.empty()) {
    if (!WriteTextFile(report_path, serialized)) {
      std::fprintf(stderr, "rkd_replay: cannot write %s\n", report_path.c_str());
      return 2;
    }
    std::printf("  report -> %s\n", report_path.c_str());
  } else {
    std::printf("%s\n", serialized.c_str());
  }
  return 0;
}

int Diff(const std::string& path, const std::string& a, const std::string& b, ExecTier tier) {
  Result<ExperienceLog> log = ReadExperienceLog(path);
  if (!log.ok()) {
    std::fprintf(stderr, "rkd_replay: %s\n", log.status().ToString().c_str());
    return 2;
  }
  ReplayEngine engine;
  ReplayOptions options;
  options.tier = tier;
  auto build = [&](const std::string& which, const std::string& name) {
    if (which == "broken") return BuildBrokenSpec(log->source);
    if (which == "learned") return BuildLearnedNetSpec(name);
    return BuildIncumbentSpec(log->source, name);
  };
  if ((a == "learned" || b == "learned") && log->source != "net") {
    std::fprintf(stderr, "rkd_replay: --a/--b=learned requires a net corpus\n");
    return 2;
  }
  const RmtProgramSpec spec_a = build(a, "diff_a");
  const RmtProgramSpec spec_b = build(b, "diff_b");
  Result<DivergenceReport> report_a = engine.Replay(*log, spec_a, options);
  Result<DivergenceReport> report_b = engine.Replay(*log, spec_b, options);
  if (!report_a.ok() || !report_b.ok()) {
    std::fprintf(stderr, "rkd_replay: replay: %s\n",
                 (!report_a.ok() ? report_a.status() : report_b.status()).ToString().c_str());
    return 2;
  }
  std::printf("--- %s ---\n", a.c_str());
  PrintReportSummary(*report_a);
  std::printf("--- %s ---\n", b.c_str());
  PrintReportSummary(*report_b);
  std::printf("--- delta (%s - %s) ---\n", b.c_str(), a.c_str());
  std::printf("  decision match %+.4f, counterfactual %+.4f, exec errors %+" PRId64 "\n",
              report_b->decision_match_rate() - report_a->decision_match_rate(),
              report_b->counterfactual_score() - report_a->counterfactual_score(),
              static_cast<int64_t>(report_b->total_exec_errors()) -
                  static_cast<int64_t>(report_a->total_exec_errors()));
  return 0;
}

// --- gate ------------------------------------------------------------------

// The shadowed-admission demo: stand up the live incumbent substrate matching
// the corpus, wire a ShadowGate, and show InstallShadowed rejecting a broken
// candidate (flight dump on disk) while admitting the incumbent to canary.
int Gate(const std::string& path, const std::string& flight_dir, ExecTier tier) {
  Result<ExperienceLog> log = ReadExperienceLog(path);
  if (!log.ok()) {
    std::fprintf(stderr, "rkd_replay: %s\n", log.status().ToString().c_str());
    return 2;
  }
  const std::string source = log->source;
  std::printf("=== shadow gate demo (%s corpus, %" PRIu64 " fires) ===\n", source.c_str(),
              log->fire_count());

  // Live substrate + incumbent.
  std::unique_ptr<RmtMlPrefetcher> prefetcher;
  std::unique_ptr<RmtMigrationOracle> oracle;
  std::unique_ptr<RmtRxDatapath> datapath;
  ControlPlane* control_plane = nullptr;
  ControlPlane::ProgramHandle incumbent = -1;
  if (source == "prefetch") {
    prefetcher = std::make_unique<RmtMlPrefetcher>();
    if (const Status status = prefetcher->Init(); !status.ok()) {
      std::fprintf(stderr, "rkd_replay: init prefetcher: %s\n", status.ToString().c_str());
      return 2;
    }
    control_plane = &prefetcher->control_plane();
    incumbent = prefetcher->handle();
  } else if (source == "net") {
    datapath = std::make_unique<RmtRxDatapath>(NetConfig{}, RxPolicyKind::kHeuristic);
    if (const Status status = datapath->Init(); !status.ok()) {
      std::fprintf(stderr, "rkd_replay: init datapath: %s\n", status.ToString().c_str());
      return 2;
    }
    control_plane = &datapath->control_plane();
    incumbent = datapath->handle();
  } else {
    oracle = std::make_unique<RmtMigrationOracle>();
    if (const Status status = oracle->Init(); !status.ok()) {
      std::fprintf(stderr, "rkd_replay: init oracle: %s\n", status.ToString().c_str());
      return 2;
    }
    control_plane = &oracle->control_plane();
    incumbent = oracle->handle();
  }

  ShadowGateConfig gate_config;
  gate_config.flight_recorder_dir = flight_dir;
  ShadowGate gate(gate_config, &control_plane->telemetry());
  gate.AddCorpus(std::move(log).value());
  control_plane->set_shadow_evaluator(&gate);

  ControlPlane::CanaryConfig canary;
  canary.canary_permille = 200;
  canary.soak_min_execs = 16;

  // 1. The broken candidate must be refused before it ever touches a hook.
  Result<ControlPlane::ShadowedInstall> broken =
      control_plane->InstallShadowed(incumbent, BuildBrokenSpec(source), canary, tier);
  if (!broken.ok()) {
    Check(false, "shadow-evaluate broken candidate", broken.status().ToString());
  } else {
    Check(!broken->verdict.admitted, "broken candidate rejected", broken->verdict.reason);
    Check(broken->rollout < 0, "no canary rollout started for the reject");
    Check(!gate.last_flight_dump().empty(), "flight recorder dumped",
          gate.last_flight_dump());
  }
  Check(control_plane->installed_count() == 1, "rejected candidate left no live program");

  // 2. The incumbent's own spec must clear the gate and reach canary.
  const RmtProgramSpec candidate = BuildIncumbentSpec(
      source, source == "prefetch" ? "rmt_prefetch_candidate"
              : source == "net"    ? "rmt_net_candidate"
                                   : "rmt_sched_candidate");
  Result<ControlPlane::ShadowedInstall> good =
      control_plane->InstallShadowed(incumbent, candidate, canary, tier);
  if (!good.ok()) {
    Check(false, "shadow-evaluate incumbent candidate", good.status().ToString());
  } else {
    Check(good->verdict.admitted, "incumbent candidate admitted", good->verdict.reason);
    Check(good->rollout >= 0, "canary rollout started for the admit");
    std::printf("  admit: decision match %.4f, counterfactual %.4f vs recorded %.4f\n",
                good->verdict.decision_match_rate, good->verdict.counterfactual_score,
                good->verdict.recorded_score);
  }

  if (g_failures > 0) {
    std::printf("\nrkd_replay gate: %d check(s) failed\n", g_failures);
    return 1;
  }
  std::printf("\nrkd_replay gate: all checks held\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage(argv[0]);
    return 2;
  }
  const std::string command = argv[1];
  std::string sim = "prefetch";
  std::string corpus;
  std::string out;
  std::string report_path;
  std::string candidate = "incumbent";
  std::string diff_a = "incumbent";
  std::string diff_b = "broken";
  std::string flight_dir = ".";
  std::string tier_name = "jit";
  bool quick = false;
  size_t max_records = 1 << 20;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--sim=", 6) == 0) {
      sim = arg + 6;
    } else if (std::strncmp(arg, "--corpus=", 9) == 0) {
      corpus = arg + 9;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out = arg + 6;
    } else if (std::strncmp(arg, "--report=", 9) == 0) {
      report_path = arg + 9;
    } else if (std::strncmp(arg, "--candidate=", 12) == 0) {
      candidate = arg + 12;
    } else if (std::strncmp(arg, "--a=", 4) == 0) {
      diff_a = arg + 4;
    } else if (std::strncmp(arg, "--b=", 4) == 0) {
      diff_b = arg + 4;
    } else if (std::strncmp(arg, "--flight-dir=", 13) == 0) {
      flight_dir = arg + 13;
    } else if (std::strncmp(arg, "--tier=", 7) == 0) {
      tier_name = arg + 7;
    } else if (std::strcmp(arg, "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(arg, "--max-records=", 14) == 0) {
      max_records = std::strtoull(arg + 14, nullptr, 10);
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (tier_name != "jit" && tier_name != "interpreter") {
    Usage(argv[0]);
    return 2;
  }
  const ExecTier tier = tier_name == "jit" ? ExecTier::kJit : ExecTier::kInterpreter;

  if (command == "record") {
    if (out.empty() || (sim != "prefetch" && sim != "sched" && sim != "net")) {
      Usage(argv[0]);
      return 2;
    }
    if (sim == "prefetch") {
      return RecordPrefetch(quick, out, max_records);
    }
    return sim == "sched" ? RecordSched(quick, out, max_records)
                          : RecordNet(quick, out, max_records);
  }
  if (corpus.empty()) {
    Usage(argv[0]);
    return 2;
  }
  if (command == "inspect") {
    return Inspect(corpus);
  }
  if (command == "replay") {
    if (candidate != "incumbent" && candidate != "broken" && candidate != "learned") {
      Usage(argv[0]);
      return 2;
    }
    return Replay(corpus, candidate, tier, report_path);
  }
  if (command == "diff") {
    return Diff(corpus, diff_a, diff_b, tier);
  }
  if (command == "gate") {
    return Gate(corpus, flight_dir, tier);
  }
  Usage(argv[0]);
  return 2;
}
