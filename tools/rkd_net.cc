// rkd_net: the packet-datapath case study end to end — heuristic baseline,
// training capture, experience recording, shadowed admission, canary soak,
// promotion, and a head-to-head policy comparison. One deterministic seeded
// run; the comparison table at the end is what EXPERIMENTS.md quotes.
//
//   $ build/tools/rkd_net run --seed=2021
//   $ build/tools/rkd_net run --quick --model=tree --corpus-out=net.rkdr
//
// Phases:
//   A  heuristic RSS datapath over the training trace; the sim's ideal
//      decisions feed the training sink; a steering/drop model is trained.
//   B  a fresh heuristic datapath runs the recording trace with an
//      ExperienceRecorder attached and the model push recorded, producing
//      the corpus shadow admission replays against.
//   C  InstallShadowed(learned candidate): the ShadowGate replays the corpus
//      (reject = never touches a hook); admitted -> canary soak on live
//      traffic slices -> EvaluateRollout until promoted; the datapath adopts
//      the promoted program and keeps serving packets.
//   D  the same eval trace through a fresh heuristic arm and a fresh learned
//      arm, printing the steering/cache/flood comparison table.
//
// Exit code: 0 = every check held, 1 = a check failed, 2 = usage/init error.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

#include "src/ml/dataset.h"
#include "src/replay/recorder.h"
#include "src/replay/shadow.h"
#include "src/rmt/control_plane.h"
#include "src/sim/net/net_sim.h"
#include "src/sim/net/rx_datapath.h"
#include "src/workloads/packet_trace.h"

namespace {

using namespace rkd;

int g_failures = 0;

void Check(bool ok, const char* what, const std::string& detail = "") {
  std::printf("  [%s] %s%s%s\n", ok ? "ok" : "FAIL", what, detail.empty() ? "" : ": ",
              detail.c_str());
  if (!ok) {
    ++g_failures;
  }
}

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s run [--seed=N] [--quick] [--tier=jit|interpreter]\n"
               "       [--model=forest|tree|mlp] [--corpus-out=FILE]\n",
               argv0);
}

void PrintMetrics(const char* tag, const NetMetrics& m) {
  std::printf("  %s: %" PRIu64 " pkts (%" PRIu64 " flood), imbalance %.3f, "
              "legit cache hit %.4f, flood dropped %.4f, legit delivered %.4f\n",
              tag, m.packets, m.flood_packets, m.SteeringImbalance(),
              m.LegitCacheHitRate(), m.FloodDropShare(), m.LegitDeliveryRate());
}

PacketTraceConfig MakeTraceConfig(bool quick) {
  PacketTraceConfig config;
  config.packets = quick ? 8192 : 49152;
  config.flows = 512;
  config.zipf_skew = 1.1;
  config.prefixes = 64;
  // Flood window over the back third: spoofed UDP toward prefix 7's DNS.
  config.flood_begin = 0.55;
  config.flood_end = 0.85;
  config.flood_prob = 0.5;
  config.victim_prefix = 7;
  config.victim_port = 53;
  return config;
}

int RunPipeline(uint64_t seed, bool quick, ExecTier tier, NetModelFamily family,
                const std::string& corpus_out) {
  NetConfig config;
  config.tier = tier;
  if (quick) {
    config.batch_size = 1024;
  }
  const PacketTraceConfig trace_config = MakeTraceConfig(quick);
  std::printf("=== rkd_net: learned RX steering end to end (seed %" PRIu64
              ", tier %s) ===\n",
              seed, tier == ExecTier::kJit ? "jit" : "interpreter");

  // --- Phase A: heuristic baseline + training capture ----------------------
  std::printf("\n--- phase A: heuristic baseline + training capture ---\n");
  Rng train_rng(seed);
  const PacketTrace train_trace = MakePacketTrace(trace_config, train_rng);
  RmtRxDatapath baseline(config, RxPolicyKind::kHeuristic);
  if (const Status status = baseline.Init(); !status.ok()) {
    std::fprintf(stderr, "rkd_net: init baseline: %s\n", status.ToString().c_str());
    return 2;
  }
  Dataset training(kNetFeatureCount);
  NetRxSim train_sim(&baseline);
  train_sim.set_training_sink(&training);
  train_sim.Run(train_trace);
  PrintMetrics("baseline", train_sim.metrics());
  Check(baseline.packets_decided() == train_trace.size(), "every packet decided");
  Check(train_sim.metrics().fallback_decisions == 0, "no governor fallbacks at baseline");
  Check(baseline.context_publish_failures() == 0, "context store never overflowed");
  std::printf("  training set: %zu samples, %zu classes\n", training.size(),
              static_cast<size_t>(training.NumClasses()));

  Result<ModelPtr> model = TrainNetModel(training, family, seed);
  if (!model.ok()) {
    std::fprintf(stderr, "rkd_net: train: %s\n", model.status().ToString().c_str());
    return 2;
  }

  // --- Phase B: experience recording ---------------------------------------
  std::printf("\n--- phase B: experience recording ---\n");
  RmtRxDatapath live(config, RxPolicyKind::kHeuristic);
  if (const Status status = live.Init(); !status.ok()) {
    std::fprintf(stderr, "rkd_net: init live datapath: %s\n", status.ToString().c_str());
    return 2;
  }
  ExperienceRecorderConfig recorder_config;
  recorder_config.source = "net";
  ExperienceRecorder recorder(&live.hooks(), recorder_config);
  Status wired = live.AttachRecorder(&recorder);
  if (wired.ok()) {
    // Recorded before any fire, so replay resolves the same model for the
    // whole corpus and the learned candidate is evaluated at full strength.
    wired = live.InstallModel(*model);
  }
  if (!wired.ok()) {
    std::fprintf(stderr, "rkd_net: wire recorder: %s\n", wired.ToString().c_str());
    return 2;
  }
  Rng record_rng(seed + 1);
  const PacketTrace record_trace = MakePacketTrace(trace_config, record_rng);
  NetRxSim record_sim(&live);
  record_sim.Run(record_trace);
  recorder.Detach();
  std::printf("  recorded %" PRIu64 " records (%" PRIu64 " dropped)\n",
              recorder.recorded(), recorder.dropped());
  if (!corpus_out.empty()) {
    if (const Status status = recorder.Flush(corpus_out); !status.ok()) {
      std::fprintf(stderr, "rkd_net: flush corpus: %s\n", status.ToString().c_str());
      return 2;
    }
    std::printf("  corpus -> %s\n", corpus_out.c_str());
  }
  ExperienceLog log = recorder.TakeLog();
  Check(log.fire_count() > 0, "corpus has fires");

  // --- Phase C: shadowed admission + canary rollout ------------------------
  std::printf("\n--- phase C: shadowed admission + canary rollout ---\n");
  ControlPlane& cp = live.control_plane();
  ShadowGateConfig gate_config;
  // The learned policy is SUPPOSED to diverge from the recorded heuristic on
  // elephants and flood traffic; the quality bar is the labeled score: the
  // candidate must beat the incumbent's recorded agreement with the ideal
  // decisions by a clear margin.
  gate_config.max_divergence = 0.35;
  gate_config.min_score_delta = -0.02;
  gate_config.flight_recorder_dir = ".";
  ShadowGate gate(gate_config, &cp.telemetry());
  gate.AddCorpus(std::move(log));
  cp.set_shadow_evaluator(&gate);

  ControlPlane::CanaryConfig canary;
  canary.canary_permille = 250;
  canary.soak_min_execs = quick ? 512 : 4096;
  canary.max_error_rate = 0.02;
  canary.max_latency_ratio = 0.0;  // an MlCall arm vs a 5-instruction hash arm

  Result<ControlPlane::ShadowedInstall> shadowed = cp.InstallShadowed(
      live.handle(), live.BuildProgramSpec(RxPolicyKind::kLearned, "rmt_net_learned"),
      canary, tier);
  if (!shadowed.ok()) {
    Check(false, "shadow-evaluate learned candidate", shadowed.status().ToString());
    return 1;
  }
  Check(shadowed->verdict.admitted, "learned candidate admitted through the shadow gate",
        shadowed->verdict.reason);
  std::printf("  shadow: decision match %.4f, counterfactual %.4f vs recorded %.4f\n",
              shadowed->verdict.decision_match_rate, shadowed->verdict.counterfactual_score,
              shadowed->verdict.recorded_score);
  Check(shadowed->verdict.counterfactual_score > shadowed->verdict.recorded_score,
        "learned candidate scores above the recorded heuristic");
  if (!shadowed->verdict.admitted || shadowed->rollout < 0) {
    return 1;
  }

  Result<ControlPlane::RolloutReport> soak = cp.EvaluateRollout(shadowed->rollout);
  if (!soak.ok()) {
    Check(false, "initial rollout evaluation", soak.status().ToString());
    return 1;
  }
  const ControlPlane::ProgramHandle canary_handle = soak->canary_handle;
  if (const Status status = cp.InstallModel(canary_handle, 0, *model); !status.ok()) {
    Check(false, "install model on the canary arm", status.ToString());
    return 1;
  }
  live.set_mirror_handle(canary_handle);  // the canary's context must see features too

  Rng canary_rng(seed + 2);
  PacketTraceConfig canary_trace_config = trace_config;
  canary_trace_config.packets = quick ? 8192 : 32768;
  const PacketTrace canary_trace = MakePacketTrace(canary_trace_config, canary_rng);
  NetRxSim canary_sim(&live);
  ControlPlane::RolloutReport verdict;
  bool resolved = false;
  size_t slices = 0;
  for (size_t offset = 0; offset < canary_trace.size() && !resolved;
       offset += config.batch_size) {
    const size_t len = std::min(config.batch_size, canary_trace.size() - offset);
    canary_sim.Run(std::span(canary_trace).subspan(offset, len));
    ++slices;
    Result<ControlPlane::RolloutReport> report = cp.EvaluateRollout(shadowed->rollout);
    if (!report.ok()) {
      Check(false, "rollout evaluation", report.status().ToString());
      return 1;
    }
    if (report->decision != ControlPlane::RolloutReport::Decision::kSoaking) {
      verdict = std::move(report).value();
      resolved = true;
    }
  }
  Check(resolved, "canary rollout resolved within the soak traffic");
  if (!resolved) {
    return 1;
  }
  Check(verdict.decision == ControlPlane::RolloutReport::Decision::kPromoted,
        "canary promoted", verdict.reason);
  if (verdict.decision != ControlPlane::RolloutReport::Decision::kPromoted) {
    return 1;
  }
  std::printf("  promoted after %zu slices: canary %" PRIu64 " execs (err %.4f), "
              "incumbent %" PRIu64 " execs\n",
              slices, verdict.canary.execs, verdict.canary.error_rate,
              verdict.incumbent.execs);
  if (const Status status = live.AdoptPromoted(canary_handle, RxPolicyKind::kLearned);
      !status.ok()) {
    Check(false, "adopt promoted program", status.ToString());
    return 1;
  }
  // Keep serving on the promoted learned program: the same datapath object,
  // now steering with the model at full traffic.
  const uint64_t before = live.packets_decided();
  canary_sim.Run(std::span(canary_trace).first(
      std::min<size_t>(config.batch_size, canary_trace.size())));
  Check(live.packets_decided() == before + std::min<size_t>(config.batch_size,
                                                            canary_trace.size()),
        "promoted datapath keeps deciding packets");
  Check(live.policy() == RxPolicyKind::kLearned, "datapath now runs the learned policy");

  // --- Phase D: head-to-head on the eval trace -----------------------------
  std::printf("\n--- phase D: heuristic vs learned on the eval trace ---\n");
  Rng eval_rng(seed + 3);
  const PacketTrace eval_trace = MakePacketTrace(trace_config, eval_rng);

  RmtRxDatapath heuristic_arm(config, RxPolicyKind::kHeuristic);
  RmtRxDatapath learned_arm(config, RxPolicyKind::kLearned);
  Status eval_status = heuristic_arm.Init();
  if (eval_status.ok()) eval_status = learned_arm.Init();
  if (eval_status.ok()) eval_status = learned_arm.InstallModel(*model);
  if (!eval_status.ok()) {
    std::fprintf(stderr, "rkd_net: eval arms: %s\n", eval_status.ToString().c_str());
    return 2;
  }
  NetRxSim heuristic_sim(&heuristic_arm);
  NetRxSim learned_sim(&learned_arm);
  heuristic_sim.Run(eval_trace);
  learned_sim.Run(eval_trace);
  const NetMetrics& h = heuristic_sim.metrics();
  const NetMetrics& l = learned_sim.metrics();

  std::printf("\n  metric                          heuristic      learned\n");
  std::printf("  steering imbalance (max/mean)   %9.3f    %9.3f\n",
              h.SteeringImbalance(), l.SteeringImbalance());
  std::printf("  legit flow-cache hit rate       %9.4f    %9.4f\n",
              h.LegitCacheHitRate(), l.LegitCacheHitRate());
  std::printf("  flood drop share                %9.4f    %9.4f\n", h.FloodDropShare(),
              l.FloodDropShare());
  std::printf("  legit delivery rate             %9.4f    %9.4f\n", h.LegitDeliveryRate(),
              l.LegitDeliveryRate());
  std::printf("  policy drops                    %9" PRIu64 "    %9" PRIu64 "\n",
              h.policy_drops, l.policy_drops);
  std::printf("  queue-overflow drops            %9" PRIu64 "    %9" PRIu64 "\n",
              h.overflow_drops, l.overflow_drops);
  std::printf("  slow-path cost (us)             %9" PRIu64 "    %9" PRIu64 "\n\n",
              h.slow_path_ns / 1000, l.slow_path_ns / 1000);

  int wins = 0;
  if (l.SteeringImbalance() < h.SteeringImbalance()) ++wins;
  if (l.LegitCacheHitRate() > h.LegitCacheHitRate()) ++wins;
  if (l.FloodDropShare() > h.FloodDropShare()) ++wins;
  if (l.LegitDeliveryRate() > h.LegitDeliveryRate()) ++wins;
  Check(wins >= 1, "learned beats heuristic on a headline metric",
        std::to_string(wins) + " of 4 headline metrics");
  Check(l.FloodDropShare() > h.FloodDropShare() + 0.25,
        "learned drops the flood at the hook");

  if (g_failures > 0) {
    std::printf("\nrkd_net: %d check(s) failed\n", g_failures);
    return 1;
  }
  std::printf("\nrkd_net: all checks held\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "run") != 0) {
    Usage(argv[0]);
    return 2;
  }
  uint64_t seed = 2021;
  bool quick = false;
  std::string tier_name = "jit";
  std::string model_name = "forest";
  std::string corpus_out;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strcmp(arg, "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(arg, "--tier=", 7) == 0) {
      tier_name = arg + 7;
    } else if (std::strncmp(arg, "--model=", 8) == 0) {
      model_name = arg + 8;
    } else if (std::strncmp(arg, "--corpus-out=", 13) == 0) {
      corpus_out = arg + 13;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (tier_name != "jit" && tier_name != "interpreter") {
    Usage(argv[0]);
    return 2;
  }
  NetModelFamily family;
  if (model_name == "forest") {
    family = NetModelFamily::kRandomForest;
  } else if (model_name == "tree") {
    family = NetModelFamily::kDecisionTree;
  } else if (model_name == "mlp") {
    family = NetModelFamily::kQuantizedMlp;
  } else {
    Usage(argv[0]);
    return 2;
  }
  const ExecTier tier = tier_name == "jit" ? ExecTier::kJit : ExecTier::kInterpreter;
  return RunPipeline(seed, quick, tier, family, corpus_out);
}
