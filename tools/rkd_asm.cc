// rkd_asm — the offline program toolchain driver.
//
// Assembles the textual DSL into the binary bytecode format (and back), and
// runs the RMT verifier — the exact pipeline a deployment would run before
// handing a program blob to the install syscall.
//
//   rkd_asm assemble  prog.rkds prog.rkdb    text -> verified binary
//   rkd_asm disasm    prog.rkdb              binary -> listing on stdout
//   rkd_asm verify    prog.rkds|prog.rkdb    admission check + report
//
// Files ending in .rkdb are treated as binary; anything else parses as text.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/bytecode/disassembler.h"
#include "src/bytecode/parser.h"
#include "src/bytecode/serialize.h"
#include "src/verifier/verifier.h"

namespace {

using namespace rkd;

Result<std::vector<uint8_t>> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("cannot open '" + path + "'");
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  return bytes;
}

Status WriteFile(const std::string& path, std::span<const uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return InvalidArgumentError("cannot write '" + path + "'");
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return OkStatus();
}

bool IsBinaryPath(const std::string& path) {
  return path.size() > 5 && path.substr(path.size() - 5) == ".rkdb";
}

Result<BytecodeProgram> LoadProgram(const std::string& path) {
  RKD_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFile(path));
  if (IsBinaryPath(path)) {
    return DeserializeProgram(bytes);
  }
  return ParseAssembly(std::string_view(reinterpret_cast<const char*>(bytes.data()),
                                        bytes.size()));
}

int Verify(const BytecodeProgram& program) {
  const VerifyReport report = Verifier().Verify(program);
  if (report.ok()) {
    std::printf("OK: program '%s' (%zu insns, longest path %lu, hook %s",
                program.name.c_str(), program.code.size(),
                static_cast<unsigned long>(report.longest_path),
                std::string(HookKindName(program.hook_kind)).c_str());
    if (report.dp_noise_sites > 0) {
      std::printf(", epsilon spend %.2f", report.epsilon_spend);
    }
    std::printf(")\n");
    return 0;
  }
  std::fprintf(stderr, "REJECTED: %s\n", report.status.ToString().c_str());
  for (const std::string& diag : report.diagnostics) {
    std::fprintf(stderr, "  %s\n", diag.c_str());
  }
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  rkd_asm assemble <in.rkds> <out.rkdb>\n"
               "  rkd_asm disasm   <in.rkdb|in.rkds>\n"
               "  rkd_asm verify   <in.rkds|in.rkdb>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return Usage();
  }
  const std::string command = argv[1];

  if (command == "assemble") {
    if (argc != 4) {
      return Usage();
    }
    Result<BytecodeProgram> program = LoadProgram(argv[2]);
    if (!program.ok()) {
      std::fprintf(stderr, "parse error: %s\n", program.status().ToString().c_str());
      return 1;
    }
    // Assemble implies admission: a blob that would be rejected at install
    // time should not be produced at all.
    if (Verify(*program) != 0) {
      return 1;
    }
    const std::vector<uint8_t> bytes = SerializeProgram(*program);
    if (Status status = WriteFile(argv[3], bytes); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu bytes to %s\n", bytes.size(), argv[3]);
    return 0;
  }

  if (command == "disasm") {
    Result<BytecodeProgram> program = LoadProgram(argv[2]);
    if (!program.ok()) {
      std::fprintf(stderr, "load error: %s\n", program.status().ToString().c_str());
      return 1;
    }
    std::fputs(Disassemble(*program).c_str(), stdout);
    return 0;
  }

  if (command == "verify") {
    Result<BytecodeProgram> program = LoadProgram(argv[2]);
    if (!program.ok()) {
      std::fprintf(stderr, "load error: %s\n", program.status().ToString().c_str());
      return 1;
    }
    return Verify(*program);
  }

  return Usage();
}
