// rkd_bottleneck: trace-derived critical-path & bottleneck analysis demo.
//
// Runs both simulator substrates with forced span tracing, snapshots the
// flight-recorder rings, reconstructs the causal DAG of every fire, and
// prints the critical-path / classification report (per-hook label,
// component shares, slack contributors, critical chain). Then:
//   1. validates determinism by running the analysis twice — and once over
//      the reversed span order — and asserting byte-identical reports,
//   2. refreshes the per-program ControlPlane advisory and shows how the
//      label scales the tier-3 promotion threshold (EffectiveHotExecs),
//   3. writes the full report to --out for CI artifact upload.
//
//   $ build/tools/rkd_bottleneck                 # both sims, full workloads
//   $ build/tools/rkd_bottleneck --quick         # CI smoke (seconds)
//   $ build/tools/rkd_bottleneck --sim=sched --out=bottleneck_report.txt
//
// Exit code: 0 = every check held, 1 = a check failed, 2 = usage error.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/ml/mlp.h"
#include "src/ml/quantize.h"
#include "src/rmt/control_plane.h"
#include "src/sim/mem/memory_sim.h"
#include "src/sim/mem/ml_prefetcher.h"
#include "src/sim/sched/cfs_sim.h"
#include "src/sim/sched/rmt_oracle.h"
#include "src/telemetry/bottleneck.h"
#include "src/telemetry/trace_export.h"
#include "src/workloads/access_trace.h"
#include "src/workloads/cpu_jobs.h"

namespace {

using namespace rkd;

int g_failures = 0;

void Check(bool ok, const char* what, const std::string& detail = "") {
  std::printf("  [%s] %s%s%s\n", ok ? "ok" : "FAIL", what, detail.empty() ? "" : ": ",
              detail.c_str());
  if (!ok) {
    ++g_failures;
  }
}

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--sim=prefetch|sched|both] [--quick] [--out=FILE]\n"
               "          [--sample=N]\n"
               "  --sim=S      which substrate to analyze (default both)\n"
               "  --quick      smaller workloads (CI smoke)\n"
               "  --out=FILE   write the combined report (default bottleneck_report.txt)\n"
               "  --sample=N   trace 1-in-N hook fires (default 1 = every fire)\n",
               argv0);
}

// Runs the analysis over `spans` plus determinism checks: two passes over
// the same snapshot and one pass over the reversed order must produce the
// same bytes. Returns the canonical report text.
std::string AnalyzeAndCheck(const char* sim_name, const std::vector<SpanRecord>& spans) {
  const CriticalPathAnalyzer analyzer;
  const std::string first = RenderBottleneckReport(analyzer.Analyze(spans));
  const std::string second = RenderBottleneckReport(analyzer.Analyze(spans));
  Check(first == second, "analysis is byte-deterministic across two runs", sim_name);
  std::vector<SpanRecord> reversed(spans.rbegin(), spans.rend());
  const std::string shuffled = RenderBottleneckReport(analyzer.Analyze(reversed));
  Check(first == shuffled, "analysis is independent of span input order", sim_name);
  return first;
}

// Prints the stored advisory and the promotion thresholds it implies.
void ShowAdvisory(const char* sim_name, ControlPlane& control_plane,
                  ControlPlane::ProgramHandle handle, std::string& report_out) {
  Result<BottleneckAdvisory> advisory = control_plane.RefreshBottleneck(handle);
  if (!advisory.ok()) {
    Check(false, "RefreshBottleneck", advisory.status().ToString());
    return;
  }
  Check(advisory->valid, "control plane stored a program advisory", sim_name);
  const std::string rendered = RenderAdvisory(*advisory, 3);
  std::printf("  program advisory (%s):\n%s", sim_name, rendered.c_str());
  report_out += "program advisory (";
  report_out += sim_name;
  report_out += "):\n";
  report_out += rendered;

  ControlPlane::TieringConfig tiering;
  const uint64_t effective = ControlPlane::EffectiveHotExecs(tiering, *advisory);
  std::printf("  tier-3 promotion: hot_execs %llu -> effective %llu under label %s\n",
              static_cast<unsigned long long>(tiering.hot_execs),
              static_cast<unsigned long long>(effective),
              std::string(BottleneckLabelName(advisory->label)).c_str());
  Check(effective >= tiering.hot_execs, "advisory never promotes earlier than the flat bar",
        sim_name);
}

// --- Scenario 1: the ML prefetcher on the demand-paging simulator ---

void AnalyzePrefetcher(bool quick, uint32_t sample, std::string& report_out) {
  std::printf("=== prefetcher bottleneck (MemorySim + RmtMlPrefetcher) ===\n");

  Rng rng(2021);
  VideoResizeConfig video;
  if (quick) {
    video.frames = 8;
  }
  const AccessTrace trace = MakeVideoResizeTrace(video, rng);
  MemSimConfig mem_config;
  mem_config.frame_capacity = 192;

  RmtMlPrefetcher prefetcher;
  if (const Status status = prefetcher.Init(); !status.ok()) {
    Check(false, "init ml prefetcher", status.ToString());
    return;
  }
  prefetcher.hooks().telemetry().tracer().set_sample_every(sample);

  MemorySim sim(mem_config, &prefetcher);
  (void)sim.Run(trace);

  const std::vector<SpanRecord> spans = prefetcher.hooks().telemetry().tracer().Snapshot();
  Check(!spans.empty(), "spans recorded");
  const std::string report = AnalyzeAndCheck("prefetch", spans);
  std::printf("%s", report.c_str());
  report_out += report;
  ShowAdvisory("prefetch", prefetcher.control_plane(), prefetcher.handle(), report_out);
}

// --- Scenario 2: the migration oracle on the CFS simulator ---

void AnalyzeScheduler(bool quick, uint32_t sample, std::string& report_out) {
  std::printf("=== scheduler bottleneck (CfsSim + RmtMigrationOracle) ===\n");

  JobConfig job_config;
  if (quick) {
    job_config.num_tasks = 8;
    job_config.base_work = 500;
  }
  const JobSpec job = MakeJob(JobKind::kStreamcluster, job_config);
  SchedConfig sched_config;
  CfsSim sim(sched_config);

  Dataset train = CollectMigrationDataset(sched_config, job);
  MlpConfig mlp_config;
  mlp_config.hidden_sizes = {16, 16};
  mlp_config.epochs = quick ? 20 : 40;
  Result<Mlp> mlp = Mlp::Train(train, mlp_config);
  if (!mlp.ok()) {
    Check(false, "train migration model", mlp.status().ToString());
    return;
  }
  Result<QuantizedMlp> quantized = QuantizedMlp::FromMlp(*mlp);
  if (!quantized.ok()) {
    Check(false, "quantize migration model", quantized.status().ToString());
    return;
  }
  RmtMigrationOracle oracle;
  Status status = oracle.Init();
  if (status.ok()) {
    status = oracle.InstallModel(
        std::make_shared<QuantizedMlp>(std::move(quantized).value()));
  }
  if (!status.ok()) {
    Check(false, "install migration oracle", status.ToString());
    return;
  }
  oracle.hooks().telemetry().tracer().set_sample_every(sample);

  (void)sim.Run(job, oracle.AsOracle());

  const std::vector<SpanRecord> spans = oracle.hooks().telemetry().tracer().Snapshot();
  Check(!spans.empty(), "spans recorded");
  const std::string report = AnalyzeAndCheck("sched", spans);
  std::printf("%s", report.c_str());
  report_out += report;

  // The migration decision funnels through an MLP per fire, so the analyzer
  // should attribute the dominant critical-path share to ml.eval.
  const CriticalPathAnalyzer analyzer;
  const BottleneckReport parsed = analyzer.Analyze(spans);
  bool found_hook = false;
  for (const HookBottleneck& hook : parsed.hooks) {
    if (hook.hook == "hook.sched.can_migrate_task") {
      found_hook = true;
      const BottleneckEvidence& ev = hook.advisory.evidence;
      Check(ev.fires > 0, "fires attributed to the migration hook");
      Check(ev.ml_ns > 0, "ml.eval self time present on the critical path");
    }
  }
  Check(found_hook, "migration hook analyzed", "hook.sched.can_migrate_task");
  ShowAdvisory("sched", oracle.control_plane(), oracle.handle(), report_out);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string sim = "both";
  std::string out = "bottleneck_report.txt";
  uint32_t sample = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(arg, "--sim=", 6) == 0) {
      sim = arg + 6;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out = arg + 6;
    } else if (std::strncmp(arg, "--sample=", 9) == 0) {
      sample = static_cast<uint32_t>(std::strtoul(arg + 9, nullptr, 10));
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (sim != "prefetch" && sim != "sched" && sim != "both") {
    Usage(argv[0]);
    return 2;
  }

  std::string report;
  if (sim == "prefetch" || sim == "both") {
    AnalyzePrefetcher(quick, sample, report);
  }
  if (sim == "sched" || sim == "both") {
    AnalyzeScheduler(quick, sample, report);
  }
  if (!report.empty()) {
    Check(WriteTextFile(out, report), "wrote bottleneck report", out);
  }

  if (g_failures > 0) {
    std::printf("\n%d check(s) FAILED\n", g_failures);
    return 1;
  }
  std::printf("\nall checks passed\n");
  return 0;
}
