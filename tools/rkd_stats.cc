// rkd_stats: dump a live telemetry-registry snapshot.
//
// Builds the quickstart pipeline (one classifier program installed through
// the control plane and watched by the policy guardian), injects a brief
// helper-fault burst so the breaker trips and recovers, fires the hook a
// configurable number of times to populate the per-hook latency histogram,
// then exports the registry — including the "rkd.guard.*" slice and the
// per-program guard state gauge — in Prometheus text exposition and/or JSON.
//
//   $ build/tools/rkd_stats                 # both formats, 1000 fires
//   $ build/tools/rkd_stats --fires=50000 --format=prom
//   $ build/tools/rkd_stats --format=json
//   $ build/tools/rkd_stats --dump          # + program dump with opcode profile
//   $ build/tools/rkd_stats --net --dump    # net RX datapath instead of the
//                                           # quickstart classifier (three
//                                           # match stages + model slot)
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/base/failpoints.h"
#include "src/bytecode/assembler.h"
#include "src/rmt/control_plane.h"
#include "src/rmt/guardian.h"
#include "src/rmt/introspect.h"
#include "src/sim/net/net_sim.h"
#include "src/sim/net/rx_datapath.h"
#include "src/telemetry/export.h"
#include "src/telemetry/telemetry.h"
#include "src/workloads/packet_trace.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--fires=N] [--format=prom|json|both] [--sample=N] [--dump] "
               "[--net]\n"
               "  --fires=N   number of hook fires to record (default 1000)\n"
               "  --format=F  export format (default both)\n"
               "  --sample=N  trace 1-in-N fires for the opcode profile (default 64)\n"
               "  --dump      also print the program dump (tables, models,\n"
               "              sampled opcode profile)\n"
               "  --net       build the packet RX datapath (LPM + ternary + exact\n"
               "              stages, learned steering model) instead of the\n"
               "              quickstart classifier\n",
               argv0);
}

// The --net pipeline: the three-stage RX datapath with a small synthetic
// steering model, driven by a packet trace so the per-hook histograms, the
// net.rx.* telemetry slice, and the bottleneck advisory all populate. The
// dump shows what the generic demo cannot: an LPM table, a ternary table,
// an exact-match table, and an occupied model slot on one program.
int RunNet(uint64_t fires, const std::string& format, uint32_t sample_every, bool dump) {
  using namespace rkd;

  NetConfig config;
  config.route_prefixes = 64;
  config.acl_entries = 64;
  config.flow_cache_capacity = 128;
  config.batch_size = 256;
  RmtRxDatapath datapath(config, RxPolicyKind::kLearned);
  datapath.hooks().telemetry().tracer().set_sample_every(sample_every);
  if (const Status status = datapath.Init(); !status.ok()) {
    std::fprintf(stderr, "net datapath init failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // Synthetic supervision, enough for a real (if tiny) tree: steer ranked
  // elephants to their rank's queue, drop unranked brand-new flows (the
  // flood signature), hash everything else.
  Dataset data(kNetFeatureCount);
  for (int32_t rank = 0; rank < config.queues; ++rank) {
    NetFeatureRow row{};
    row[kNfRank] = rank;
    row[kNfHashLane] = rank;
    data.Add(row, rank);
  }
  NetFeatureRow flood_row{};
  flood_row[kNfRank] = config.queues;
  flood_row[kNfIsNew] = 1;
  flood_row[kNfNewFlowRate] = 900;
  data.Add(flood_row, config.queues);
  Result<ModelPtr> model = TrainNetModel(data, NetModelFamily::kDecisionTree, 1);
  if (!model.ok() || !datapath.InstallModel(std::move(model).value()).ok()) {
    std::fprintf(stderr, "net model install failed\n");
    return 1;
  }

  PacketTraceConfig trace_config;
  trace_config.packets = fires < 256 ? 256 : fires;
  trace_config.flows = 64;
  trace_config.prefixes = 32;
  trace_config.flood_begin = 0.6;
  trace_config.flood_end = 0.9;
  trace_config.flood_prob = 0.3;
  Rng rng(7);
  const PacketTrace trace = MakePacketTrace(trace_config, rng);
  NetRxSim sim(&datapath);
  sim.Run(trace);

  ControlPlane& control_plane = datapath.control_plane();
  Result<BottleneckAdvisory> advisory = control_plane.RefreshBottleneck(datapath.handle());
  if (advisory.ok() && format != "json") {
    std::printf("critical path & bottleneck (trace-derived advisory):\n%s\n",
                RenderAdvisory(*advisory, 3).c_str());
  }

  if (dump) {
    InstalledProgram* program = control_plane.Get(datapath.handle());
    if (program != nullptr) {
      std::printf("%s\n", DumpProgram(*program).c_str());
    }
  }

  const TelemetryRegistry& registry = datapath.hooks().telemetry();
  if (format == "prom" || format == "both") {
    std::printf("%s", ExportPrometheus(registry).c_str());
  }
  if (format == "both") {
    std::printf("\n");
  }
  if (format == "json" || format == "both") {
    std::printf("%s\n", ExportJson(registry).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rkd;

  uint64_t fires = 1000;
  std::string format = "both";
  uint32_t sample_every = 64;
  bool dump = false;
  bool net = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--fires=", 8) == 0) {
      fires = std::strtoull(arg + 8, nullptr, 10);
    } else if (std::strncmp(arg, "--format=", 9) == 0) {
      format = arg + 9;
    } else if (std::strncmp(arg, "--sample=", 9) == 0) {
      sample_every = static_cast<uint32_t>(std::strtoul(arg + 9, nullptr, 10));
    } else if (std::strcmp(arg, "--dump") == 0) {
      dump = true;
    } else if (std::strcmp(arg, "--net") == 0) {
      net = true;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (format != "prom" && format != "json" && format != "both") {
    Usage(argv[0]);
    return 2;
  }
  if (net) {
    return RunNet(fires, format, sample_every, dump);
  }

  // Same program as examples/quickstart — r0 = (key < 1000) ? 1 : 2 — plus a
  // leading helper call, which is the "vm.helper" failpoint site the guard
  // demo below uses to inject a fault burst.
  Assembler as("classify_key", HookKind::kGeneric);
  {
    auto small = as.NewLabel();
    auto end = as.NewLabel();
    as.Call(HelperId::kGetTime);
    as.JltImm(1, 1000, small);
    as.MovImm(0, 2);
    as.Ja(end);
    as.Bind(small);
    as.MovImm(0, 1);
    as.Bind(end);
    as.Exit();
  }
  Result<BytecodeProgram> action = as.Build();
  if (!action.ok()) {
    std::fprintf(stderr, "assemble failed: %s\n", action.status().ToString().c_str());
    return 1;
  }

  HookRegistry hooks;
  // Sample aggressively enough that the short demo fire loops leave an
  // opcode profile behind (the datapath default of 1-in-1024 would trace
  // almost nothing at --fires=1000).
  hooks.telemetry().tracer().set_sample_every(sample_every);
  Result<HookId> hook = hooks.Register("demo.decision_point", HookKind::kGeneric);
  if (!hook.ok()) {
    std::fprintf(stderr, "hook registration failed: %s\n", hook.status().ToString().c_str());
    return 1;
  }

  ControlPlane control_plane(&hooks);
  RmtProgramSpec spec;
  spec.name = "rkd_stats_prog";
  RmtTableSpec table;
  table.name = "classify_tab";
  table.hook_point = "demo.decision_point";
  table.actions.push_back(std::move(action).value());
  table.default_action = 0;
  spec.tables.push_back(std::move(table));

  Result<ControlPlane::ProgramHandle> handle = control_plane.Install(spec);
  if (!handle.ok()) {
    std::fprintf(stderr, "install failed: %s\n", handle.status().ToString().c_str());
    return 1;
  }

  // Guard the program, then walk it through a full breaker lifecycle so the
  // "rkd.guard.*" slice is populated: a transient fault burst trips the
  // breaker, backoff expires into probation, and a clean probation window
  // recovers it before the main fire loop.
  PolicyGuardian guardian(&control_plane);
  BreakerConfig breaker;
  breaker.window_execs = 32;
  breaker.probation_execs = 16;
  if (const Status guarded = guardian.Guard(*handle, breaker); !guarded.ok()) {
    std::fprintf(stderr, "guard failed: %s\n", guarded.ToString().c_str());
    return 1;
  }
  {
    FailpointSpec fault;
    fault.mode = FailpointMode::kFirstN;
    fault.n = 32;
    fault.force_error = true;
    ScopedFailpoint burst("vm.helper", fault);
    for (uint64_t i = 0; i < 32; ++i) {
      (void)hooks.Fire(*hook, static_cast<int64_t>(i));
    }
    guardian.Tick();  // error window full -> tripped (suspended)
  }
  guardian.Tick();  // backoff expired -> probation
  for (uint64_t i = 0; i < 16; ++i) {
    (void)hooks.Fire(*hook, static_cast<int64_t>(i));
  }
  guardian.Tick();  // clean probation window -> healthy again

  // Tier ladder: run the first half of the fires on tier 2, promote via a
  // tiering tick (the exec counter is past hot_execs by then), and let the
  // second half take the specialized stream — so the export carries a
  // populated "rkd.vm.tier3.*" slice and the dump shows the overlay.
  ControlPlane::TieringConfig tiering;
  tiering.hot_execs = 1;
  if (const Status enabled = control_plane.EnableTiering(*handle, tiering); !enabled.ok()) {
    std::fprintf(stderr, "enable tiering failed: %s\n", enabled.ToString().c_str());
    return 1;
  }
  const uint64_t first_half = fires / 2;
  for (uint64_t i = 0; i < first_half; ++i) {
    (void)hooks.Fire(*hook, static_cast<int64_t>(i % 2000));
  }
  Result<ControlPlane::TierReport> tier_report = control_plane.TickTiering(*handle);
  if (!tier_report.ok()) {
    std::fprintf(stderr, "tiering tick failed: %s\n", tier_report.status().ToString().c_str());
    return 1;
  }
  for (uint64_t i = first_half; i < fires; ++i) {
    (void)hooks.Fire(*hook, static_cast<int64_t>(i % 2000));
  }
  (void)control_plane.TickTiering(*handle);  // flush fire-path tallies into the registry

  // Critical path & bottleneck: analyze the resident spans, store the
  // advisory (populates "rkd.bottleneck.*" and the dump section), and print
  // the classified report. Keep stdout machine-parseable in pure-JSON mode:
  // the advisory still refreshes (metrics + dump), only the text is elided.
  Result<BottleneckAdvisory> advisory = control_plane.RefreshBottleneck(*handle);
  if (advisory.ok()) {
    if (format != "json") {
      std::printf("critical path & bottleneck (trace-derived advisory):\n%s\n",
                  RenderAdvisory(*advisory, 3).c_str());
    }
  } else {
    std::fprintf(stderr, "bottleneck refresh failed: %s\n",
                 advisory.status().ToString().c_str());
  }

  if (dump) {
    InstalledProgram* program = control_plane.Get(*handle);
    if (program != nullptr) {
      std::printf("%s\n", DumpProgram(*program).c_str());
    }
    std::printf("tier ladder: tier %d, %zu specialized actions, %llu superblocks\n\n",
                tier_report->tier, tier_report->specialized_actions,
                static_cast<unsigned long long>(tier_report->superblocks));
  }

  const TelemetryRegistry& registry = hooks.telemetry();
  if (format == "prom" || format == "both") {
    std::printf("%s", ExportPrometheus(registry).c_str());
  }
  if (format == "both") {
    std::printf("\n");
  }
  if (format == "json" || format == "both") {
    std::printf("%s\n", ExportJson(registry).c_str());
  }
  return 0;
}
