// Tests for the RMT verifier: acceptance of well-formed programs and
// rejection of each unsafe family, plus the guard-insertion rewriter.
#include <array>
#include <gtest/gtest.h>

#include "src/bytecode/assembler.h"
#include "src/ml/decision_tree.h"
#include "src/verifier/guards.h"
#include "src/verifier/verifier.h"
#include "src/vm/vm.h"

namespace rkd {
namespace {

BytecodeProgram MustBuild(Assembler& a) {
  Result<BytecodeProgram> program = a.Build();
  EXPECT_TRUE(program.ok()) << program.status();
  return std::move(program).value();
}

bool HasDiagnosticContaining(const VerifyReport& report, std::string_view needle) {
  for (const std::string& diag : report.diagnostics) {
    if (diag.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

TEST(VerifierTest, AcceptsMinimalProgram) {
  Assembler a("ok");
  a.MovImm(0, 0).Exit();
  const VerifyReport report = Verifier().Verify(MustBuild(a));
  EXPECT_TRUE(report.ok()) << report.status;
  EXPECT_EQ(report.longest_path, 2u);
}

TEST(VerifierTest, AcceptsBranchyProgramAndMeasuresLongestPath) {
  Assembler a("branchy");
  auto skip = a.NewLabel();
  a.MovImm(0, 0);          // 1
  a.JeqImm(1, 0, skip);    // 2
  a.AddImm(0, 1);          // 3 (long path)
  a.AddImm(0, 1);          // 4
  a.Bind(skip);
  a.Exit();                // 5
  const VerifyReport report = Verifier().Verify(MustBuild(a));
  EXPECT_TRUE(report.ok()) << report.status;
  EXPECT_EQ(report.longest_path, 5u);
}

TEST(VerifierTest, RejectsEmptyProgram) {
  BytecodeProgram program;
  program.name = "empty";
  const VerifyReport report = Verifier().Verify(program);
  EXPECT_FALSE(report.ok());
}

TEST(VerifierTest, RejectsBackwardJump) {
  BytecodeProgram program;
  program.name = "loop";
  Instruction mov;
  mov.opcode = Opcode::kMovImm;
  program.code.push_back(mov);
  Instruction jump;
  jump.opcode = Opcode::kJa;
  jump.offset = -2;
  program.code.push_back(jump);
  Instruction exit_insn;
  exit_insn.opcode = Opcode::kExit;
  program.code.push_back(exit_insn);
  const VerifyReport report = Verifier().Verify(program);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasDiagnosticContaining(report, "backward jump"));
}

TEST(VerifierTest, RejectsJumpOutOfRange) {
  BytecodeProgram program;
  program.name = "far";
  Instruction jump;
  jump.opcode = Opcode::kJa;
  jump.offset = 50;
  program.code.push_back(jump);
  Instruction exit_insn;
  exit_insn.opcode = Opcode::kExit;
  program.code.push_back(exit_insn);
  const VerifyReport report = Verifier().Verify(program);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasDiagnosticContaining(report, "out of range"));
}

TEST(VerifierTest, RejectsFallOffEnd) {
  BytecodeProgram program;
  program.name = "fall";
  Instruction mov;
  mov.opcode = Opcode::kMovImm;
  program.code.push_back(mov);
  const VerifyReport report = Verifier().Verify(program);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasDiagnosticContaining(report, "fall off"));
}

TEST(VerifierTest, RejectsReadOfUninitializedRegister) {
  Assembler a("uninit");
  a.Add(0, 6);  // r0 and r6 both read before any write
  a.Exit();
  const VerifyReport report = Verifier().Verify(MustBuild(a));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasDiagnosticContaining(report, "before initialization"));
}

TEST(VerifierTest, ArgumentsAndFramePointerStartInitialized) {
  Assembler a("args_ok");
  a.Mov(0, 1);
  a.Add(0, 5);
  a.Exit();
  EXPECT_TRUE(Verifier().Verify(MustBuild(a)).ok());
}

TEST(VerifierTest, InitializationMustHoldOnEveryPath) {
  // r6 is written only on one branch arm, then read after the merge.
  Assembler a("one_arm");
  auto skip = a.NewLabel();
  a.JeqImm(1, 0, skip);
  a.MovImm(6, 5);
  a.Bind(skip);
  a.Mov(0, 6);  // on the taken path r6 was never written
  a.Exit();
  const VerifyReport report = Verifier().Verify(MustBuild(a));
  EXPECT_FALSE(report.ok());
}

TEST(VerifierTest, BothArmsInitializedIsAccepted) {
  Assembler a("both_arms");
  auto other = a.NewLabel();
  auto merge = a.NewLabel();
  a.JeqImm(1, 0, other);
  a.MovImm(6, 5);
  a.Ja(merge);
  a.Bind(other);
  a.MovImm(6, 9);
  a.Bind(merge);
  a.Mov(0, 6);
  a.Exit();
  EXPECT_TRUE(Verifier().Verify(MustBuild(a)).ok());
}

TEST(VerifierTest, RejectsUninitializedStackRead) {
  Assembler a("stack_uninit");
  a.LdStack(0, -8);
  a.Exit();
  const VerifyReport report = Verifier().Verify(MustBuild(a));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasDiagnosticContaining(report, "stack slot"));
}

TEST(VerifierTest, AcceptsStackReadAfterWrite) {
  Assembler a("stack_ok");
  a.StStackImm(-8, 7);
  a.LdStack(0, -8);
  a.Exit();
  EXPECT_TRUE(Verifier().Verify(MustBuild(a)).ok());
}

TEST(VerifierTest, RejectsWriteToFramePointer) {
  Assembler a("fp_write");
  a.MovImm(10, 0);
  a.MovImm(0, 0).Exit();
  const VerifyReport report = Verifier().Verify(MustBuild(a));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasDiagnosticContaining(report, "frame pointer"));
}

TEST(VerifierTest, RejectsBadStackOffset) {
  Assembler a("stack_bad");
  a.StStackImm(-12, 1);  // unaligned
  a.MovImm(0, 0).Exit();
  EXPECT_FALSE(Verifier().Verify(MustBuild(a)).ok());
}

TEST(VerifierTest, RejectsUndeclaredResources) {
  {
    Assembler a("map");
    a.MovImm(2, 0);
    a.MapLookup(0, 2, 0);  // no maps declared
    a.Exit();
    const VerifyReport report = Verifier().Verify(MustBuild(a));
    EXPECT_TRUE(HasDiagnosticContaining(report, "undeclared map"));
  }
  {
    Assembler a("model");
    a.VecZero(0);
    a.MlCall(0, 0, 0);  // no models declared
    a.Exit();
    const VerifyReport report = Verifier().Verify(MustBuild(a));
    EXPECT_TRUE(HasDiagnosticContaining(report, "undeclared model"));
  }
  {
    Assembler a("tensor");
    a.VecZero(0);
    a.MatMul(1, 0, 2);  // no tensors declared
    a.MovImm(0, 0).Exit();
    const VerifyReport report = Verifier().Verify(MustBuild(a));
    EXPECT_TRUE(HasDiagnosticContaining(report, "undeclared tensor"));
  }
  {
    Assembler a("table");
    a.MovImm(0, 0);
    a.TailCall(3);  // no tables declared
    a.Exit();
    const VerifyReport report = Verifier().Verify(MustBuild(a));
    EXPECT_TRUE(HasDiagnosticContaining(report, "undeclared tail-call"));
  }
}

TEST(VerifierTest, DeclaredResourcesAreAccepted) {
  Assembler a("declared");
  a.DeclareMaps(1).DeclareModels(1).DeclareTensors(1).DeclareTables(1);
  a.MovImm(2, 0);
  a.MapLookup(0, 2, 0);
  a.VecZero(0);
  a.MlCall(0, 0, 0);
  a.MatMul(1, 0, 0);
  a.TailCall(0);
  a.Exit();
  EXPECT_TRUE(Verifier().Verify(MustBuild(a)).ok());
}

TEST(VerifierTest, RejectsConstantZeroDivisor) {
  Assembler a("div0");
  a.MovImm(0, 5);
  a.DivImm(0, 0);
  a.Exit();
  const VerifyReport report = Verifier().Verify(MustBuild(a));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasDiagnosticContaining(report, "zero divisor"));
}

// --- Per-hook helper whitelists ---

struct WhitelistCase {
  const char* name;
  HookKind hook;
  HelperId helper;
  bool allowed;
};

class HelperWhitelistTest : public ::testing::TestWithParam<WhitelistCase> {};

TEST_P(HelperWhitelistTest, EnforcesWhitelist) {
  const WhitelistCase& c = GetParam();
  Assembler a("helper", c.hook);
  if (c.helper == HelperId::kPrefetchEmit || c.helper == HelperId::kSetPriorityHint) {
    a.Call(HelperId::kRateLimitCheck);  // keep the guard pass satisfied
  }
  a.Call(c.helper);
  a.Exit();
  Result<BytecodeProgram> built = a.Build();
  ASSERT_TRUE(built.ok());
  const VerifyReport report = Verifier().Verify(*built);
  if (c.allowed) {
    EXPECT_TRUE(report.ok()) << report.status;
  } else {
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(HasDiagnosticContaining(report, "not permitted"));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Hooks, HelperWhitelistTest,
    ::testing::Values(
        WhitelistCase{"prefetch_in_prefetch", HookKind::kMemPrefetch, HelperId::kPrefetchEmit,
                      true},
        WhitelistCase{"prefetch_in_access", HookKind::kMemAccess, HelperId::kPrefetchEmit,
                      false},
        WhitelistCase{"prefetch_in_sched", HookKind::kSchedMigrate, HelperId::kPrefetchEmit,
                      false},
        WhitelistCase{"priority_in_sched", HookKind::kSchedMigrate,
                      HelperId::kSetPriorityHint, true},
        WhitelistCase{"priority_in_prefetch", HookKind::kMemPrefetch,
                      HelperId::kSetPriorityHint, false},
        WhitelistCase{"history_everywhere", HookKind::kMemAccess, HelperId::kHistoryAppend,
                      true},
        WhitelistCase{"rate_limit_not_in_access", HookKind::kMemAccess,
                      HelperId::kRateLimitCheck, false},
        WhitelistCase{"dp_noise_generic", HookKind::kGeneric, HelperId::kDpNoise, true}),
    [](const ::testing::TestParamInfo<WhitelistCase>& info) { return info.param.name; });

// --- Budgets ---

TEST(VerifierTest, RejectsOverlongProgram) {
  HookBudget budget;
  budget.max_instructions = 4;
  budget.allowed_helpers = {};
  VerifierConfig config;
  config.budget_override = &budget;
  Assembler a("long");
  for (int i = 0; i < 8; ++i) {
    a.MovImm(0, i);
  }
  a.Exit();
  const VerifyReport report = Verifier(config).Verify(MustBuild(a));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasDiagnosticContaining(report, "exceeds hook budget"));
}

TEST(VerifierTest, RejectsOverlongPath) {
  HookBudget budget;
  budget.max_instructions = 100;
  budget.max_path_length = 4;
  VerifierConfig config;
  config.budget_override = &budget;
  Assembler a("longpath");
  for (int i = 0; i < 8; ++i) {
    a.MovImm(0, i);
  }
  a.Exit();
  const VerifyReport report = Verifier(config).Verify(MustBuild(a));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasDiagnosticContaining(report, "longest execution path"));
}

TEST(VerifierTest, ModelCostCountedAgainstBudget) {
  // A deep-ish tree installed in the referenced slot.
  Dataset data(2);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const std::array<int32_t, 2> row{static_cast<int32_t>(rng.NextInt(0, 100)),
                                     static_cast<int32_t>(rng.NextInt(0, 100))};
    data.Add(row, (row[0] + row[1]) % 3);
  }
  Result<DecisionTree> tree = DecisionTree::Train(data);
  ASSERT_TRUE(tree.ok());
  ModelRegistry models;
  models.AddSlot();
  ASSERT_TRUE(models.Install(0, std::make_shared<DecisionTree>(std::move(tree).value())).ok());

  Assembler a("mlcost", HookKind::kSchedMigrate);
  a.DeclareModels(1);
  a.VecZero(0);
  a.MlCall(0, 0, 0);
  a.Exit();
  const BytecodeProgram program = MustBuild(a);

  // Generous budget: accepted, work units reported.
  {
    const VerifyReport report = Verifier().Verify(program, &models);
    EXPECT_TRUE(report.ok()) << report.status;
    EXPECT_GT(report.model_work_units, 0u);
  }
  // Starved budget: rejected with the distillation hint.
  {
    HookBudget budget = BudgetForHook(HookKind::kSchedMigrate);
    budget.max_work_units = 1;
    VerifierConfig config;
    config.budget_override = &budget;
    const VerifyReport report = Verifier(config).Verify(program, &models);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(HasDiagnosticContaining(report, "ML work units"));
  }
}

TEST(VerifierTest, TensorCostCountedAgainstBudget) {
  TensorRegistry tensors;
  tensors.Add(FixedMatrix(32, 32));  // 1024 MACs
  Assembler a("tensorcost");
  a.DeclareTensors(1);
  a.VecZero(0);
  a.MatMul(1, 0, 0);
  a.MovImm(0, 0).Exit();
  HookBudget budget = BudgetForHook(HookKind::kGeneric);
  budget.max_work_units = 100;
  VerifierConfig config;
  config.budget_override = &budget;
  const VerifyReport report = Verifier(config).Verify(MustBuild(a), nullptr, &tensors);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.model_work_units, 4096u + 0u);  // 4 * 1024 MACs
}

// --- Interference guards ---

TEST(VerifierTest, UnguardedGrantRejected) {
  Assembler a("unguarded", HookKind::kMemPrefetch);
  a.MovImm(1, 10).MovImm(2, 1);
  a.Call(HelperId::kPrefetchEmit);
  a.MovImm(0, 0).Exit();
  const VerifyReport report = Verifier().Verify(MustBuild(a));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasDiagnosticContaining(report, "rate_limit_check"));
}

TEST(VerifierTest, GuardRequirementCanBeDisabled) {
  VerifierConfig config;
  config.require_rate_limit_guard = false;
  Assembler a("unguarded_ok", HookKind::kMemPrefetch);
  a.MovImm(1, 10).MovImm(2, 1);
  a.Call(HelperId::kPrefetchEmit);
  a.MovImm(0, 0).Exit();
  EXPECT_TRUE(Verifier(config).Verify(MustBuild(a)).ok());
}

TEST(GuardInsertionTest, InsertsGuardAndReverifies) {
  Assembler a("needs_guard", HookKind::kMemPrefetch);
  a.MovImm(1, 10).MovImm(2, 1);
  a.Call(HelperId::kPrefetchEmit);
  a.MovImm(0, 0).Exit();
  BytecodeProgram program = MustBuild(a);
  ASSERT_FALSE(Verifier().Verify(program).ok());

  Result<int> guards = InsertRateLimitGuards(program);
  ASSERT_TRUE(guards.ok()) << guards.status();
  EXPECT_EQ(*guards, 1);
  EXPECT_TRUE(Verifier().Verify(program).ok());
}

TEST(GuardInsertionTest, GuardActuallyBlocksWhenLimiterDenies) {
  Assembler a("guarded_exec", HookKind::kMemPrefetch);
  a.MovImm(1, 10).MovImm(2, 4);
  a.Call(HelperId::kPrefetchEmit);  // asks for 4 pages
  a.MovImm(0, 0).Exit();
  BytecodeProgram program = MustBuild(a);
  ASSERT_TRUE(InsertRateLimitGuards(program).ok());

  std::vector<int64_t> emitted;
  RateLimiter limiter(4, 0);  // 4 tokens, never refilled
  HelperServices services;
  services.rate_limiter = &limiter;
  services.prefetch_emit = [&](int64_t page, int64_t count) {
    for (int64_t i = 0; i < count; ++i) {
      emitted.push_back(page + i);
    }
  };
  VmEnv env;
  env.helpers = &services;
  const Interpreter interp(env);

  // First run consumes the bucket (guard key r1=10, units r2=4).
  ASSERT_TRUE(interp.Run(program, {}).ok());
  EXPECT_EQ(emitted.size(), 4u);
  // Second run is denied by the inserted guard: no further emissions.
  ASSERT_TRUE(interp.Run(program, {}).ok());
  EXPECT_EQ(emitted.size(), 4u);
}

TEST(GuardInsertionTest, BranchesAcrossInsertionAreFixedUp) {
  Assembler a("branches", HookKind::kMemPrefetch);
  auto skip = a.NewLabel();
  a.MovImm(1, 10).MovImm(2, 1);
  a.JeqImm(1, 0, skip);              // branch across the insertion point
  a.Call(HelperId::kPrefetchEmit);
  a.Bind(skip);
  a.MovImm(0, 55).Exit();
  BytecodeProgram program = MustBuild(a);
  ASSERT_TRUE(InsertRateLimitGuards(program).ok());
  EXPECT_TRUE(Verifier().Verify(program).ok());

  HelperServices services;  // no limiter: check allows by default
  int emit_calls = 0;
  services.prefetch_emit = [&](int64_t, int64_t) { ++emit_calls; };
  VmEnv env;
  env.helpers = &services;
  const Interpreter interp(env);
  Result<int64_t> result = interp.Run(program, {});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(*result, 55);
  EXPECT_EQ(emit_calls, 1);
}

TEST(GuardInsertionTest, AlreadyGuardedGrantLeftAlone) {
  Assembler a("pre_guarded", HookKind::kMemPrefetch);
  auto done = a.NewLabel();
  a.MovImm(1, 10).MovImm(2, 1);
  a.Call(HelperId::kRateLimitCheck);
  a.JeqImm(0, 0, done);
  a.Call(HelperId::kPrefetchEmit);
  a.Bind(done);
  a.MovImm(0, 0).Exit();
  BytecodeProgram program = MustBuild(a);
  const size_t before = program.code.size();
  Result<int> guards = InsertRateLimitGuards(program);
  ASSERT_TRUE(guards.ok());
  EXPECT_EQ(*guards, 0);
  EXPECT_EQ(program.code.size(), before);
}

// --- Privacy budget ---

TEST(VerifierTest, CountsDpNoiseSitesAndEnforcesEpsilon) {
  VerifierConfig config;
  config.max_epsilon = 0.25;
  config.epsilon_per_noise_site = 0.1;
  Assembler a("dp");
  a.Call(HelperId::kDpNoise);
  a.Call(HelperId::kDpNoise);
  a.Exit();
  {
    const VerifyReport report = Verifier(config).Verify(MustBuild(a));
    EXPECT_TRUE(report.ok()) << report.status;
    EXPECT_EQ(report.dp_noise_sites, 2u);
    EXPECT_NEAR(report.epsilon_spend, 0.2, 1e-9);
  }
  Assembler b("dp3");
  b.Call(HelperId::kDpNoise);
  b.Call(HelperId::kDpNoise);
  b.Call(HelperId::kDpNoise);
  b.Exit();
  {
    const VerifyReport report = Verifier(config).Verify(MustBuild(b));
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(HasDiagnosticContaining(report, "privacy budget"));
  }
}

TEST(VerifierTest, ReportsAllDiagnosticsNotJustFirst) {
  Assembler a("multi");
  a.Add(0, 6);            // uninitialized reads
  a.DivImm(0, 0);         // zero divisor
  a.MapLookup(0, 2, 0);   // undeclared map
  a.Exit();
  const VerifyReport report = Verifier().Verify(MustBuild(a));
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.diagnostics.size(), 3u);
}

// --- rkd.verifier.* telemetry ---

TEST(VerifierTelemetryTest, CountsChecksRejectionsAndLatency) {
  TelemetryRegistry telemetry;
  Verifier verifier;
  verifier.BindTelemetry(&telemetry);

  Assembler good("good");
  good.MovImm(0, 1);
  good.Exit();
  EXPECT_TRUE(verifier.Verify(MustBuild(good)).ok());

  Assembler bad("bad");
  bad.Add(0, 6);           // read-before-init -> dataflow rejection
  bad.MapLookup(0, 2, 0);  // undeclared map -> resources rejection
  bad.Exit();
  const VerifyReport report = verifier.Verify(MustBuild(bad));
  EXPECT_FALSE(report.ok());
  EXPECT_GT(report.diags_by_kind[static_cast<size_t>(VerifyCheckKind::kDataflow)], 0u);
  EXPECT_GT(report.diags_by_kind[static_cast<size_t>(VerifyCheckKind::kResources)], 0u);

  EXPECT_EQ(telemetry.GetCounter("rkd.verifier.programs_checked")->value(), 2u);
  EXPECT_EQ(telemetry.GetCounter("rkd.verifier.rejections")->value(), 1u);
  EXPECT_GE(telemetry.GetCounter("rkd.verifier.reject.dataflow")->value(), 1u);
  EXPECT_GE(telemetry.GetCounter("rkd.verifier.reject.resources")->value(), 1u);
  EXPECT_EQ(telemetry.GetCounter("rkd.verifier.reject.privacy")->value(), 0u);
  EXPECT_EQ(telemetry.GetHistogram("rkd.verifier.verify_ns")->count(), 2u);
}

TEST(VerifierTelemetryTest, UnboundVerifierRecordsNothing) {
  Verifier verifier;  // no BindTelemetry
  Assembler a("plain");
  a.MovImm(0, 1);
  a.Exit();
  EXPECT_TRUE(verifier.Verify(MustBuild(a)).ok());  // must not crash
}

TEST(BudgetForHookTest, SchedulerBudgetIsTighterThanPrefetch) {
  const HookBudget sched = BudgetForHook(HookKind::kSchedMigrate);
  const HookBudget prefetch = BudgetForHook(HookKind::kMemPrefetch);
  EXPECT_LT(sched.max_work_units, prefetch.max_work_units);
  EXPECT_LT(sched.max_path_length, prefetch.max_path_length);
}

}  // namespace
}  // namespace rkd
