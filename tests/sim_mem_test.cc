// Tests for the memory substrate: simulator accounting, both baseline
// prefetchers, and the RMT/ML prefetcher end to end.
#include <gtest/gtest.h>

#include "src/sim/mem/leap.h"
#include "src/sim/mem/memory_sim.h"
#include "src/sim/mem/ml_prefetcher.h"
#include "src/sim/mem/readahead.h"
#include "src/workloads/access_trace.h"

namespace rkd {
namespace {

MemSimConfig SmallConfig() {
  MemSimConfig config;
  config.frame_capacity = 64;
  config.hit_ns = 100;
  config.fault_ns = 10000;
  config.prefetch_issue_ns = 500;
  return config;
}

// --- MemorySim accounting ---

TEST(MemorySimTest, ColdAccessesAllFault) {
  NullPrefetcher none;
  MemorySim sim(SmallConfig(), &none);
  const AccessTrace trace = MakeSequentialTrace(1, 0, 50);
  const MemMetrics metrics = sim.Run(trace);
  EXPECT_EQ(metrics.accesses, 50u);
  EXPECT_EQ(metrics.faults, 50u);
  EXPECT_EQ(metrics.hits, 0u);
  EXPECT_EQ(metrics.prefetched, 0u);
  EXPECT_EQ(metrics.total_ns, 50u * 10000u);
}

TEST(MemorySimTest, RepeatedAccessHitsWhileResident) {
  NullPrefetcher none;
  MemorySim sim(SmallConfig(), &none);
  AccessTrace trace;
  for (int rep = 0; rep < 3; ++rep) {
    for (int64_t page = 0; page < 10; ++page) {
      trace.push_back(AccessEvent{1, page});
    }
  }
  const MemMetrics metrics = sim.Run(trace);
  EXPECT_EQ(metrics.faults, 10u);
  EXPECT_EQ(metrics.hits, 20u);
}

TEST(MemorySimTest, LruEvictionBoundsResidency) {
  NullPrefetcher none;
  MemSimConfig config = SmallConfig();
  config.frame_capacity = 8;
  MemorySim sim(config, &none);
  // Touch 16 pages then revisit the first 8: all evicted, all fault again.
  AccessTrace trace = MakeSequentialTrace(1, 0, 16);
  const AccessTrace revisit = MakeSequentialTrace(1, 0, 8);
  trace.insert(trace.end(), revisit.begin(), revisit.end());
  const MemMetrics metrics = sim.Run(trace);
  EXPECT_EQ(metrics.faults, 24u);
}

// A scripted prefetcher for accounting tests.
class ScriptedPrefetcher final : public Prefetcher {
 public:
  explicit ScriptedPrefetcher(std::vector<int64_t> per_fault) : per_fault_(std::move(per_fault)) {}
  std::string_view name() const override { return "scripted"; }
  void OnAccess(uint64_t, int64_t, bool) override {}
  void OnFault(uint64_t, int64_t page, std::vector<int64_t>& out) override {
    for (int64_t delta : per_fault_) {
      out.push_back(page + delta);
    }
  }

 private:
  std::vector<int64_t> per_fault_;
};

TEST(MemorySimTest, PrefetchTurnsFaultsIntoHits) {
  // Prefetching only the next page on each fault alternates fault/hit:
  // prefetches fire on faults only, so every hit is followed by a fault.
  ScriptedPrefetcher next_page({1});
  MemorySim sim(SmallConfig(), &next_page);
  const AccessTrace trace = MakeSequentialTrace(1, 0, 50);
  const MemMetrics metrics = sim.Run(trace);
  EXPECT_EQ(metrics.faults, 25u);
  EXPECT_EQ(metrics.prefetch_hits, 25u);
  EXPECT_EQ(metrics.prefetched, 25u);
  EXPECT_NEAR(metrics.accuracy(), 1.0, 1e-9);  // every prefetch is used
  EXPECT_NEAR(metrics.coverage(), 0.5, 1e-9);  // half the misses avoided
}

TEST(MemorySimTest, DeeperPrefetchRaisesCoverage) {
  ScriptedPrefetcher window({1, 2, 3, 4});
  MemorySim sim(SmallConfig(), &window);
  const AccessTrace trace = MakeSequentialTrace(1, 0, 50);
  const MemMetrics metrics = sim.Run(trace);
  EXPECT_EQ(metrics.faults, 10u);  // one fault per 5 pages
  EXPECT_NEAR(metrics.coverage(), 0.8, 1e-9);
}

TEST(MemorySimTest, WrongPrefetchesCountedAsWaste) {
  ScriptedPrefetcher wrong({100000});  // never accessed
  MemSimConfig config = SmallConfig();
  config.frame_capacity = 4;
  MemorySim sim(config, &wrong);
  const AccessTrace trace = MakeSequentialTrace(1, 0, 20);
  const MemMetrics metrics = sim.Run(trace);
  EXPECT_EQ(metrics.prefetch_used, 0u);
  EXPECT_EQ(metrics.accuracy(), 0.0);
  EXPECT_GT(metrics.prefetch_evicted_unused, 0u);
}

TEST(MemorySimTest, MaxPrefetchPerFaultCapped) {
  std::vector<int64_t> many;
  for (int64_t i = 1; i <= 100; ++i) {
    many.push_back(i);
  }
  ScriptedPrefetcher flood(many);
  MemSimConfig config = SmallConfig();
  config.max_prefetch_per_fault = 8;
  MemorySim sim(config, &flood);
  AccessTrace trace;
  trace.push_back(AccessEvent{1, 0});
  const MemMetrics metrics = sim.Run(trace);
  EXPECT_EQ(metrics.prefetched, 8u);
}

TEST(MemorySimTest, CompletionTimeChargesPrefetchIssue) {
  ScriptedPrefetcher next_page({1});
  MemSimConfig config = SmallConfig();
  MemorySim sim(config, &next_page);
  AccessTrace trace = MakeSequentialTrace(1, 0, 2);
  const MemMetrics metrics = sim.Run(trace);
  // fault + prefetch issue + hit.
  EXPECT_EQ(metrics.total_ns, config.fault_ns + config.prefetch_issue_ns + config.hit_ns);
}

// --- Readahead baseline ---

TEST(ReadaheadTest, SequentialStreamGetsCovered) {
  ReadaheadPrefetcher readahead;
  MemorySim sim(SmallConfig(), &readahead);
  const AccessTrace trace = MakeSequentialTrace(1, 0, 500);
  const MemMetrics metrics = sim.Run(trace);
  EXPECT_GT(metrics.coverage(), 0.8);
  EXPECT_GT(metrics.accuracy(), 0.8);
}

TEST(ReadaheadTest, WindowGrowsOnSequentialStreaks) {
  ReadaheadConfig config;
  ReadaheadPrefetcher readahead(config);
  std::vector<int64_t> out;
  // Build a streak.
  for (int64_t page = 0; page < 5; ++page) {
    readahead.OnAccess(1, page, false);
  }
  readahead.OnFault(1, 5, out);
  const size_t first = out.size();
  EXPECT_EQ(first, config.min_window);
  out.clear();
  for (int64_t page = 5; page < 10; ++page) {
    readahead.OnAccess(1, page, false);
  }
  readahead.OnFault(1, 10, out);
  EXPECT_EQ(out.size(), config.min_window * 2);
}

TEST(ReadaheadTest, RandomAccessFallsBackToCluster) {
  ReadaheadConfig config;
  ReadaheadPrefetcher readahead(config);
  readahead.OnAccess(1, 100, false);
  readahead.OnAccess(1, 9000, false);  // streak broken
  std::vector<int64_t> out;
  readahead.OnFault(1, 9000, out);
  EXPECT_EQ(out.size(), config.cluster);
  EXPECT_EQ(out.front(), 9001);
}

TEST(ReadaheadTest, StreamsArePerProcess) {
  ReadaheadPrefetcher readahead;
  // Interleaved sequential streams of two pids must both be detected. The
  // frame cache must hold both streams' readahead windows, or prefetched
  // pages are evicted before use (which SmallConfig's 64 frames provokes).
  AccessTrace a = MakeSequentialTrace(1, 0, 200);
  AccessTrace b = MakeSequentialTrace(2, 100000, 200);
  const AccessTrace merged = Interleave({a, b});
  MemSimConfig config = SmallConfig();
  config.frame_capacity = 256;
  MemorySim sim(config, &readahead);
  const MemMetrics metrics = sim.Run(merged);
  EXPECT_GT(metrics.coverage(), 0.7);
}

TEST(ReadaheadTest, SharedCacheThrashingHurtsCoverage) {
  // The same two streams under a tight cache: cross-stream eviction wastes
  // prefetches. This cache-pollution interaction is why bad prefetching has
  // a completion-time cost, not just an I/O cost.
  ReadaheadPrefetcher readahead;
  AccessTrace a = MakeSequentialTrace(1, 0, 200);
  AccessTrace b = MakeSequentialTrace(2, 100000, 200);
  const AccessTrace merged = Interleave({a, b});
  MemorySim sim(SmallConfig(), &readahead);  // 64 frames
  const MemMetrics metrics = sim.Run(merged);
  EXPECT_LT(metrics.coverage(), 0.5);
  EXPECT_GT(metrics.prefetch_evicted_unused, 0u);
}

// --- Leap baseline ---

TEST(LeapTest, DetectsNonUnitStride) {
  LeapPrefetcher leap;
  MemorySim sim(SmallConfig(), &leap);
  Rng rng(1);
  const AccessTrace trace = MakeStridedTrace(1, 0, 7, 1000, 0.0, rng);
  const MemMetrics metrics = sim.Run(trace);
  EXPECT_GT(metrics.accuracy(), 0.9);
  EXPECT_GT(metrics.coverage(), 0.7);
}

TEST(LeapTest, NegativeStrideDetected) {
  LeapPrefetcher leap;
  MemorySim sim(SmallConfig(), &leap);
  Rng rng(2);
  const AccessTrace trace = MakeStridedTrace(1, 1000000, -3, 1000, 0.0, rng);
  const MemMetrics metrics = sim.Run(trace);
  EXPECT_GT(metrics.coverage(), 0.7);
}

TEST(LeapTest, MajorityVoteToleratesNoise) {
  LeapPrefetcher leap;
  MemorySim sim(SmallConfig(), &leap);
  Rng rng(3);
  const AccessTrace trace = MakeStridedTrace(1, 0, 5, 2000, 0.1, rng);
  const MemMetrics metrics = sim.Run(trace);
  EXPECT_GT(metrics.coverage(), 0.5);
}

TEST(LeapTest, AlternatingDeltasHaveNoMajority) {
  // The bilinear 2-cycle: Leap must fall back (low stride accuracy) since
  // neither delta is a strict majority.
  LeapPrefetcher leap;
  MemorySim sim(SmallConfig(), &leap);
  VideoResizeConfig config;
  config.noise_prob = 0.0;
  config.frames = 4;
  Rng rng(4);
  const AccessTrace trace = MakeVideoResizeTrace(config, rng);
  const MemMetrics metrics = sim.Run(trace);
  EXPECT_LT(metrics.accuracy(), 0.7);
}

// --- RMT/ML prefetcher ---

TEST(MlPrefetcherTest, InitInstallsVerifiedProgram) {
  RmtMlPrefetcher prefetcher;
  ASSERT_TRUE(prefetcher.Init().ok());
  EXPECT_EQ(prefetcher.control_plane().installed_count(), 1u);
  EXPECT_FALSE(prefetcher.Init().ok());  // double init rejected
}

TEST(MlPrefetcherTest, FallsBackSequentiallyBeforeTraining) {
  RmtMlPrefetcher prefetcher;
  ASSERT_TRUE(prefetcher.Init().ok());
  std::vector<int64_t> out;
  prefetcher.OnAccess(1, 100, false);
  prefetcher.OnFault(1, 100, out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front(), 101);  // sequential fallback
  EXPECT_EQ(prefetcher.windows_trained(), 0u);
}

TEST(MlPrefetcherTest, TrainsWindowsAndLearnsStride) {
  MlPrefetcherConfig config;
  config.window_size = 128;
  config.min_train_samples = 32;
  RmtMlPrefetcher prefetcher(config);
  ASSERT_TRUE(prefetcher.Init().ok());

  // Feed a pure stride-9 stream through the access hook.
  int64_t page = 0;
  for (int i = 0; i < 400; ++i) {
    prefetcher.OnAccess(1, page, false);
    page += 9;
  }
  EXPECT_GE(prefetcher.windows_trained(), 1u);

  std::vector<int64_t> out;
  prefetcher.OnFault(1, page - 9, out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front(), page);  // predicted delta 9 from the fault page
}

TEST(MlPrefetcherTest, BeatsBaselinesOnMatrixConv) {
  MemSimConfig sim_config;
  sim_config.frame_capacity = 192;

  MatrixConvConfig trace_config;
  trace_config.height = 360;
  Rng rng(5);
  const AccessTrace trace = MakeMatrixConvTrace(trace_config, rng);

  ReadaheadPrefetcher readahead;
  MemorySim linux_sim(sim_config, &readahead);
  const MemMetrics linux_metrics = linux_sim.Run(trace);

  RmtMlPrefetcher ml;
  ASSERT_TRUE(ml.Init().ok());
  MemorySim ml_sim(sim_config, &ml);
  const MemMetrics ml_metrics = ml_sim.Run(trace);

  EXPECT_GT(ml_metrics.accuracy(), linux_metrics.accuracy() + 0.3);
  EXPECT_LT(ml_metrics.total_ns, linux_metrics.total_ns);
  EXPECT_GT(ml.windows_trained(), 0u);
}

TEST(MlPrefetcherTest, TierLadderPromotesHotActionsAndRespecializes) {
  MlPrefetcherConfig config;
  config.window_size = 128;
  config.min_train_samples = 32;
  config.tiering_hot_execs = 256;  // promote well inside the trace
  RmtMlPrefetcher prefetcher(config);
  ASSERT_TRUE(prefetcher.Init().ok());

  Rng rng(9);
  const AccessTrace trace = MakeStridedTrace(1, 0, 7, 4000, 0.0, rng);
  MemorySim sim(SmallConfig(), &prefetcher);
  const MemMetrics metrics = sim.Run(trace);
  EXPECT_GT(metrics.accuracy(), 0.5);  // tier 3 fires are bit-identical
  ASSERT_GT(prefetcher.windows_trained(), 0u);

  auto report = prefetcher.control_plane().TickTiering(prefetcher.handle());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->tier, 3);
  EXPECT_GT(report->specialized_actions, 0u);
  EXPECT_GT(report->tier3_execs, 0u);
  // Note on deopts: each training window's model install / knob write stales
  // the live streams, but the training loop ticks the ladder immediately
  // after, so streams are respecialized before the next fire ever hits the
  // stale guard — fire-path deopts stay at zero on the happy path.
}

TEST(MlPrefetcherTest, TieringOffMatchesTieringOnExactly) {
  auto run = [](bool tiering) {
    MlPrefetcherConfig config;
    config.window_size = 128;
    config.min_train_samples = 32;
    config.enable_tiering = tiering;
    config.tiering_hot_execs = 128;
    RmtMlPrefetcher prefetcher(config);
    EXPECT_TRUE(prefetcher.Init().ok());
    Rng rng(11);
    const AccessTrace trace = MakeStridedTrace(2, 0, 5, 3000, 0.05, rng);
    MemorySim sim(SmallConfig(), &prefetcher);
    return sim.Run(trace);
  };
  const MemMetrics off = run(false);
  const MemMetrics on = run(true);
  EXPECT_EQ(off.hits, on.hits);
  EXPECT_EQ(off.faults, on.faults);
  EXPECT_EQ(off.prefetched, on.prefetched);
  EXPECT_EQ(off.prefetch_used, on.prefetch_used);
  EXPECT_EQ(off.total_ns, on.total_ns);
}

TEST(MlPrefetcherTest, AdaptationKnobWithinConfiguredBounds) {
  MlPrefetcherConfig config;
  config.window_size = 128;
  config.initial_depth = 4;
  config.max_depth = 8;
  RmtMlPrefetcher prefetcher(config);
  ASSERT_TRUE(prefetcher.Init().ok());
  EXPECT_EQ(prefetcher.current_depth_knob(), 4);

  Rng rng(6);
  const AccessTrace trace = MakeStridedTrace(1, 0, 3, 2000, 0.0, rng);
  MemSimConfig sim_config;
  sim_config.frame_capacity = 64;
  MemorySim sim(sim_config, &prefetcher);
  (void)sim.Run(trace);
  const int64_t knob = prefetcher.current_depth_knob();
  EXPECT_GE(knob, 1);
  EXPECT_LE(knob, 8);
}

class MlPrefetcherFamilyTest : public ::testing::TestWithParam<PrefetchModelFamily> {};

TEST_P(MlPrefetcherFamilyTest, EveryFamilyLearnsAPureStride) {
  MlPrefetcherConfig config;
  config.family = GetParam();
  config.window_size = 128;
  config.min_train_samples = 32;
  RmtMlPrefetcher prefetcher(config);
  ASSERT_TRUE(prefetcher.Init().ok());
  int64_t page = 0;
  for (int i = 0; i < 600; ++i) {
    prefetcher.OnAccess(1, page, false);
    page += 6;
  }
  EXPECT_GE(prefetcher.windows_trained(), 1u);
  std::vector<int64_t> out;
  prefetcher.OnFault(1, page - 6, out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front(), page);  // all families nail a single-class task
}

INSTANTIATE_TEST_SUITE_P(Families, MlPrefetcherFamilyTest,
                         ::testing::Values(PrefetchModelFamily::kDecisionTree,
                                           PrefetchModelFamily::kRandomForest,
                                           PrefetchModelFamily::kQuantizedMlp),
                         [](const ::testing::TestParamInfo<PrefetchModelFamily>& info) {
                           switch (info.param) {
                             case PrefetchModelFamily::kDecisionTree: return "tree";
                             case PrefetchModelFamily::kRandomForest: return "forest";
                             case PrefetchModelFamily::kQuantizedMlp: return "mlp";
                           }
                           return "unknown";
                         });

TEST(MlPrefetcherTest, BatchedMonitoringMatchesUnbatchedExactly) {
  // The access hook may batch its fires, but every prefetch decision flushes
  // first, so the whole simulation — decisions, training, adaptation — must
  // be bit-identical between access_batch=1 (old per-access Fire path) and
  // any larger batch.
  MatrixConvConfig trace_config;
  trace_config.height = 240;
  Rng rng(11);
  const AccessTrace trace = MakeMatrixConvTrace(trace_config, rng);

  MemSimConfig sim_config;
  sim_config.frame_capacity = 192;

  const auto run = [&](size_t access_batch) {
    MlPrefetcherConfig config;
    config.window_size = 128;
    config.min_train_samples = 32;
    config.access_batch = access_batch;
    RmtMlPrefetcher prefetcher(config);
    EXPECT_TRUE(prefetcher.Init().ok());
    MemorySim sim(sim_config, &prefetcher);
    const MemMetrics metrics = sim.Run(trace);
    return std::make_pair(metrics, prefetcher.windows_trained());
  };

  const auto [unbatched, unbatched_windows] = run(1);
  const auto [batched, batched_windows] = run(32);
  EXPECT_EQ(unbatched.faults, batched.faults);
  EXPECT_EQ(unbatched.hits, batched.hits);
  EXPECT_EQ(unbatched.prefetched, batched.prefetched);
  EXPECT_EQ(unbatched.prefetch_used, batched.prefetch_used);
  EXPECT_EQ(unbatched.prefetch_evicted_unused, batched.prefetch_evicted_unused);
  EXPECT_EQ(unbatched.total_ns, batched.total_ns);
  EXPECT_EQ(unbatched_windows, batched_windows);
  EXPECT_GT(batched_windows, 0u);  // the comparison exercised training
}

TEST(MlPrefetcherTest, RunEndFlushesTheAccessTail) {
  // 100 stride accesses with batch 64: one mid-run flush leaves 36 buffered;
  // OnRunEnd must hand them to the training plane.
  MlPrefetcherConfig config;
  config.window_size = 64;
  config.min_train_samples = 32;
  config.access_batch = 64;
  RmtMlPrefetcher prefetcher(config);
  ASSERT_TRUE(prefetcher.Init().ok());
  int64_t page = 0;
  for (int i = 0; i < 100; ++i) {
    prefetcher.OnAccess(1, page, false);
    page += 9;
  }
  EXPECT_EQ(prefetcher.windows_trained(), 0u);  // 64 drained, window at 59
  prefetcher.OnRunEnd();
  EXPECT_EQ(prefetcher.windows_trained(), 1u);  // tail flush completes it
}

TEST(MlPrefetcherTest, MultiProcessStreamsAreIndependent) {
  MlPrefetcherConfig config;
  config.window_size = 128;
  RmtMlPrefetcher prefetcher(config);
  ASSERT_TRUE(prefetcher.Init().ok());
  // pid 1 strides by 4, pid 2 strides by 11; interleaved.
  int64_t p1 = 0;
  int64_t p2 = 1000000;
  for (int i = 0; i < 300; ++i) {
    prefetcher.OnAccess(1, p1, false);
    prefetcher.OnAccess(2, p2, false);
    p1 += 4;
    p2 += 11;
  }
  std::vector<int64_t> out1;
  prefetcher.OnFault(1, p1 - 4, out1);
  std::vector<int64_t> out2;
  prefetcher.OnFault(2, p2 - 11, out2);
  ASSERT_FALSE(out1.empty());
  ASSERT_FALSE(out2.empty());
  EXPECT_EQ(out1.front(), p1);
  EXPECT_EQ(out2.front(), p2);
}

}  // namespace
}  // namespace rkd
