// Tests for the lightweight ML library: decision tree, MLP, quantization,
// integer linear model, distillation, feature importance, online training,
// NAS, and the model/tensor registries.
#include <array>
#include <cmath>
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/ml/dataset.h"
#include "src/ml/decision_tree.h"
#include "src/ml/distill.h"
#include "src/ml/feature_importance.h"
#include "src/ml/linear.h"
#include "src/ml/mlp.h"
#include "src/ml/model_registry.h"
#include "src/ml/nas.h"
#include "src/ml/online.h"
#include "src/ml/quantize.h"

namespace rkd {
namespace {

// Threshold rule on feature 0: class = x0 > 50.
Dataset ThresholdDataset(size_t n, Rng& rng) {
  Dataset data(3);
  for (size_t i = 0; i < n; ++i) {
    const std::array<int32_t, 3> row{static_cast<int32_t>(rng.NextInt(0, 100)),
                                     static_cast<int32_t>(rng.NextInt(0, 100)),
                                     static_cast<int32_t>(rng.NextInt(0, 100))};
    data.Add(row, row[0] > 50 ? 1 : 0);
  }
  return data;
}

// XOR-ish rule needing two features: class = (x0 > 50) != (x1 > 50).
Dataset XorDataset(size_t n, Rng& rng) {
  Dataset data(2);
  for (size_t i = 0; i < n; ++i) {
    const std::array<int32_t, 2> row{static_cast<int32_t>(rng.NextInt(0, 100)),
                                     static_cast<int32_t>(rng.NextInt(0, 100))};
    data.Add(row, (row[0] > 50) != (row[1] > 50) ? 1 : 0);
  }
  return data;
}

// --- Dataset ---

TEST(DatasetTest, AddAndAccess) {
  Dataset data(2);
  data.Add(std::array<int32_t, 2>{1, 2}, 0);
  data.Add(std::array<int32_t, 2>{3, 4}, 2);
  EXPECT_EQ(data.size(), 2u);
  EXPECT_EQ(data.row(1)[0], 3);
  EXPECT_EQ(data.label(1), 2);
  EXPECT_EQ(data.NumClasses(), 3);
}

TEST(DatasetTest, SplitPartitionsAllRows) {
  Rng rng(1);
  Dataset data = ThresholdDataset(100, rng);
  auto [train, test] = data.Split(0.25, rng);
  EXPECT_EQ(train.size() + test.size(), 100u);
  EXPECT_EQ(test.size(), 25u);
  EXPECT_EQ(train.num_features(), 3u);
}

// --- Decision tree ---

TEST(DecisionTreeTest, LearnsThresholdRulePerfectly) {
  Rng rng(2);
  const Dataset data = ThresholdDataset(400, rng);
  Result<DecisionTree> tree = DecisionTree::Train(data);
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_GE(tree->Evaluate(data), 0.99);
  EXPECT_EQ(tree->Predict(std::array<int32_t, 3>{100, 0, 0}), 1);
  EXPECT_EQ(tree->Predict(std::array<int32_t, 3>{0, 100, 100}), 0);
}

TEST(DecisionTreeTest, LearnsXorWithDepth) {
  Rng rng(3);
  const Dataset data = XorDataset(500, rng);
  Result<DecisionTree> tree = DecisionTree::Train(data);
  ASSERT_TRUE(tree.ok());
  EXPECT_GE(tree->Evaluate(data), 0.95);
  EXPECT_GE(tree->depth(), 2u);  // xor needs at least two levels
}

TEST(DecisionTreeTest, PureDatasetYieldsSingleLeaf) {
  Dataset data(1);
  for (int i = 0; i < 10; ++i) {
    data.Add(std::array<int32_t, 1>{i}, 4);
  }
  Result<DecisionTree> tree = DecisionTree::Train(data);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->node_count(), 1u);
  EXPECT_EQ(tree->Predict(std::array<int32_t, 1>{999}), 4);
}

TEST(DecisionTreeTest, MaxDepthRespected) {
  Rng rng(4);
  const Dataset data = XorDataset(500, rng);
  DecisionTreeConfig config;
  config.max_depth = 1;
  Result<DecisionTree> tree = DecisionTree::Train(data, config);
  ASSERT_TRUE(tree.ok());
  EXPECT_LE(tree->depth(), 1u);
}

TEST(DecisionTreeTest, EmptyDatasetRejected) {
  Dataset data(2);
  EXPECT_FALSE(DecisionTree::Train(data).ok());
}

TEST(DecisionTreeTest, ImportanceConcentratesOnInformativeFeature) {
  Rng rng(5);
  const Dataset data = ThresholdDataset(400, rng);
  Result<DecisionTree> tree = DecisionTree::Train(data);
  ASSERT_TRUE(tree.ok());
  const std::vector<double> importance = tree->FeatureImportance();
  ASSERT_EQ(importance.size(), 3u);
  EXPECT_GT(importance[0], 0.9);
  double total = 0;
  for (double v : importance) {
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(DecisionTreeTest, CostReflectsStructure) {
  Rng rng(6);
  const Dataset data = XorDataset(500, rng);
  Result<DecisionTree> tree = DecisionTree::Train(data);
  ASSERT_TRUE(tree.ok());
  const ModelCost cost = tree->Cost();
  EXPECT_EQ(cost.comparisons, tree->depth());
  EXPECT_GT(cost.param_bytes, 0u);
  EXPECT_EQ(cost.macs, 0u);
  EXPECT_EQ(tree->kind(), "decision_tree");
}

TEST(DecisionTreeTest, ShortFeatureVectorReadsZeroes) {
  Rng rng(7);
  const Dataset data = ThresholdDataset(200, rng);
  Result<DecisionTree> tree = DecisionTree::Train(data);
  ASSERT_TRUE(tree.ok());
  // Predicting with fewer features than trained must not crash; missing
  // features read as zero.
  const std::array<int32_t, 1> short_row{80};
  EXPECT_EQ(tree->Predict(short_row), 1);
}

// --- MLP ---

TEST(MlpTest, LearnsLinearlySeparableRule) {
  Rng rng(8);
  const Dataset data = ThresholdDataset(400, rng);
  Result<Mlp> mlp = Mlp::Train(data);
  ASSERT_TRUE(mlp.ok()) << mlp.status();
  EXPECT_GE(mlp->Evaluate(data), 0.97);
  EXPECT_EQ(mlp->num_classes(), 2);
  EXPECT_EQ(mlp->num_features(), 3u);
}

TEST(MlpTest, LearnsXor) {
  Rng rng(9);
  const Dataset data = XorDataset(600, rng);
  MlpConfig config;
  config.hidden_sizes = {16};
  config.epochs = 120;
  config.learning_rate = 0.1f;
  Result<Mlp> mlp = Mlp::Train(data, config);
  ASSERT_TRUE(mlp.ok());
  EXPECT_GE(mlp->Evaluate(data), 0.9);
}

TEST(MlpTest, RejectsEmptyAndSingleClass) {
  Dataset empty(2);
  EXPECT_FALSE(Mlp::Train(empty).ok());
  Dataset single(2);
  single.Add(std::array<int32_t, 2>{1, 2}, 0);
  EXPECT_FALSE(Mlp::Train(single).ok());
}

TEST(MlpTest, DeterministicGivenSeed) {
  Rng rng(10);
  const Dataset data = ThresholdDataset(200, rng);
  MlpConfig config;
  config.seed = 77;
  Result<Mlp> a = Mlp::Train(data, config);
  Result<Mlp> b = Mlp::Train(data, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(a->PredictClass(data.row(i)), b->PredictClass(data.row(i)));
  }
}

// --- Quantization ---

TEST(QuantizedMlpTest, AgreesWithFloatTeacher) {
  Rng rng(11);
  const Dataset data = ThresholdDataset(400, rng);
  Result<Mlp> mlp = Mlp::Train(data);
  ASSERT_TRUE(mlp.ok());
  Result<QuantizedMlp> quantized = QuantizedMlp::FromMlp(*mlp);
  ASSERT_TRUE(quantized.ok()) << quantized.status();
  size_t agree = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (quantized->PredictRaw(data.row(i)) == mlp->PredictClass(data.row(i))) {
      ++agree;
    }
  }
  EXPECT_GE(static_cast<double>(agree) / static_cast<double>(data.size()), 0.97);
}

class QuantizationAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QuantizationAgreementTest, HighAgreementAcrossRandomTasks) {
  Rng rng(GetParam());
  const Dataset data = XorDataset(300, rng);
  MlpConfig config;
  config.hidden_sizes = {12};
  config.epochs = 60;
  config.seed = GetParam();
  Result<Mlp> mlp = Mlp::Train(data, config);
  ASSERT_TRUE(mlp.ok());
  Result<QuantizedMlp> quantized = QuantizedMlp::FromMlp(*mlp);
  ASSERT_TRUE(quantized.ok());
  size_t agree = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (quantized->PredictRaw(data.row(i)) == mlp->PredictClass(data.row(i))) {
      ++agree;
    }
  }
  EXPECT_GE(static_cast<double>(agree) / static_cast<double>(data.size()), 0.95)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantizationAgreementTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(QuantizedMlpTest, CostAccountsAllLayers) {
  Rng rng(12);
  const Dataset data = ThresholdDataset(200, rng);
  MlpConfig config;
  config.hidden_sizes = {8, 4};
  Result<Mlp> mlp = Mlp::Train(data, config);
  ASSERT_TRUE(mlp.ok());
  Result<QuantizedMlp> quantized = QuantizedMlp::FromMlp(*mlp);
  ASSERT_TRUE(quantized.ok());
  const ModelCost cost = quantized->Cost();
  EXPECT_EQ(cost.macs, 3u * 8 + 8 * 4 + 4 * 2);
  EXPECT_EQ(cost.depth, 3u);
  EXPECT_EQ(quantized->kind(), "quantized_mlp");
}

TEST(QuantizedMlpTest, EmptyModelPredictsZero) {
  QuantizedMlp empty;
  EXPECT_EQ(empty.Predict(std::array<int32_t, 4>{1, 2, 3, 4}), 0);
}

TEST(RawToQ16Test, ConvertsAndSaturates) {
  EXPECT_EQ(RawToQ16(1), 1 << 16);
  EXPECT_EQ(RawToQ16(-2), -(2 << 16));
  EXPECT_EQ(RawToQ16(1 << 20), std::numeric_limits<int32_t>::max());
  EXPECT_EQ(RawToQ16(-(1 << 20)), std::numeric_limits<int32_t>::min());
}

// --- Integer linear ---

TEST(IntegerLinearTest, LearnsSeparableRule) {
  Rng rng(13);
  Dataset data(2);
  for (int i = 0; i < 400; ++i) {
    const std::array<int32_t, 2> row{static_cast<int32_t>(rng.NextInt(-50, 50)),
                                     static_cast<int32_t>(rng.NextInt(-50, 50))};
    data.Add(row, 2 * row[0] + row[1] > 5 ? 1 : 0);
  }
  Result<IntegerLinear> model = IntegerLinear::Train(data);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_GE(model->Evaluate(data), 0.95);
  EXPECT_EQ(model->kind(), "integer_linear");
  EXPECT_EQ(model->Cost().macs, 2u);
}

TEST(IntegerLinearTest, RejectsNonBinaryLabels) {
  Dataset data(1);
  data.Add(std::array<int32_t, 1>{1}, 0);
  data.Add(std::array<int32_t, 1>{2}, 2);
  EXPECT_FALSE(IntegerLinear::Train(data).ok());
}

TEST(IntegerLinearTest, DecisionValueSignMatchesPrediction) {
  Rng rng(14);
  Dataset data(1);
  for (int i = 0; i < 200; ++i) {
    const std::array<int32_t, 1> row{static_cast<int32_t>(rng.NextInt(-100, 100))};
    data.Add(row, row[0] > 0 ? 1 : 0);
  }
  Result<IntegerLinear> model = IntegerLinear::Train(data);
  ASSERT_TRUE(model.ok());
  for (int32_t x : {-80, -10, 10, 80}) {
    const std::array<int32_t, 1> row{x};
    EXPECT_EQ(model->Predict(row), model->DecisionValue(row) >= 0 ? 1 : 0);
  }
}

// --- Distillation ---

TEST(DistillTest, StudentReproducesTeacher) {
  Rng rng(15);
  const Dataset data = XorDataset(600, rng);
  MlpConfig config;
  config.hidden_sizes = {16};
  config.epochs = 120;
  config.learning_rate = 0.1f;
  Result<Mlp> teacher = Mlp::Train(data, config);
  ASSERT_TRUE(teacher.ok());

  const auto teacher_fn = [&](std::span<const int32_t> row) {
    return static_cast<int64_t>(teacher->PredictClass(row));
  };
  Result<DecisionTree> student = DistillToTree(teacher_fn, data);
  ASSERT_TRUE(student.ok());
  EXPECT_GE(DistillationFidelity(teacher_fn, *student, data), 0.95);
  // The student must be cheaper than the quantized teacher.
  Result<QuantizedMlp> quantized = QuantizedMlp::FromMlp(*teacher);
  ASSERT_TRUE(quantized.ok());
  EXPECT_LT(student->Cost().WorkUnits(), quantized->Cost().WorkUnits());
}

TEST(DistillTest, EmptyTransferSetRejected) {
  Dataset empty(2);
  const auto teacher = [](std::span<const int32_t>) -> int64_t { return 0; };
  EXPECT_FALSE(DistillToTree(teacher, empty).ok());
}

// --- Feature importance ---

TEST(FeatureImportanceTest, PermutationFindsInformativeFeature) {
  Rng rng(16);
  const Dataset data = ThresholdDataset(300, rng);
  Result<DecisionTree> tree = DecisionTree::Train(data);
  ASSERT_TRUE(tree.ok());
  Rng perm_rng(17);
  const std::vector<double> importance = PermutationImportance(
      [&](std::span<const int32_t> row) { return tree->Predict(row); }, data, perm_rng);
  const std::vector<size_t> ranked = RankFeatures(importance);
  EXPECT_EQ(ranked[0], 0u);
  EXPECT_GT(importance[0], importance[1] + 0.1);
  EXPECT_GT(importance[0], importance[2] + 0.1);
}

TEST(FeatureImportanceTest, SelectTopProjectsColumns) {
  Rng rng(18);
  const Dataset data = ThresholdDataset(100, rng);
  const std::vector<double> importance{0.1, 0.9, 0.5};
  const FeatureSelection selection = SelectTopFeatures(data, importance, 2);
  ASSERT_EQ(selection.selected.size(), 2u);
  EXPECT_EQ(selection.selected[0], 1u);
  EXPECT_EQ(selection.selected[1], 2u);
  EXPECT_EQ(selection.projected.num_features(), 2u);
  EXPECT_EQ(selection.projected.size(), data.size());
  EXPECT_EQ(selection.projected.row(0)[0], data.row(0)[1]);
}

TEST(FeatureImportanceTest, ProjectRowFollowsSelection) {
  const std::vector<size_t> selected{2, 0};
  const std::array<int32_t, 3> row{10, 20, 30};
  const std::vector<int32_t> projected = ProjectRow(row, selected);
  EXPECT_EQ(projected, (std::vector<int32_t>{30, 10}));
}

// --- Online training ---

TEST(OnlineTest, ModelSlotSwapsAtomicallyWithVersioning) {
  ModelSlot slot;
  EXPECT_FALSE(slot.HasModel());
  EXPECT_EQ(slot.version(), 0u);
  slot.Set(std::make_shared<QuantizedMlp>());
  EXPECT_TRUE(slot.HasModel());
  EXPECT_EQ(slot.version(), 1u);
  const ModelSlot::VersionedModel snapshot = slot.Snapshot();
  EXPECT_NE(snapshot.model, nullptr);
  EXPECT_EQ(snapshot.version, 1u);  // model and version taken as one pair
  slot.Set(nullptr);
  EXPECT_NE(snapshot.model, nullptr);  // reader snapshot survives the swap
  EXPECT_EQ(slot.version(), 2u);
  EXPECT_EQ(slot.Snapshot().model, nullptr);
  EXPECT_EQ(slot.Snapshot().version, 2u);
}

TEST(OnlineTest, WindowedTrainerTrainsPerWindow) {
  ModelSlot slot;
  WindowedTrainerConfig config;
  config.window_size = 50;
  config.min_train_samples = 10;
  WindowedTreeTrainer trainer(1, &slot, config);
  Rng rng(19);
  for (int i = 0; i < 120; ++i) {
    const std::array<int32_t, 1> row{static_cast<int32_t>(rng.NextInt(0, 100))};
    trainer.Observe(row, row[0] > 50 ? 1 : 0);
  }
  EXPECT_EQ(trainer.windows_trained(), 2u);
  EXPECT_TRUE(slot.HasModel());
  EXPECT_EQ(trainer.pending_samples(), 20u);
  EXPECT_TRUE(trainer.Flush());
  EXPECT_EQ(trainer.windows_trained(), 3u);
  const ModelPtr model = slot.Get();
  EXPECT_EQ(model->Predict(std::array<int32_t, 1>{90}), 1);
}

TEST(OnlineTest, TinyWindowSkipsTraining) {
  ModelSlot slot;
  WindowedTrainerConfig config;
  config.window_size = 50;
  config.min_train_samples = 10;
  WindowedTreeTrainer trainer(1, &slot, config);
  trainer.Observe(std::array<int32_t, 1>{1}, 0);
  EXPECT_FALSE(trainer.Flush());
  EXPECT_FALSE(slot.HasModel());
}

// --- NAS ---

TEST(NasTest, FindsArchitectureUnderBudget) {
  Rng rng(20);
  const Dataset data = XorDataset(300, rng);
  NasConfig config;
  config.trials = 6;
  config.search_epochs = 10;
  config.final_epochs = 30;
  config.work_unit_budget = 1 << 13;
  Result<NasResult> result = RandomSearchNas(data, config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->hidden_sizes.empty());
  EXPECT_LE(result->work_units, config.work_unit_budget);
  EXPECT_GT(result->validation_accuracy, 0.5);
  EXPECT_GT(result->trials_evaluated, 0u);
}

TEST(NasTest, ImpossibleBudgetFails) {
  Rng rng(21);
  const Dataset data = XorDataset(200, rng);
  NasConfig config;
  config.trials = 5;
  config.work_unit_budget = 1;  // nothing fits
  Result<NasResult> result = RandomSearchNas(data, config);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(NasTest, TinyDatasetRejected) {
  Dataset data(1);
  data.Add(std::array<int32_t, 1>{1}, 0);
  EXPECT_FALSE(RandomSearchNas(data).ok());
}

// --- Registries ---

TEST(ModelRegistryTest, SlotLifecycle) {
  ModelRegistry registry;
  const int64_t slot = registry.AddSlot();
  EXPECT_EQ(slot, 0);
  EXPECT_EQ(registry.Get(slot), nullptr);
  ASSERT_TRUE(registry.Install(slot, std::make_shared<QuantizedMlp>()).ok());
  EXPECT_NE(registry.Get(slot), nullptr);
  EXPECT_FALSE(registry.Install(5, nullptr).ok());
  EXPECT_EQ(registry.Get(99), nullptr);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(TensorRegistryTest, AddAndFetch) {
  TensorRegistry registry;
  FixedMatrix m(2, 3);
  m.at(1, 2) = 42;
  const int64_t id = registry.Add(std::move(m));
  const FixedMatrix* fetched = registry.Get(id);
  ASSERT_NE(fetched, nullptr);
  EXPECT_EQ(fetched->at(1, 2), 42);
  EXPECT_EQ(registry.Get(id + 1), nullptr);
  EXPECT_EQ(registry.Get(-1), nullptr);

  const std::array<int32_t, 3> bias{1, 2, 3};
  const int64_t bias_id = registry.AddVector(bias);
  const FixedMatrix* bias_tensor = registry.Get(bias_id);
  ASSERT_NE(bias_tensor, nullptr);
  EXPECT_EQ(bias_tensor->rows(), 3u);
  EXPECT_EQ(bias_tensor->cols(), 1u);
  EXPECT_EQ(bias_tensor->at(2, 0), 3);
}

TEST(FixedMatrixTest, MatVecQ16) {
  FixedMatrix m(2, 2);
  m.at(0, 0) = Fixed32::FromDouble(2.0).raw();
  m.at(0, 1) = Fixed32::FromDouble(0.5).raw();
  m.at(1, 0) = Fixed32::FromDouble(-1.0).raw();
  m.at(1, 1) = Fixed32::FromDouble(1.0).raw();
  const std::array<int32_t, 2> x{Fixed32::FromDouble(4.0).raw(),
                                 Fixed32::FromDouble(2.0).raw()};
  std::array<int32_t, 2> y{};
  m.MatVec(x, y);
  EXPECT_NEAR(Fixed32::FromRaw(y[0]).ToDouble(), 9.0, 1e-3);
  EXPECT_NEAR(Fixed32::FromRaw(y[1]).ToDouble(), -2.0, 1e-3);
}

}  // namespace
}  // namespace rkd
