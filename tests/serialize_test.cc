// Tests for the bytecode and model wire formats: round trips, validation of
// hostile/truncated blobs, and behavioural equivalence after a round trip.
#include <array>
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/bytecode/assembler.h"
#include "src/bytecode/serialize.h"
#include "src/ml/decision_tree.h"
#include "src/ml/forest.h"
#include "src/ml/linear.h"
#include "src/ml/mlp.h"
#include "src/ml/quantize.h"
#include "src/ml/serialize.h"
#include "src/vm/vm.h"

namespace rkd {
namespace {

// --- Bytecode ---

BytecodeProgram SampleProgram() {
  Assembler a("sample", HookKind::kMemPrefetch);
  a.DeclareMaps(2).DeclareModels(1).DeclareTensors(3).DeclareTables(1);
  auto skip = a.NewLabel();
  a.MovImm(6, -12345678901234ll);
  a.JltImm(1, 50, skip);
  a.Add(6, 1);
  a.Bind(skip);
  a.Mov(0, 6);
  a.Exit();
  return std::move(a.Build()).value();
}

TEST(BytecodeSerializeTest, RoundTripPreservesEverything) {
  const BytecodeProgram original = SampleProgram();
  const std::vector<uint8_t> bytes = SerializeProgram(original);
  Result<BytecodeProgram> restored = DeserializeProgram(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->name, original.name);
  EXPECT_EQ(restored->hook_kind, original.hook_kind);
  EXPECT_EQ(restored->num_maps, original.num_maps);
  EXPECT_EQ(restored->num_models, original.num_models);
  EXPECT_EQ(restored->num_tensors, original.num_tensors);
  EXPECT_EQ(restored->num_tables, original.num_tables);
  ASSERT_EQ(restored->code.size(), original.code.size());
  for (size_t i = 0; i < original.code.size(); ++i) {
    EXPECT_EQ(restored->code[i], original.code[i]) << "instruction " << i;
  }
}

TEST(BytecodeSerializeTest, RoundTrippedProgramExecutesIdentically) {
  const BytecodeProgram original = SampleProgram();
  Result<BytecodeProgram> restored = DeserializeProgram(SerializeProgram(original));
  ASSERT_TRUE(restored.ok());
  const Interpreter interp(VmEnv{});
  for (int64_t key : {10, 100}) {
    const std::array<int64_t, 1> args{key};
    EXPECT_EQ(*interp.Run(original, args), *interp.Run(*restored, args));
  }
}

TEST(BytecodeSerializeTest, RejectsWrongMagicAndVersion) {
  std::vector<uint8_t> bytes = SerializeProgram(SampleProgram());
  std::vector<uint8_t> corrupt = bytes;
  corrupt[0] ^= 0xff;
  EXPECT_FALSE(DeserializeProgram(corrupt).ok());
  corrupt = bytes;
  corrupt[4] = 99;  // version
  EXPECT_FALSE(DeserializeProgram(corrupt).ok());
}

TEST(BytecodeSerializeTest, RejectsTruncationAtEveryPrefix) {
  const std::vector<uint8_t> bytes = SerializeProgram(SampleProgram());
  for (size_t length = 0; length < bytes.size(); ++length) {
    const std::span<const uint8_t> prefix(bytes.data(), length);
    EXPECT_FALSE(DeserializeProgram(prefix).ok()) << "prefix " << length;
  }
}

TEST(BytecodeSerializeTest, RejectsTrailingGarbage) {
  std::vector<uint8_t> bytes = SerializeProgram(SampleProgram());
  bytes.push_back(0);
  EXPECT_FALSE(DeserializeProgram(bytes).ok());
}

TEST(BytecodeSerializeTest, RejectsInvalidOpcode) {
  std::vector<uint8_t> bytes = SerializeProgram(SampleProgram());
  // The opcode of the first instruction starts right after the fixed header:
  // magic(4) version(4) name(4+6) hook(4) + 4 resource u32s + count u64.
  const size_t header = 4 + 4 + 4 + 6 + 4 + 16 + 8;
  bytes[header] = 0xff;
  bytes[header + 1] = 0xff;
  EXPECT_FALSE(DeserializeProgram(bytes).ok());
}

// --- Models ---

Dataset ThresholdData(Rng& rng, size_t n = 300) {
  Dataset data(3);
  for (size_t i = 0; i < n; ++i) {
    const std::array<int32_t, 3> row{static_cast<int32_t>(rng.NextInt(0, 100)),
                                     static_cast<int32_t>(rng.NextInt(0, 100)),
                                     static_cast<int32_t>(rng.NextInt(0, 100))};
    data.Add(row, row[0] + row[1] > 100 ? 1 : 0);
  }
  return data;
}

TEST(ModelSerializeTest, DecisionTreeRoundTrip) {
  Rng rng(1);
  const Dataset data = ThresholdData(rng);
  const DecisionTree tree = std::move(DecisionTree::Train(data)).value();
  Result<std::vector<uint8_t>> bytes = SerializeModel(tree);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  Result<ModelPtr> restored = DeserializeModel(*bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ((*restored)->kind(), "decision_tree");
  EXPECT_EQ((*restored)->num_features(), tree.num_features());
  EXPECT_EQ((*restored)->Cost().comparisons, tree.Cost().comparisons);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ((*restored)->Predict(data.row(i)), tree.Predict(data.row(i)));
  }
}

TEST(ModelSerializeTest, QuantizedMlpRoundTrip) {
  Rng rng(2);
  const Dataset data = ThresholdData(rng);
  const Mlp mlp = std::move(Mlp::Train(data)).value();
  const QuantizedMlp quantized = std::move(QuantizedMlp::FromMlp(mlp)).value();
  Result<std::vector<uint8_t>> bytes = SerializeModel(quantized);
  ASSERT_TRUE(bytes.ok());
  Result<ModelPtr> restored = DeserializeModel(*bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ((*restored)->kind(), "quantized_mlp");
  EXPECT_EQ((*restored)->Cost().macs, quantized.Cost().macs);
  for (size_t i = 0; i < data.size(); ++i) {
    std::vector<int32_t> q16(data.num_features());
    for (size_t f = 0; f < q16.size(); ++f) {
      q16[f] = RawToQ16(data.row(i)[f]);
    }
    EXPECT_EQ((*restored)->Predict(q16), quantized.Predict(q16));
  }
}

TEST(ModelSerializeTest, IntegerLinearRoundTrip) {
  Rng rng(3);
  Dataset data(2);
  for (int i = 0; i < 200; ++i) {
    const std::array<int32_t, 2> row{static_cast<int32_t>(rng.NextInt(-50, 50)),
                                     static_cast<int32_t>(rng.NextInt(-50, 50))};
    data.Add(row, row[0] - row[1] > 0 ? 1 : 0);
  }
  const IntegerLinear model = std::move(IntegerLinear::Train(data)).value();
  Result<std::vector<uint8_t>> bytes = SerializeModel(model);
  ASSERT_TRUE(bytes.ok());
  Result<ModelPtr> restored = DeserializeModel(*bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->kind(), "integer_linear");
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ((*restored)->Predict(data.row(i)), model.Predict(data.row(i)));
  }
}

TEST(ModelSerializeTest, RandomForestRoundTrip) {
  Rng rng(7);
  const Dataset data = ThresholdData(rng);
  ForestConfig config;
  config.num_trees = 5;
  config.seed = 7;
  const RandomForest forest = std::move(RandomForest::Train(data, config)).value();
  Result<std::vector<uint8_t>> bytes = SerializeModel(forest);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  Result<ModelPtr> restored = DeserializeModel(*bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ((*restored)->kind(), "random_forest");
  EXPECT_EQ((*restored)->num_features(), forest.num_features());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ((*restored)->Predict(data.row(i)), forest.Predict(data.row(i)));
  }
}

TEST(ModelSerializeTest, QuantizedMlpRawAdapterRoundTrip) {
  Rng rng(8);
  const Dataset data = ThresholdData(rng);
  const Mlp mlp = std::move(Mlp::Train(data)).value();
  QuantizedMlp quantized = std::move(QuantizedMlp::FromMlp(mlp)).value();
  const QuantizedMlpRawAdapter adapter(std::move(quantized));
  Result<std::vector<uint8_t>> bytes = SerializeModel(adapter);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  Result<ModelPtr> restored = DeserializeModel(*bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();
  // The adapter tag must restore as an adapter: its raw-int Predict is the
  // contract (the net datapath's lanes are not Q16).
  EXPECT_EQ((*restored)->kind(), "quantized_mlp_raw");
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ((*restored)->Predict(data.row(i)), adapter.Predict(data.row(i)));
  }
}

TEST(ModelSerializeTest, EmptyForestBlobRejected) {
  Rng rng(9);
  const Dataset data = ThresholdData(rng);
  ForestConfig config;
  config.num_trees = 2;
  const RandomForest forest = std::move(RandomForest::Train(data, config)).value();
  std::vector<uint8_t> bytes = std::move(SerializeModel(forest)).value();
  // Corrupt the tree count (first field after magic/version/tag) to zero.
  for (size_t i = 12; i < 20; ++i) bytes[i] = 0;
  EXPECT_FALSE(DeserializeModel(bytes).ok());
}

TEST(ModelSerializeTest, RejectsTruncatedModelBlobs) {
  Rng rng(4);
  const Dataset data = ThresholdData(rng, 100);
  const DecisionTree tree = std::move(DecisionTree::Train(data)).value();
  const std::vector<uint8_t> bytes = std::move(SerializeModel(tree)).value();
  for (size_t length = 0; length < bytes.size(); length += 3) {
    EXPECT_FALSE(DeserializeModel(std::span<const uint8_t>(bytes.data(), length)).ok());
  }
}

TEST(ModelSerializeTest, RejectsHostileTreeStructure) {
  // A hand-built blob whose node points backward (cycle): the FromParts
  // validation must refuse it.
  std::vector<DecisionTree::Node> nodes(2);
  nodes[0].feature = 0;
  nodes[0].threshold = 5;
  nodes[0].left = 1;
  nodes[0].right = 0;  // self-cycle
  nodes[1].feature = -1;
  Result<DecisionTree> tree = DecisionTree::FromParts(1, 1, nodes);
  EXPECT_FALSE(tree.ok());
}

TEST(ModelSerializeTest, RejectsInconsistentMlpLayers) {
  std::vector<QuantizedMlp::QuantLayer> layers(2);
  layers[0].out_dim = 4;
  layers[0].in_dim = 2;
  layers[0].weights.resize(8);
  layers[0].biases.resize(4);
  layers[1].out_dim = 2;
  layers[1].in_dim = 5;  // mismatch: previous out_dim is 4
  layers[1].weights.resize(10);
  layers[1].biases.resize(2);
  EXPECT_FALSE(QuantizedMlp::FromLayers(layers).ok());
}

TEST(ModelSerializeTest, UnknownTagRejected) {
  std::vector<uint8_t> bytes;
  const uint32_t magic = kModelMagic;
  const uint32_t version = kModelVersion;
  const uint32_t tag = 99;
  bytes.resize(12);
  memcpy(bytes.data(), &magic, 4);
  memcpy(bytes.data() + 4, &version, 4);
  memcpy(bytes.data() + 8, &tag, 4);
  EXPECT_FALSE(DeserializeModel(bytes).ok());
}

}  // namespace
}  // namespace rkd
