// Tests for the policy guardian: circuit-breaker state machine (trip,
// backoff, probation, quarantine) and canary rollout promotion/rollback.
// Every scenario is deterministic: faults come from failpoints, time is
// guardian Tick() calls, and canary routing is by fire sequence number —
// no sleeps, no wall-clock dependence.
#include <gtest/gtest.h>

#include "src/base/failpoints.h"
#include "src/bytecode/assembler.h"
#include "src/rmt/control_plane.h"
#include "src/rmt/guardian.h"

namespace rkd {
namespace {

// Pure-ALU action: returns key + addend. Never touches a failpoint site.
RmtProgramSpec AluSpec(const std::string& name, const std::string& hook_name,
                       int64_t addend) {
  Assembler a("add_imm", HookKind::kGeneric);
  a.Mov(0, 1).AddImm(0, addend).Exit();
  RmtProgramSpec spec;
  spec.name = name;
  RmtTableSpec table;
  table.name = "tab";
  table.hook_point = hook_name;
  table.actions.push_back(std::move(a.Build()).value());
  table.default_action = 0;
  spec.tables.push_back(std::move(table));
  return spec;
}

// Helper-calling action: runs through the "vm.helper" failpoint site, then
// returns key + addend. Arming that failpoint makes exactly this program
// fault while pure-ALU programs on the same hook stay healthy.
RmtProgramSpec HelperSpec(const std::string& name, const std::string& hook_name,
                          int64_t addend) {
  Assembler a("timed_add", HookKind::kGeneric);
  a.Call(HelperId::kGetTime);
  a.Mov(0, 1).AddImm(0, addend).Exit();
  RmtProgramSpec spec;
  spec.name = name;
  RmtTableSpec table;
  table.name = "tab";
  table.hook_point = hook_name;
  table.actions.push_back(std::move(a.Build()).value());
  table.default_action = 0;
  spec.tables.push_back(std::move(table));
  return spec;
}

class GuardianTest : public ::testing::Test {
 protected:
  GuardianTest() : cp_(&hooks_), guardian_(&cp_) {
    hook_ = *hooks_.Register("generic.hook", HookKind::kGeneric);
  }

  void Fire(int n, uint64_t key = 7) {
    for (int i = 0; i < n; ++i) {
      hooks_.Fire(hook_, key);
    }
  }

  HookRegistry hooks_;
  ControlPlane cp_;
  PolicyGuardian guardian_;
  HookId hook_;
};

BreakerConfig TightBreaker() {
  BreakerConfig config;
  config.window_execs = 8;
  config.max_error_rate = 0.1;
  config.probation_execs = 4;
  config.backoff_initial_ticks = 1;
  config.backoff_multiplier = 2.0;
  config.backoff_max_ticks = 64;
  config.max_trips = 3;
  return config;
}

// --- Guard admission ---

TEST_F(GuardianTest, GuardValidatesItsTarget) {
  EXPECT_FALSE(guardian_.Guard(999).ok());  // no such program
  Result<ControlPlane::ProgramHandle> handle =
      cp_.Install(AluSpec("plain", "generic.hook", 100));
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(guardian_.Guard(*handle, TightBreaker()).ok());
  EXPECT_TRUE(guardian_.IsGuarded(*handle));
  EXPECT_FALSE(guardian_.Guard(*handle).ok());  // double guard
  ASSERT_TRUE(guardian_.Unguard(*handle).ok());
  EXPECT_FALSE(guardian_.Unguard(*handle).ok());
  BreakerConfig bad;
  bad.window_execs = 0;
  EXPECT_FALSE(guardian_.Guard(*handle, bad).ok());
}

TEST_F(GuardianTest, HealthyProgramStaysHealthyAcrossTicks) {
  Result<ControlPlane::ProgramHandle> handle =
      cp_.Install(AluSpec("plain", "generic.hook", 100));
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(guardian_.Guard(*handle, TightBreaker()).ok());
  for (int round = 0; round < 5; ++round) {
    Fire(8);
    const PolicyGuardian::TickSummary summary = guardian_.Tick();
    EXPECT_TRUE(summary.transitions.empty());
  }
  EXPECT_EQ(guardian_.StateOf(*handle), GuardState::kHealthy);
  EXPECT_EQ(guardian_.TripsOf(*handle), 0u);
  EXPECT_EQ(hooks_.Fire(hook_, 7), 107);
}

// --- Acceptance (a): an always-faulting program is quarantined within the
// configured window and the hook reverts to the stock heuristic. ---

TEST_F(GuardianTest, AlwaysFaultingProgramIsQuarantined) {
  Result<ControlPlane::ProgramHandle> handle =
      cp_.Install(HelperSpec("flaky", "generic.hook", 100));
  ASSERT_TRUE(handle.ok()) << handle.status();
  ASSERT_TRUE(guardian_.Guard(*handle, TightBreaker()).ok());

  FailpointSpec fault;
  fault.mode = FailpointMode::kAlways;
  fault.force_error = true;
  ScopedFailpoint guard("vm.helper", fault);

  // Window fills with 100% errors -> trip 1 (suspended, backoff 1 tick).
  Fire(8);
  PolicyGuardian::TickSummary summary = guardian_.Tick();
  ASSERT_EQ(summary.transitions.size(), 1u);
  EXPECT_EQ(summary.transitions[0].to, GuardState::kTripped);
  EXPECT_NE(summary.transitions[0].reason.find("error rate"), std::string::npos);
  EXPECT_EQ(guardian_.StateOf(*handle), GuardState::kTripped);
  // Suspended: the hook falls back to stock behaviour, no action runs.
  EXPECT_EQ(hooks_.Fire(hook_, 7), kHookFallback);

  // Backoff (1 tick) expires -> probation; still faulting -> trip 2.
  guardian_.Tick();
  ASSERT_EQ(guardian_.StateOf(*handle), GuardState::kProbation);
  Fire(4);
  guardian_.Tick();
  ASSERT_EQ(guardian_.StateOf(*handle), GuardState::kTripped);
  EXPECT_EQ(guardian_.TripsOf(*handle), 2u);

  // Backoff doubled to 2 ticks: one tick is not enough to re-admit.
  guardian_.Tick();
  EXPECT_EQ(guardian_.StateOf(*handle), GuardState::kTripped);
  guardian_.Tick();
  ASSERT_EQ(guardian_.StateOf(*handle), GuardState::kProbation);

  // Third faulting probation exhausts the trip budget -> quarantined.
  Fire(4);
  summary = guardian_.Tick();
  ASSERT_EQ(summary.transitions.size(), 1u);
  EXPECT_EQ(summary.transitions[0].to, GuardState::kQuarantined);
  EXPECT_NE(summary.transitions[0].reason.find("quarantined"), std::string::npos);
  EXPECT_EQ(guardian_.StateOf(*handle), GuardState::kQuarantined);
  EXPECT_EQ(guardian_.TripsOf(*handle), 3u);
  EXPECT_EQ(hooks_.Fire(hook_, 7), kHookFallback);

  // Quarantine is terminal: further ticks change nothing.
  guardian_.Tick();
  guardian_.Tick();
  EXPECT_EQ(guardian_.StateOf(*handle), GuardState::kQuarantined);

  TelemetryRegistry& telemetry = cp_.telemetry();
  EXPECT_EQ(telemetry.GetCounter("rkd.guard.trips")->value(), 3u);
  EXPECT_EQ(telemetry.GetCounter("rkd.guard.quarantines")->value(), 1u);
  EXPECT_EQ(telemetry.GetGauge("rkd.guard.state.flaky")->value(),
            static_cast<double>(GuardState::kQuarantined));
}

// --- Acceptance (b): probation with backoff re-admits a program whose
// fault was transient. ---

TEST_F(GuardianTest, RecoveredProgramIsReadmittedThroughProbation) {
  Result<ControlPlane::ProgramHandle> handle =
      cp_.Install(HelperSpec("transient", "generic.hook", 100));
  ASSERT_TRUE(handle.ok()) << handle.status();
  ASSERT_TRUE(guardian_.Guard(*handle, TightBreaker()).ok());

  {
    // A transient fault: exactly the first 8 executions fail, then clears.
    FailpointSpec fault;
    fault.mode = FailpointMode::kFirstN;
    fault.n = 8;
    fault.force_error = true;
    ScopedFailpoint guard("vm.helper", fault);
    Fire(8);
    guardian_.Tick();
  }
  ASSERT_EQ(guardian_.StateOf(*handle), GuardState::kTripped);
  EXPECT_EQ(guardian_.TripsOf(*handle), 1u);

  // Backoff expires -> probation (half-open: tables re-attached).
  PolicyGuardian::TickSummary summary = guardian_.Tick();
  ASSERT_EQ(summary.transitions.size(), 1u);
  EXPECT_EQ(summary.transitions[0].to, GuardState::kProbation);
  EXPECT_EQ(hooks_.Fire(hook_, 7), 107);  // fault cleared; action runs again

  // A clean probation window fully re-admits the program.
  Fire(3);  // 1 fire above + 3 = probation_execs
  summary = guardian_.Tick();
  ASSERT_EQ(summary.transitions.size(), 1u);
  EXPECT_EQ(summary.transitions[0].from, GuardState::kProbation);
  EXPECT_EQ(summary.transitions[0].to, GuardState::kHealthy);
  EXPECT_EQ(guardian_.StateOf(*handle), GuardState::kHealthy);
  EXPECT_EQ(cp_.telemetry().GetCounter("rkd.guard.recoveries")->value(), 1u);

  // Fully healthy again: fires execute and later windows stay clean.
  Fire(8);
  EXPECT_TRUE(guardian_.Tick().transitions.empty());
  EXPECT_EQ(guardian_.StateOf(*handle), GuardState::kHealthy);
  EXPECT_EQ(guardian_.TripsOf(*handle), 1u);  // trip count is history, not state
}

// --- Acceptance (c): canary rollout — a worse candidate is rolled back, a
// better candidate is promoted. ---

ControlPlane::CanaryConfig QuickCanary() {
  ControlPlane::CanaryConfig config;
  config.canary_permille = 500;  // fire seq % 1000: 0-499 canary, 500-999 incumbent
  config.soak_min_execs = 32;
  config.max_error_rate = 0.05;
  config.max_latency_ratio = 0.0;  // latency bound off: counters decide
  return config;
}

TEST_F(GuardianTest, WorseCanaryIsRolledBack) {
  Result<ControlPlane::ProgramHandle> incumbent =
      cp_.Install(AluSpec("incumbent", "generic.hook", 100));
  ASSERT_TRUE(incumbent.ok());
  // The candidate calls a helper; with "vm.helper" armed it faults on every
  // execution while the pure-ALU incumbent is untouched.
  Result<ControlPlane::RolloutId> rollout = cp_.InstallCanary(
      *incumbent, HelperSpec("candidate", "generic.hook", 200), QuickCanary());
  ASSERT_TRUE(rollout.ok()) << rollout.status();
  ASSERT_EQ(cp_.ActiveRollouts().size(), 1u);

  FailpointSpec fault;
  fault.mode = FailpointMode::kAlways;
  fault.force_error = true;
  ScopedFailpoint guard("vm.helper", fault);

  // 1000 fires cover one full routing period: 500 per arm, well past soak.
  for (int i = 0; i < 1000; ++i) {
    hooks_.Fire(hook_, 7);
  }
  const PolicyGuardian::TickSummary summary = guardian_.Tick();
  ASSERT_EQ(summary.rollouts.size(), 1u);
  const ControlPlane::RolloutReport& report = summary.rollouts[0];
  EXPECT_EQ(report.decision, ControlPlane::RolloutReport::Decision::kRolledBack);
  EXPECT_NE(report.reason.find("error rate"), std::string::npos);
  EXPECT_GE(report.canary.execs, 32u);
  EXPECT_GT(report.canary.error_rate, 0.05);
  EXPECT_EQ(report.incumbent.exec_errors, 0u);

  // The canary is gone, the incumbent serves all traffic again.
  EXPECT_EQ(cp_.Get(report.canary_handle), nullptr);
  ASSERT_NE(cp_.Get(report.incumbent_handle), nullptr);
  EXPECT_TRUE(cp_.ActiveRollouts().empty());
  EXPECT_EQ(cp_.Metrics().rollbacks->value(), 1u);
  EXPECT_EQ(cp_.Metrics().promotions->value(), 0u);
  guard.point().Disable();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(hooks_.Fire(hook_, 7), 107);  // incumbent's action, every fire
  }
}

TEST_F(GuardianTest, BetterCanaryIsPromoted) {
  Result<ControlPlane::ProgramHandle> incumbent =
      cp_.Install(AluSpec("incumbent", "generic.hook", 100));
  ASSERT_TRUE(incumbent.ok());
  Result<ControlPlane::RolloutId> rollout = cp_.InstallCanary(
      *incumbent, AluSpec("candidate", "generic.hook", 200), QuickCanary());
  ASSERT_TRUE(rollout.ok()) << rollout.status();

  // While soaking, traffic splits by fire sequence: seq 0-499 canary,
  // 500-999 incumbent (500 permille routing).
  EXPECT_EQ(hooks_.Fire(hook_, 7), 207);  // seq 0 -> canary
  for (int i = 0; i < 499; ++i) {
    hooks_.Fire(hook_, 7);
  }
  EXPECT_EQ(hooks_.Fire(hook_, 7), 107);  // seq 500 -> incumbent
  for (int i = 0; i < 499; ++i) {
    hooks_.Fire(hook_, 7);
  }

  const PolicyGuardian::TickSummary summary = guardian_.Tick();
  ASSERT_EQ(summary.rollouts.size(), 1u);
  const ControlPlane::RolloutReport& report = summary.rollouts[0];
  EXPECT_EQ(report.decision, ControlPlane::RolloutReport::Decision::kPromoted);
  EXPECT_EQ(report.canary.exec_errors, 0u);

  // The incumbent is gone; the promoted canary serves all traffic.
  EXPECT_EQ(cp_.Get(report.incumbent_handle), nullptr);
  ASSERT_NE(cp_.Get(report.canary_handle), nullptr);
  EXPECT_TRUE(cp_.ActiveRollouts().empty());
  EXPECT_EQ(cp_.Metrics().promotions->value(), 1u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(hooks_.Fire(hook_, 7), 207);  // candidate's action, every fire
  }
}

TEST_F(GuardianTest, RolloutKeepsSoakingBelowThreshold) {
  Result<ControlPlane::ProgramHandle> incumbent =
      cp_.Install(AluSpec("incumbent", "generic.hook", 100));
  ASSERT_TRUE(incumbent.ok());
  Result<ControlPlane::RolloutId> rollout = cp_.InstallCanary(
      *incumbent, AluSpec("candidate", "generic.hook", 200), QuickCanary());
  ASSERT_TRUE(rollout.ok());

  Fire(10);  // nowhere near 32 execs per arm
  const PolicyGuardian::TickSummary summary = guardian_.Tick();
  ASSERT_EQ(summary.rollouts.size(), 1u);
  EXPECT_EQ(summary.rollouts[0].decision,
            ControlPlane::RolloutReport::Decision::kSoaking);
  EXPECT_EQ(cp_.ActiveRollouts().size(), 1u);
}

TEST_F(GuardianTest, InstallCanaryValidatesItsArguments) {
  Result<ControlPlane::ProgramHandle> incumbent =
      cp_.Install(AluSpec("incumbent", "generic.hook", 100));
  ASSERT_TRUE(incumbent.ok());
  // Same name as the incumbent: telemetry slices would collide.
  EXPECT_FALSE(
      cp_.InstallCanary(*incumbent, AluSpec("incumbent", "generic.hook", 200), QuickCanary())
          .ok());
  // Bogus incumbent handle.
  EXPECT_FALSE(
      cp_.InstallCanary(999, AluSpec("candidate", "generic.hook", 200), QuickCanary()).ok());
  // Routing fraction out of range.
  ControlPlane::CanaryConfig bad = QuickCanary();
  bad.canary_permille = 1000;
  EXPECT_FALSE(
      cp_.InstallCanary(*incumbent, AluSpec("candidate", "generic.hook", 200), bad).ok());
  // A second rollout on the same incumbent while one is active.
  ASSERT_TRUE(
      cp_.InstallCanary(*incumbent, AluSpec("candidate", "generic.hook", 200), QuickCanary())
          .ok());
  EXPECT_FALSE(
      cp_.InstallCanary(*incumbent, AluSpec("candidate2", "generic.hook", 300), QuickCanary())
          .ok());
}

}  // namespace
}  // namespace rkd
