// Tests for the tier-3 specializing compiler: superblock formation, map and
// model constant folding with epoch/version deopt guards, tile-aware matmul
// kernels — and, most importantly, the three-tier differential property that
// interpreter, tier-2, and tier-3 execution agree (results and RunStats) on
// randomly generated programs, including at the exact deopt boundary.
#include <array>
#include <gtest/gtest.h>

#include "src/base/failpoints.h"
#include "src/base/rng.h"
#include "src/bytecode/assembler.h"
#include "src/ml/decision_tree.h"
#include "src/ml/model_registry.h"
#include "src/rmt/control_plane.h"
#include "src/rmt/introspect.h"
#include "src/vm/jit.h"
#include "src/vm/specialize.h"
#include "src/vm/vm.h"

namespace rkd {
namespace {

BytecodeProgram MustBuild(Assembler& a) {
  Result<BytecodeProgram> program = a.Build();
  EXPECT_TRUE(program.ok()) << program.status();
  return std::move(program).value();
}

ModelPtr MakeConstantTree(int32_t label) {
  Dataset data(1);
  data.Add(std::array<int32_t, 1>{0}, label);
  data.Add(std::array<int32_t, 1>{1}, label);
  return std::make_shared<DecisionTree>(std::move(DecisionTree::Train(data)).value());
}

// A self-contained specialization environment: maps, models, tensors, and
// the guard cells the SpecializeContext pins.
struct SpecEnv {
  MapSet maps;
  ModelRegistry models;
  TensorRegistry tensors;
  RmtTable table{"t", MatchKind::kExact, 16};

  SpecializeContext Context() {
    SpecializeContext ctx;
    ctx.maps = &maps;
    ctx.models = &models;
    ctx.tensors = &tensors;
    ctx.map_write_version = maps.write_version_cell();
    ctx.table_version = table.version_cell();
    return ctx;
  }

  VmEnv Vm() {
    VmEnv env;
    env.maps = &maps;
    env.models = &models;
    env.tensors = &tensors;
    return env;
  }
};

SpecializedProgram MustSpecialize(const BytecodeProgram& program, const SpecializeContext& ctx) {
  Result<SpecializedProgram> spec = SpecializedProgram::Specialize(program, ctx);
  EXPECT_TRUE(spec.ok()) << spec.status();
  return std::move(spec).value();
}

// --- Superblock formation ---

TEST(SpecializeTest, StraightLineProgramIsOneSuperblock) {
  Assembler a("line");
  a.MovImm(0, 1).AddImm(0, 2).MulImm(0, 3).Exit();
  SpecEnv env;
  SpecializedProgram spec = MustSpecialize(MustBuild(a), env.Context());
  EXPECT_EQ(spec.superblocks(), 1u);
  VmEnv vm = env.Vm();
  Result<int64_t> run = spec.Run(vm, {});
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(*run, 9);
}

TEST(SpecializeTest, BranchesSplitSuperblocks) {
  Assembler a("branchy");
  auto skip = a.NewLabel();
  auto end = a.NewLabel();
  a.JltImm(1, 10, skip);
  a.MovImm(0, 2);
  a.Ja(end);
  a.Bind(skip);
  a.MovImm(0, 1);
  a.Bind(end);
  a.Exit();
  SpecEnv env;
  SpecializedProgram spec = MustSpecialize(MustBuild(a), env.Context());
  EXPECT_GE(spec.superblocks(), 3u);
  VmEnv vm = env.Vm();
  Result<int64_t> low = spec.Run(vm, std::array<int64_t, 1>{5});
  Result<int64_t> high = spec.Run(vm, std::array<int64_t, 1>{50});
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_EQ(*low, 1);
  EXPECT_EQ(*high, 2);
}

TEST(SpecializeTest, ConstantFoldsStraightLineAlu) {
  Assembler a("fold");
  a.MovImm(1, 6).MovImm(2, 7).Mov(0, 1).Mul(0, 2).Exit();
  SpecEnv env;
  SpecializedProgram spec = MustSpecialize(MustBuild(a), env.Context());
  VmEnv vm = env.Vm();
  Result<int64_t> run = spec.Run(vm, {});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(*run, 42);
}

TEST(SpecializeTest, ExpiredDeadlineFaultsAtEntry) {
  Assembler a("deadline");
  a.MovImm(0, 1).Exit();
  SpecEnv env;
  SpecializedProgram spec = MustSpecialize(MustBuild(a), env.Context());
  VmEnv vm = env.Vm();
  FireDeadline deadline;
  deadline.deadline_ns = 1;  // epoch + 1ns: expired long ago
  vm.deadline = &deadline;
  Result<int64_t> run = spec.Run(vm, {});
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(SpecializeTest, RejectsMalformedProgramsLikeTier2) {
  BytecodeProgram program;
  program.name = "loop";
  Instruction jump;
  jump.opcode = Opcode::kJa;
  jump.offset = -1;
  program.code.push_back(jump);
  Instruction exit_insn;
  exit_insn.opcode = Opcode::kExit;
  program.code.push_back(exit_insn);
  SpecEnv env;
  Result<SpecializedProgram> spec = SpecializedProgram::Specialize(program, env.Context());
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kVerificationFailed);
}

// --- Map constant folding and the write-version guard ---

TEST(SpecializeTest, FoldsFrozenMapLookupAndDeoptsOnWrite) {
  SpecEnv env;
  Result<int64_t> map_id = env.maps.Create(MapKind::kArray, 16);
  ASSERT_TRUE(map_id.ok());
  ASSERT_TRUE(env.maps.Get(*map_id)->Update(3, 777));

  Assembler a("frozen");
  a.DeclareMaps(1);
  a.MovImm(1, 3);
  a.MapLookup(0, 1, *map_id);
  a.Exit();
  const BytecodeProgram program = MustBuild(a);

  SpecializedProgram spec = MustSpecialize(program, env.Context());
  EXPECT_EQ(spec.folded_lookups(), 1u);
  VmEnv vm = env.Vm();
  Result<int64_t> run = spec.Run(vm, {});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(*run, 777);
  EXPECT_TRUE(spec.GuardOk());

  // A control-plane write invalidates the fold: the guard must fail with
  // kMapWrite, and a respecialization at the new snapshot sees the new value.
  ASSERT_TRUE(env.maps.Get(*map_id)->Update(3, 888));
  env.maps.BumpWriteVersion();
  DeoptReason why = DeoptReason::kTableMutation;
  EXPECT_FALSE(spec.GuardOk(&why));
  EXPECT_EQ(why, DeoptReason::kMapWrite);

  SpecializedProgram respec = MustSpecialize(program, env.Context());
  Result<int64_t> rerun = respec.Run(vm, {});
  ASSERT_TRUE(rerun.ok());
  EXPECT_EQ(*rerun, 888);
}

TEST(SpecializeTest, FireWrittenMapsAreNeverFolded) {
  SpecEnv env;
  Result<int64_t> map_id = env.maps.Create(MapKind::kArray, 16);
  ASSERT_TRUE(map_id.ok());
  ASSERT_TRUE(env.maps.Get(*map_id)->Update(2, 5));

  // The program writes the map itself, then reads it back: the lookup must
  // stay generic (live) or the fire would see its own write disappear.
  Assembler a("selfwrite");
  a.DeclareMaps(1);
  a.MovImm(1, 2);
  a.MovImm(2, 123);
  a.MapUpdate(*map_id, 1, 2);
  a.MapLookup(0, 1, *map_id);
  a.Exit();
  const BytecodeProgram program = MustBuild(a);

  SpecializeContext ctx = env.Context();
  ctx.fire_written_maps.push_back(*map_id);
  SpecializedProgram spec = MustSpecialize(program, ctx);
  EXPECT_EQ(spec.folded_lookups(), 0u);
  VmEnv vm = env.Vm();
  Result<int64_t> run = spec.Run(vm, {});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(*run, 123);
}

TEST(SpecializeTest, DynamicKeyArrayLookupIsBurnedNotFolded) {
  SpecEnv env;
  Result<int64_t> map_id = env.maps.Create(MapKind::kArray, 16);
  ASSERT_TRUE(map_id.ok());
  ASSERT_TRUE(env.maps.Get(*map_id)->Update(7, 70));

  Assembler a("burned");
  a.DeclareMaps(1);
  a.MapLookup(0, 1, *map_id);  // key arrives in r1 at fire time
  a.Exit();
  SpecializedProgram spec = MustSpecialize(MustBuild(a), env.Context());
  EXPECT_EQ(spec.folded_lookups(), 0u);
  EXPECT_EQ(spec.burned_lookups(), 1u);
  VmEnv vm = env.Vm();
  Result<int64_t> hit = spec.Run(vm, std::array<int64_t, 1>{7});
  Result<int64_t> miss = spec.Run(vm, std::array<int64_t, 1>{9});
  ASSERT_TRUE(hit.ok());
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(*hit, 70);
  EXPECT_EQ(*miss, 0);
}

TEST(SpecializeTest, FoldedLookupStillHonoursFailpoints) {
  SpecEnv env;
  Result<int64_t> map_id = env.maps.Create(MapKind::kArray, 16);
  ASSERT_TRUE(map_id.ok());
  ASSERT_TRUE(env.maps.Get(*map_id)->Update(1, 100));

  Assembler a("failpoint");
  a.DeclareMaps(1);
  a.MovImm(1, 1);
  a.MapLookup(0, 1, *map_id);
  a.Exit();
  const BytecodeProgram program = MustBuild(a);
  Result<CompiledProgram> tier2 = CompiledProgram::Compile(program);
  ASSERT_TRUE(tier2.ok());
  SpecializedProgram spec = MustSpecialize(program, env.Context());
  ASSERT_EQ(spec.folded_lookups(), 1u);
  VmEnv vm = env.Vm();

  {
    FailpointSpec corrupt;
    corrupt.mode = FailpointMode::kAlways;
    corrupt.corrupt_xor = 0xff;
    ScopedFailpoint fp("vm.map_lookup", corrupt);
    Result<int64_t> second = tier2->Run(vm, {});
    Result<int64_t> third = spec.Run(vm, {});
    ASSERT_TRUE(second.ok());
    ASSERT_TRUE(third.ok());
    EXPECT_EQ(*second, *third);  // both perturbed identically
    EXPECT_EQ(*third, 100 ^ 0xff);
  }
  {
    FailpointSpec fault;
    fault.mode = FailpointMode::kAlways;
    fault.force_error = true;
    ScopedFailpoint fp("vm.map_lookup", fault);
    Result<int64_t> second = tier2->Run(vm, {});
    Result<int64_t> third = spec.Run(vm, {});
    ASSERT_FALSE(second.ok());
    ASSERT_FALSE(third.ok());
    EXPECT_EQ(second.status().ToString(), third.status().ToString());
  }
}

// --- Model folding and the slot-version guard ---

TEST(SpecializeTest, FoldsModelAndDeoptsOnInstall) {
  SpecEnv env;
  const int64_t slot = env.models.AddSlot();
  ASSERT_TRUE(env.models.Install(slot, MakeConstantTree(11)).ok());

  Assembler a("mlfold");
  a.DeclareModels(1);
  a.VecZero(0);
  a.MlCall(0, 0, slot);
  a.Exit();
  const BytecodeProgram program = MustBuild(a);

  SpecializedProgram spec = MustSpecialize(program, env.Context());
  EXPECT_EQ(spec.folded_models(), 1u);
  VmEnv vm = env.Vm();
  Result<int64_t> run = spec.Run(vm, {});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(*run, 11);
  EXPECT_TRUE(spec.GuardOk());

  // A model hot-swap must deopt: the burned weights are stale.
  ASSERT_TRUE(env.models.Install(slot, MakeConstantTree(22)).ok());
  DeoptReason why = DeoptReason::kMapWrite;
  EXPECT_FALSE(spec.GuardOk(&why));
  EXPECT_EQ(why, DeoptReason::kModelInstall);

  SpecializedProgram respec = MustSpecialize(program, env.Context());
  Result<int64_t> rerun = respec.Run(vm, {});
  ASSERT_TRUE(rerun.ok());
  EXPECT_EQ(*rerun, 22);
}

TEST(SpecializeTest, EmptyModelSlotStaysLive) {
  SpecEnv env;
  const int64_t slot = env.models.AddSlot();  // never installed

  Assembler a("mlempty");
  a.DeclareModels(1);
  a.VecZero(0);
  a.MlCall(0, 0, slot);
  a.Exit();
  SpecializedProgram spec = MustSpecialize(MustBuild(a), env.Context());
  EXPECT_EQ(spec.folded_models(), 0u);
  VmEnv vm = env.Vm();
  Result<int64_t> run = spec.Run(vm, {});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(*run, kNoModelSentinel);

  // A later install is picked up live (no guard pinned an empty slot).
  ASSERT_TRUE(env.models.Install(slot, MakeConstantTree(33)).ok());
  EXPECT_TRUE(spec.GuardOk());
  Result<int64_t> rerun = spec.Run(vm, {});
  ASSERT_TRUE(rerun.ok());
  EXPECT_EQ(*rerun, 33);
}

// --- Table-version guard ---

TEST(SpecializeTest, TableMutationDeopts) {
  SpecEnv env;
  Assembler a("tableguard");
  a.MovImm(0, 1).Exit();
  SpecializedProgram spec = MustSpecialize(MustBuild(a), env.Context());
  EXPECT_TRUE(spec.GuardOk());

  TableEntry entry;
  entry.key = 1;
  entry.action_index = 0;
  ASSERT_TRUE(env.table.Insert(entry).ok());
  DeoptReason why = DeoptReason::kMapWrite;
  EXPECT_FALSE(spec.GuardOk(&why));
  EXPECT_EQ(why, DeoptReason::kTableMutation);
}

// --- Tile-aware matmul kernels ---

FixedMatrix RandomMatrix(Rng& rng, size_t rows, size_t cols) {
  FixedMatrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      m.at(r, c) = Fixed32::FromDouble(rng.NextInt(-200, 200) / 100.0).raw();
    }
  }
  return m;
}

// Builds vsrc from ctx-free scalars, multiplies by tensor 0, reduces.
BytecodeProgram MatMulProgram(size_t cols) {
  Assembler a("matmul");
  a.DeclareTensors(1);
  a.VecZero(0);
  for (size_t lane = 0; lane < cols && lane < 8; ++lane) {
    a.MovImm(2, static_cast<int64_t>((lane + 1)) << 16);
    a.ScalarVal(0, static_cast<int32_t>(lane), 2);
  }
  a.MatMul(1, 0, 0);
  a.VecArgmax(0, 1);
  a.Exit();
  Result<BytecodeProgram> program = a.Build();
  EXPECT_TRUE(program.ok()) << program.status();
  return std::move(program).value();
}

TEST(SpecializeTest, TileKernelStrategyFollowsAspectRatio) {
  Rng rng(99);
  {
    SpecEnv env;
    env.tensors.Add(RandomMatrix(rng, 4, 8));  // wide: outputs few, reuse x
    SpecializedProgram spec = MustSpecialize(MatMulProgram(8), env.Context());
    ASSERT_EQ(spec.tile_kernels(), 1u);
    EXPECT_EQ(spec.tile_strategy(0), DataflowStrategy::kOutputStationary);
  }
  {
    SpecEnv env;
    env.tensors.Add(RandomMatrix(rng, 8, 4));  // tall: stream weight columns
    SpecializedProgram spec = MustSpecialize(MatMulProgram(4), env.Context());
    ASSERT_EQ(spec.tile_kernels(), 1u);
    EXPECT_EQ(spec.tile_strategy(0), DataflowStrategy::kWeightStationary);
  }
}

TEST(SpecializeTest, TileKernelsAreBitIdenticalToTier2) {
  Rng rng(7);
  for (const auto [rows, cols] : std::array<std::pair<size_t, size_t>, 6>{
           {{3, 5}, {4, 4}, {8, 8}, {16, 8}, {8, 16}, {32, 32}}}) {
    SpecEnv env;
    env.tensors.Add(RandomMatrix(rng, rows, cols));
    const BytecodeProgram program = MatMulProgram(cols);
    Result<CompiledProgram> tier2 = CompiledProgram::Compile(program);
    ASSERT_TRUE(tier2.ok());
    SpecializedProgram spec = MustSpecialize(program, env.Context());
    EXPECT_EQ(spec.tile_kernels(), 1u);
    VmEnv vm = env.Vm();
    const Interpreter interp(vm);
    Result<int64_t> first = interp.Run(program, {});
    Result<int64_t> second = tier2->Run(vm, {});
    Result<int64_t> third = spec.Run(vm, {});
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(second.ok());
    ASSERT_TRUE(third.ok());
    EXPECT_EQ(*first, *second) << rows << "x" << cols;
    EXPECT_EQ(*second, *third) << rows << "x" << cols;
  }
}

TEST(SpecializeTest, OversizedTensorFoldsToZeroVector) {
  SpecEnv env;
  env.tensors.Add(FixedMatrix(40, 40));  // rows > kVectorLanes: tier 2 zeros
  Assembler a("oversize");
  a.DeclareTensors(1);
  a.VecZero(0);
  a.MovImm(2, 3 << 16);
  a.ScalarVal(0, 1, 2);
  a.MatMul(1, 0, 0);
  a.VecExtract(0, 1, 0);
  a.Exit();
  const BytecodeProgram program = MustBuild(a);
  Result<CompiledProgram> tier2 = CompiledProgram::Compile(program);
  ASSERT_TRUE(tier2.ok());
  SpecializedProgram spec = MustSpecialize(program, env.Context());
  EXPECT_EQ(spec.tile_kernels(), 0u);
  VmEnv vm = env.Vm();
  Result<int64_t> second = tier2->Run(vm, {});
  Result<int64_t> third = spec.Run(vm, {});
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(*second, *third);
  EXPECT_EQ(*third, 0);
}

// --- Tail calls ---

TEST(SpecializeTest, TailCallsResolveThroughTier2Targets) {
  Assembler callee_asm("callee");
  callee_asm.MovImm(0, 55).Exit();
  Result<CompiledProgram> callee = CompiledProgram::Compile(MustBuild(callee_asm));
  ASSERT_TRUE(callee.ok());

  Assembler a("caller");
  a.DeclareTables(1);
  a.MovImm(0, 1);
  a.TailCall(0);
  a.MovImm(0, 99);  // fall-through when the call does not resolve
  a.Exit();
  const BytecodeProgram program = MustBuild(a);
  SpecEnv env;
  SpecializedProgram spec = MustSpecialize(program, env.Context());
  VmEnv vm = env.Vm();

  CompiledProgram::Resolver resolve = [&](int64_t) { return &*callee; };
  RunStats stats;
  Result<int64_t> taken = spec.Run(vm, {}, &stats, resolve);
  ASSERT_TRUE(taken.ok());
  EXPECT_EQ(*taken, 55);
  EXPECT_EQ(stats.tail_calls, 1u);

  RunStats missed_stats;
  Result<int64_t> missed = spec.Run(vm, {}, &missed_stats, {});
  ASSERT_TRUE(missed.ok());
  EXPECT_EQ(*missed, 99);  // unresolved: falls through, same as tier 2
  EXPECT_EQ(missed_stats.tail_calls, 0u);
}

// --- Three-tier differential property ---

// Random program over ALU/stack/branch/map/vector ops. Map 0 is fire-written
// (update instructions target it); map 1 is frozen and thus foldable.
BytecodeProgram RandomTieredProgram(Rng& rng, size_t length) {
  Assembler a("random3");
  a.DeclareMaps(2).DeclareModels(1).DeclareTensors(1);
  for (int reg = 0; reg <= 9; ++reg) {
    a.MovImm(reg, rng.NextInt(-1000, 1000));
  }
  a.StStackImm(-8, rng.NextInt(-50, 50));
  a.StStackImm(-16, rng.NextInt(-50, 50));

  std::vector<Assembler::Label> pending;
  for (size_t i = 0; i < length; ++i) {
    const int dst = static_cast<int>(rng.NextBounded(10));
    const int src = static_cast<int>(rng.NextBounded(10));
    switch (rng.NextBounded(18)) {
      case 0: a.Add(dst, src); break;
      case 1: a.Sub(dst, src); break;
      case 2: a.MulImm(dst, rng.NextInt(-9, 9)); break;
      case 3: a.Div(dst, src); break;
      case 4: a.And(dst, src); break;
      case 5: a.Or(dst, src); break;
      case 6: a.Xor(dst, src); break;
      case 7: a.AshrImm(dst, rng.NextInt(0, 8)); break;
      case 8: a.Mov(dst, src); break;
      case 9: a.Neg(dst); break;
      case 10: a.LdStack(dst, rng.NextBool() ? -8 : -16); break;
      case 11: a.StStack(rng.NextBool() ? -8 : -16, src); break;
      case 12: {
        auto label = a.NewLabel();
        a.JltImm(dst, rng.NextInt(-100, 100), label);
        pending.push_back(label);
        break;
      }
      case 13: {
        auto label = a.NewLabel();
        a.Jge(dst, src, label);
        pending.push_back(label);
        break;
      }
      case 14: {
        // Frozen-map lookup, constant key half the time (fold candidate).
        if (rng.NextBool()) {
          a.MovImm(src, rng.NextInt(0, 15));
        }
        a.MapLookup(dst, src, 1);
        break;
      }
      case 15: a.MapExists(dst, src, 1); break;
      case 16: a.MapUpdate(0, dst, src); break;
      case 17: a.MapLookup(dst, src, 0); break;
    }
    while (pending.size() > 2) {
      a.Bind(pending.front());
      pending.erase(pending.begin());
    }
  }
  for (auto& label : pending) {
    a.Bind(label);
  }
  // Vector + ML coda so every trial exercises the tile and model paths.
  a.VecZero(0);
  for (int lane = 0; lane < 4; ++lane) {
    a.MovImm(2, rng.NextInt(-5, 5) << 16);
    a.ScalarVal(0, lane, 2);
  }
  a.MatMul(1, 0, 0);
  a.VecRelu(1, 1);
  a.VecArgmax(3, 1);
  a.MlCall(4, 1, 0);
  a.Add(0, 3);
  a.Add(0, 4);
  a.Exit();
  Result<BytecodeProgram> program = a.Build();
  EXPECT_TRUE(program.ok()) << program.status();
  return std::move(program).value();
}

class SpecializeDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpecializeDifferentialTest, ThreeTiersAgreeOnRandomPrograms) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 12; ++trial) {
    SpecEnv env;
    Result<int64_t> map0 = env.maps.Create(MapKind::kArray, 16);
    Result<int64_t> map1 = env.maps.Create(MapKind::kArray, 16);
    ASSERT_TRUE(map0.ok());
    ASSERT_TRUE(map1.ok());
    for (int64_t k = 0; k < 16; ++k) {
      ASSERT_TRUE(env.maps.Get(*map1)->Update(k, rng.NextInt(-100, 100)));
    }
    env.tensors.Add(RandomMatrix(rng, 4, 4));
    const int64_t slot = env.models.AddSlot();
    ASSERT_TRUE(env.models.Install(slot, MakeConstantTree(rng.NextInt(0, 9))).ok());

    const BytecodeProgram program = RandomTieredProgram(rng, 40);
    Result<CompiledProgram> tier2 = CompiledProgram::Compile(program);
    ASSERT_TRUE(tier2.ok()) << tier2.status();
    SpecializeContext ctx = env.Context();
    ctx.fire_written_maps.push_back(*map0);
    SpecializedProgram tier3 = MustSpecialize(program, ctx);

    const std::array<int64_t, 3> args{rng.NextInt(-5, 5), rng.NextInt(-5, 5),
                                      rng.NextInt(-5, 5)};
    // Map 0 is fire-written: reset it between runs so each tier sees the
    // same starting state.
    const auto reset_map0 = [&] {
      for (int64_t k = 0; k < 16; ++k) {
        ASSERT_TRUE(env.maps.Get(*map0)->Update(k, 0));
      }
    };
    VmEnv vm = env.Vm();
    const Interpreter interp(vm);
    reset_map0();
    RunStats interp_stats;
    Result<int64_t> first = interp.Run(program, args, &interp_stats);
    reset_map0();
    RunStats tier2_stats;
    Result<int64_t> second = tier2->Run(vm, args, &tier2_stats);
    reset_map0();
    RunStats tier3_stats;
    Result<int64_t> third = tier3.Run(vm, args, &tier3_stats);

    ASSERT_TRUE(first.ok()) << first.status();
    ASSERT_TRUE(second.ok()) << second.status();
    ASSERT_TRUE(third.ok()) << third.status();
    EXPECT_EQ(*first, *second) << "seed=" << GetParam() << " trial=" << trial;
    EXPECT_EQ(*second, *third) << "seed=" << GetParam() << " trial=" << trial;
    // Tier 2 and tier 3 keep identical RunStats semantics (neither counts
    // steps; tail/helper/ml tallies must agree exactly).
    EXPECT_EQ(tier2_stats.steps, tier3_stats.steps);
    EXPECT_EQ(tier2_stats.tail_calls, tier3_stats.tail_calls);
    EXPECT_EQ(tier2_stats.helper_calls, tier3_stats.helper_calls);
    EXPECT_EQ(tier2_stats.ml_calls, tier3_stats.ml_calls);
    EXPECT_EQ(interp_stats.tail_calls, tier3_stats.tail_calls);
    EXPECT_EQ(interp_stats.ml_calls, tier3_stats.ml_calls);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpecializeDifferentialTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// The exact deopt boundary: a specialization raced by a map write. The fire
// that passed the guard computes from the pinned snapshot; the first fire
// after the bump must refuse the stream; tier 2 sees the new value.
TEST(SpecializeDifferentialTest, DeoptBoundaryIsExact) {
  SpecEnv env;
  Result<int64_t> map_id = env.maps.Create(MapKind::kArray, 8);
  ASSERT_TRUE(map_id.ok());
  ASSERT_TRUE(env.maps.Get(*map_id)->Update(0, 1000));

  Assembler a("boundary");
  a.DeclareMaps(1);
  a.MovImm(1, 0);
  a.MapLookup(0, 1, *map_id);
  a.Exit();
  const BytecodeProgram program = MustBuild(a);
  Result<CompiledProgram> tier2 = CompiledProgram::Compile(program);
  ASSERT_TRUE(tier2.ok());
  SpecializedProgram spec = MustSpecialize(program, env.Context());
  VmEnv vm = env.Vm();

  // Before the write: guard passes, folded value is the live value.
  ASSERT_TRUE(spec.GuardOk());
  Result<int64_t> before = spec.Run(vm, {});
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(*before, 1000);

  // The write lands. The stream still computes the pinned snapshot (a fire
  // that already passed the guard is linearized before the write) but the
  // guard now refuses every new fire: no stale decision escapes the tier
  // dispatch, which routes to tier 2.
  ASSERT_TRUE(env.maps.Get(*map_id)->Update(0, 2000));
  env.maps.BumpWriteVersion();
  EXPECT_FALSE(spec.GuardOk());
  Result<int64_t> fallback = tier2->Run(vm, {});
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(*fallback, 2000);
}

// --- Control-plane tier ladder end-to-end ---

TEST(TierLadderTest, PromotesHotProgramAndDeoptsOnWriteMap) {
  Assembler a("ladder");
  a.DeclareMaps(1);
  a.MovImm(2, 4);
  a.MapLookup(0, 2, 0);
  a.Add(0, 1);
  a.Exit();

  HookRegistry hooks;
  Result<HookId> hook = hooks.Register("tier.hook", HookKind::kGeneric);
  ASSERT_TRUE(hook.ok());
  ControlPlane cp(&hooks);
  RmtProgramSpec spec;
  spec.name = "ladder_prog";
  MapSpec map_spec;
  map_spec.kind = MapKind::kArray;
  map_spec.capacity = 16;
  spec.maps.push_back(map_spec);
  RmtTableSpec table;
  table.name = "ladder_tab";
  table.hook_point = "tier.hook";
  table.actions.push_back(MustBuild(a));
  table.default_action = 0;
  spec.tables.push_back(std::move(table));
  Result<ControlPlane::ProgramHandle> handle = cp.Install(spec);
  ASSERT_TRUE(handle.ok()) << handle.status();
  ASSERT_TRUE(cp.WriteMap(*handle, 0, 4, 100).ok());

  ControlPlane::TieringConfig tiering;
  tiering.hot_execs = 16;
  ASSERT_TRUE(cp.EnableTiering(*handle, tiering).ok());

  // Cold: a tick below the threshold must not specialize.
  Result<ControlPlane::TierReport> cold = cp.TickTiering(*handle);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->tier, 2);
  EXPECT_EQ(cold->specializations, 0u);

  for (uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(hooks.Fire(*hook, 7), 107);
  }
  Result<ControlPlane::TierReport> hot = cp.TickTiering(*handle);
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(hot->tier, 3);
  EXPECT_EQ(hot->specializations, 1u);
  EXPECT_EQ(hot->specialized_actions, 1u);
  EXPECT_GE(hot->folded_lookups, 1u);

  // Hot fires take the specialized stream and still compute the same value.
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(hooks.Fire(*hook, 7), 107);
  }
  InstalledProgram* program = cp.Get(*handle);
  ASSERT_NE(program, nullptr);
  EXPECT_GE(program->tier3_stats().execs.value(), 8u);

  // A control-plane write deopts in-flight specializations: the next fires
  // fall back to tier 2 (new value immediately visible), the deopt is
  // attributed to kMapWrite, and the next tick respecializes.
  ASSERT_TRUE(cp.WriteMap(*handle, 0, 4, 500).ok());
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(hooks.Fire(*hook, 7), 507);
  }
  EXPECT_GE(program->tier3_stats()
                .deopts[static_cast<size_t>(DeoptReason::kMapWrite)]
                .value(),
            4u);
  Result<ControlPlane::TierReport> retick = cp.TickTiering(*handle);
  ASSERT_TRUE(retick.ok());
  EXPECT_EQ(retick->tier, 3);
  EXPECT_EQ(retick->specializations, 1u);  // replaced the stale stream
  EXPECT_EQ(retick->retires, 1u);
  EXPECT_EQ(hooks.Fire(*hook, 7), 507);

  // Governor degradation outranks tier 3: the next tick retires everything.
  program->set_governor_level(GovLevel::kDegraded);
  Result<ControlPlane::TierReport> degraded = cp.TickTiering(*handle);
  ASSERT_TRUE(degraded.ok());
  EXPECT_EQ(degraded->tier, 2);
  EXPECT_EQ(degraded->specialized_actions, 0u);
  EXPECT_EQ(degraded->retires, 1u);
  // While degraded the hook bypasses the learned policy entirely (fallback
  // oracle / stock heuristic), so the fire reports no opinion.
  EXPECT_EQ(hooks.Fire(*hook, 7), static_cast<int64_t>(kHookFallback));

  // Recovery re-promotes at the next tick.
  program->set_governor_level(GovLevel::kFull);
  Result<ControlPlane::TierReport> recovered = cp.TickTiering(*handle);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->tier, 3);

  // TickReport surfaces the ladder state alongside adaptation fields.
  ASSERT_TRUE(cp.EnableAdaptation(*handle, {}).ok());
  Result<ControlPlane::AdaptationReport> adapt = cp.TickReport(*handle);
  ASSERT_TRUE(adapt.ok());
  EXPECT_EQ(adapt->exec_tier, 3);
  EXPECT_EQ(adapt->specialized_actions, 1u);
  EXPECT_GE(adapt->tier3_execs, 8u);
  EXPECT_GE(adapt->tier3_deopts, 4u);

  // The introspection dump names the overlay.
  const std::string dump = DumpProgram(*program);
  EXPECT_NE(dump.find("tier-3 specializations:"), std::string::npos);
  EXPECT_NE(dump.find("specialized fires"), std::string::npos);
}

TEST(TierLadderTest, TracedFiresStayOnTier2) {
  Assembler a("traced");
  a.MovImm(0, 42).Exit();

  HookRegistry hooks;
  hooks.telemetry().tracer().set_sample_every(1);  // force-trace every fire
  Result<HookId> hook = hooks.Register("traced.hook", HookKind::kGeneric);
  ASSERT_TRUE(hook.ok());
  ControlPlane cp(&hooks);
  RmtProgramSpec spec;
  spec.name = "traced_prog";
  RmtTableSpec table;
  table.name = "traced_tab";
  table.hook_point = "traced.hook";
  table.actions.push_back(MustBuild(a));
  table.default_action = 0;
  spec.tables.push_back(std::move(table));
  Result<ControlPlane::ProgramHandle> handle = cp.Install(spec);
  ASSERT_TRUE(handle.ok());
  ControlPlane::TieringConfig tiering;
  tiering.hot_execs = 1;
  ASSERT_TRUE(cp.EnableTiering(*handle, tiering).ok());
  (void)hooks.Fire(*hook, 1);
  ASSERT_TRUE(cp.TickTiering(*handle).ok());

  for (uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(hooks.Fire(*hook, 1), 42);
  }
  // Every fire was traced, so none may have taken the specialized stream.
  InstalledProgram* program = cp.Get(*handle);
  ASSERT_NE(program, nullptr);
  EXPECT_EQ(program->tier3_stats().execs.value(), 0u);
}

}  // namespace
}  // namespace rkd
