// Tests for the introspection dump over a realistically populated program.
#include <array>
#include <gtest/gtest.h>

#include "src/bytecode/assembler.h"
#include "src/ml/decision_tree.h"
#include "src/rmt/control_plane.h"
#include "src/rmt/introspect.h"

namespace rkd {
namespace {

class IntrospectTest : public ::testing::Test {
 protected:
  IntrospectTest() : cp_(&hooks_) {
    hook_ = *hooks_.Register("demo.hook", HookKind::kGeneric);

    Assembler a("classify", HookKind::kGeneric);
    a.DeclareMaps(1);
    a.DeclareModels(1);
    a.Mov(0, 1).AddImm(0, 1).Exit();

    RmtProgramSpec spec;
    spec.name = "introspected";
    spec.model_slots = 1;
    spec.maps.push_back(MapSpec{MapKind::kArray, 8});
    RmtTableSpec table;
    table.name = "tab";
    table.hook_point = "demo.hook";
    table.actions.push_back(std::move(a.Build()).value());
    table.default_action = 0;
    TableEntry entry;
    entry.key = 42;
    entry.action_index = 0;
    entry.model_slot = 0;
    table.initial_entries.push_back(entry);
    spec.tables.push_back(std::move(table));
    handle_ = *cp_.Install(spec);
  }

  HookRegistry hooks_;
  ControlPlane cp_;
  HookId hook_ = kInvalidHook;
  ControlPlane::ProgramHandle handle_ = -1;
};

TEST_F(IntrospectTest, DumpNamesEverySection) {
  const std::string dump = DumpProgram(*cp_.Get(handle_));
  EXPECT_NE(dump.find("program 'introspected'"), std::string::npos);
  EXPECT_NE(dump.find("table 'tab'"), std::string::npos);
  EXPECT_NE(dump.find("exact match"), std::string::npos);
  EXPECT_NE(dump.find("key=42 -> action 0 (model slot 0)"), std::string::npos);
  EXPECT_NE(dump.find("default action:"), std::string::npos);
  EXPECT_NE(dump.find("add_imm r0, 1"), std::string::npos);
  EXPECT_NE(dump.find("slot 0: (empty)"), std::string::npos);
  EXPECT_NE(dump.find("map 0: array"), std::string::npos);
  EXPECT_NE(dump.find("privacy budget:"), std::string::npos);
}

TEST_F(IntrospectTest, DumpReflectsRuntimeState) {
  (void)hooks_.Fire(hook_, 42);
  (void)hooks_.Fire(hook_, 43);

  Dataset data(1);
  for (int32_t x = 0; x < 60; ++x) {
    data.Add(std::array<int32_t, 1>{x}, x > 30 ? 1 : 0);
  }
  ASSERT_TRUE(cp_.InstallModel(handle_, 0,
                               std::make_shared<DecisionTree>(
                                   std::move(DecisionTree::Train(data)).value()))
                  .ok());

  const std::string dump = DumpProgram(*cp_.Get(handle_));
  EXPECT_NE(dump.find("hits 1, misses 1"), std::string::npos);
  EXPECT_NE(dump.find("executions 2"), std::string::npos);
  EXPECT_NE(dump.find("slot 0: decision_tree"), std::string::npos);
  EXPECT_NE(dump.find("work units"), std::string::npos);
}

TEST_F(IntrospectTest, OptionsControlVerbosity) {
  IntrospectOptions options;
  options.disassemble_actions = false;
  options.list_entries = false;
  const std::string dump = DumpProgram(*cp_.Get(handle_), options);
  EXPECT_EQ(dump.find("default action:"), std::string::npos);
  EXPECT_EQ(dump.find("key=42"), std::string::npos);
  EXPECT_NE(dump.find("table 'tab'"), std::string::npos);
}

TEST_F(IntrospectTest, EntryListingIsCapped) {
  for (uint64_t key = 100; key < 140; ++key) {
    TableEntry entry;
    entry.key = key;
    entry.action_index = 0;
    ASSERT_TRUE(cp_.AddEntry(handle_, "tab", entry).ok());
  }
  IntrospectOptions options;
  options.max_entries_listed = 5;
  const std::string dump = DumpProgram(*cp_.Get(handle_), options);
  EXPECT_NE(dump.find("... (36 more)"), std::string::npos);
}

}  // namespace
}  // namespace rkd
