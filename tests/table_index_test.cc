// The compiled match-index fast lane, proven against the naive reference.
//
// RmtTable keeps the original O(n) scans selectable as TableIndexMode::kLinear;
// these tests drive a kCompiled table and a kLinear twin through identical
// randomized mutation/probe sequences and require byte-identical decisions —
// the compiled index may only change cost, never semantics. Targeted cases pin
// the tie-break rules (first-inserted LPM prefix of equal length, insertion
// order for overlapping ranges, priority-then-insertion for ternary), the lazy
// rebuild/epoch machinery, and the exact-kind swap-and-pop removal. The
// FireBatch suite proves the batched hook dispatch returns exactly what N
// single Fires would, including under canary routing.
#include <gtest/gtest.h>

#include <array>
#include <set>
#include <utility>
#include <vector>

#include "src/base/rng.h"
#include "src/bytecode/assembler.h"
#include "src/rmt/control_plane.h"
#include "src/rmt/hooks.h"
#include "src/rmt/table.h"

namespace rkd {
namespace {

// --- Randomized compiled-vs-linear equivalence ---

TableEntry RandomEntry(MatchKind kind, Rng& rng) {
  TableEntry entry;
  entry.action_index = static_cast<int32_t>(rng.NextBounded(4));
  switch (kind) {
    case MatchKind::kExact:
      entry.key = rng.NextBounded(512);
      break;
    case MatchKind::kLpm:
      // Top-16-bit prefixes of length 0..16 plus occasional /64: lots of
      // nesting, lots of equal-length aliasing through the masked key.
      entry.key = rng.NextBounded(1 << 16) << 48;
      entry.key2 = rng.NextBounded(20) >= 18 ? 64 : rng.NextBounded(17);
      break;
    case MatchKind::kRange: {
      const uint64_t low = rng.NextBounded(2000);
      entry.key = low;
      entry.key2 = low + rng.NextBounded(300);  // overlaps are the norm
      break;
    }
    case MatchKind::kTernary: {
      static constexpr uint64_t kMasks[] = {0x0, 0xF, 0xFF, 0xF0, 0xFF00, 0xFFFF};
      entry.key = rng.NextBounded(4096);
      entry.key2 = kMasks[rng.NextBounded(6)];
      entry.priority = static_cast<int32_t>(rng.NextBounded(8));  // ties common
      break;
    }
  }
  return entry;
}

uint64_t RandomProbe(MatchKind kind, Rng& rng) {
  switch (kind) {
    case MatchKind::kExact:
      return rng.NextBounded(640);  // hits and misses
    case MatchKind::kLpm:
      return (rng.NextBounded(1 << 16) << 48) | rng.NextBounded(1 << 16);
    case MatchKind::kRange:
      return rng.NextBounded(2500);
    case MatchKind::kTernary:
      return rng.NextBounded(4096);
  }
  return 0;
}

void ExpectSameDecision(const RmtTable& compiled, const RmtTable& linear, uint64_t probe) {
  const TableEntry* a = compiled.Peek(probe);
  const TableEntry* b = linear.Peek(probe);
  ASSERT_EQ(a == nullptr, b == nullptr) << "probe " << probe;
  if (a != nullptr) {
    EXPECT_EQ(a->key, b->key) << "probe " << probe;
    EXPECT_EQ(a->key2, b->key2) << "probe " << probe;
    EXPECT_EQ(a->priority, b->priority) << "probe " << probe;
    EXPECT_EQ(a->action_index, b->action_index) << "probe " << probe;
  }
}

class TableIndexPropertyTest
    : public ::testing::TestWithParam<std::tuple<MatchKind, uint64_t>> {};

TEST_P(TableIndexPropertyTest, CompiledMatchesLinearUnderInterleavedMutation) {
  const MatchKind kind = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  RmtTable compiled("compiled", kind, 4096, TableIndexMode::kCompiled);
  RmtTable linear("linear", kind, 4096, TableIndexMode::kLinear);
  Rng rng(seed);
  std::vector<std::pair<uint64_t, uint64_t>> live;  // accepted (key, key2) specs

  for (int step = 0; step < 400; ++step) {
    const uint64_t op = rng.NextBounded(10);
    if (op < 5 || live.empty()) {
      const TableEntry entry = RandomEntry(kind, rng);
      const Status a = compiled.Insert(entry);
      const Status b = linear.Insert(entry);
      ASSERT_EQ(a.ok(), b.ok()) << a.message() << " vs " << b.message();
      if (a.ok()) {
        live.emplace_back(entry.key, entry.key2);
      }
    } else if (op < 7) {
      const size_t pick = rng.NextBounded(live.size());
      const auto [key, key2] = live[pick];
      const Status a = compiled.Remove(key, key2);
      const Status b = linear.Remove(key, key2);
      ASSERT_EQ(a.ok(), b.ok());
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
    } else {
      const auto [key, key2] = live[rng.NextBounded(live.size())];
      const int32_t action = static_cast<int32_t>(rng.NextBounded(4));
      const Status a = compiled.Modify(key, key2, action, -1);
      const Status b = linear.Modify(key, key2, action, -1);
      ASSERT_EQ(a.ok(), b.ok());
    }
    ASSERT_EQ(compiled.size(), linear.size());
    for (int probe = 0; probe < 8; ++probe) {
      ExpectSameDecision(compiled, linear, RandomProbe(kind, rng));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSeeds, TableIndexPropertyTest,
    ::testing::Combine(::testing::Values(MatchKind::kExact, MatchKind::kLpm,
                                         MatchKind::kRange, MatchKind::kTernary),
                       ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<std::tuple<MatchKind, uint64_t>>& info) {
      return std::string(MatchKindName(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// --- Net-scale builds: 10k+ entries, the RX datapath's table shapes ---
//
// The packet datapath loads route/ACL tables two orders of magnitude larger
// than the sched/mem case studies. These tests pin the compiled index against
// the linear reference at that scale — bulk load, probe storm, then churn —
// with the mask/prefix diversity that stresses bucket and group sizing.

TEST(TableIndexNetScaleTest, LpmTenThousandPrefixesCompiledMatchesLinear) {
  constexpr size_t kTarget = 12000;
  RmtTable compiled("compiled", MatchKind::kLpm, kTarget + 64, TableIndexMode::kCompiled);
  RmtTable linear("linear", MatchKind::kLpm, kTarget + 64, TableIndexMode::kLinear);
  Rng rng(2021);

  // IPv4-style routes in the low 32 bits: /8 through /28 plus host routes,
  // nested inside a handful of top-level prefixes so longest-match is
  // exercised constantly.
  static constexpr uint64_t kBits[] = {40, 44, 48, 52, 56, 60, 64};
  std::vector<TableEntry> batch;
  std::set<std::pair<uint64_t, uint64_t>> seen;
  while (batch.size() < kTarget) {
    TableEntry entry;
    entry.key2 = kBits[rng.NextBounded(std::size(kBits))];
    const uint64_t mask = entry.key2 == 0 ? 0 : ~0ull << (64 - entry.key2);
    entry.key = (0x0A000000ull | rng.NextBounded(1u << 25)) & mask;
    entry.action_index = static_cast<int32_t>(rng.NextBounded(4));
    if (seen.emplace(entry.key, entry.key2).second) {
      batch.push_back(entry);
    }
  }
  ASSERT_TRUE(compiled.InsertBatch(batch).ok());
  ASSERT_TRUE(linear.InsertBatch(batch).ok());

  for (int probe = 0; probe < 4096; ++probe) {
    // Probe near real routes half the time, uniformly otherwise.
    const uint64_t key = probe % 2 == 0
                             ? batch[rng.NextBounded(batch.size())].key +
                                   rng.NextBounded(512)
                             : 0x0A000000ull | rng.NextBounded(1u << 25);
    ExpectSameDecision(compiled, linear, key);
  }

  // Route churn at scale: withdraw and re-announce, probing throughout.
  for (int step = 0; step < 128; ++step) {
    const TableEntry& victim = batch[rng.NextBounded(batch.size())];
    const Status a = compiled.Remove(victim.key, victim.key2);
    const Status b = linear.Remove(victim.key, victim.key2);
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      ASSERT_TRUE(compiled.Insert(victim).ok());
      ASSERT_TRUE(linear.Insert(victim).ok());
    }
    for (int probe = 0; probe < 4; ++probe) {
      ExpectSameDecision(compiled, linear, victim.key + rng.NextBounded(1024));
    }
  }
}

TEST(TableIndexNetScaleTest, TernaryTenThousandAclEntriesCompiledMatchesLinear) {
  constexpr size_t kTarget = 10240;
  RmtTable compiled("compiled", MatchKind::kTernary, kTarget + 64,
                    TableIndexMode::kCompiled);
  RmtTable linear("linear", MatchKind::kTernary, kTarget + 64, TableIndexMode::kLinear);
  Rng rng(7);

  // 24 distinct masks over a classify-key layout (proto | src_port |
  // dst_port): wildcard widths 0..7 on either port, with and without the
  // proto octet — the mask-group diversity a real ACL compiler emits.
  std::vector<uint64_t> masks;
  for (uint64_t width = 0; width < 8; ++width) {
    const uint64_t src = (0xffffull & ~((1ull << width) - 1)) << 16;
    masks.push_back((0xffull << 32) | src | 0xffffull);
    masks.push_back((0xffull << 32) | src);
    masks.push_back(src | 0xffffull);
  }
  std::vector<TableEntry> batch;
  std::set<std::pair<uint64_t, uint64_t>> seen;
  while (batch.size() < kTarget) {
    TableEntry entry;
    entry.key2 = masks[rng.NextBounded(masks.size())];
    entry.key = ((rng.NextBounded(2) ? 6ull : 17ull) << 32) |
                (rng.NextBounded(1u << 16) << 16) | rng.NextBounded(1u << 16);
    entry.key &= entry.key2;
    entry.priority = static_cast<int32_t>(rng.NextBounded(16));  // ties everywhere
    entry.action_index = static_cast<int32_t>(rng.NextBounded(3));
    if (seen.emplace(entry.key, entry.key2).second) {
      batch.push_back(entry);
    }
  }
  ASSERT_TRUE(compiled.InsertBatch(batch).ok());
  ASSERT_TRUE(linear.InsertBatch(batch).ok());

  for (int probe = 0; probe < 4096; ++probe) {
    // Half the probes are real rule keys with noise in the wildcarded bits,
    // half are spoofed-flood style (random everything).
    uint64_t key;
    if (probe % 2 == 0) {
      const TableEntry& rule = batch[rng.NextBounded(batch.size())];
      key = rule.key | (rng.Next() & ~rule.key2);
    } else {
      key = (17ull << 32) | rng.NextBounded(1ull << 32);
    }
    ExpectSameDecision(compiled, linear, key);
  }

  // ACL churn: retire and reinstall rules (priority intact), probing around
  // each touched cell.
  for (int step = 0; step < 128; ++step) {
    const TableEntry& victim = batch[rng.NextBounded(batch.size())];
    const Status a = compiled.Remove(victim.key, victim.key2);
    const Status b = linear.Remove(victim.key, victim.key2);
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      ASSERT_TRUE(compiled.Insert(victim).ok());
      ASSERT_TRUE(linear.Insert(victim).ok());
    }
    for (int probe = 0; probe < 4; ++probe) {
      ExpectSameDecision(compiled, linear, victim.key | (rng.Next() & ~victim.key2));
    }
  }
}

// --- Publish-on-update / version machinery ---

TEST(TableIndexTest, EveryMutationPublishesAFreshSnapshot) {
  RmtTable table("t", MatchKind::kLpm, 64);
  for (uint64_t i = 0; i < 8; ++i) {
    TableEntry entry;
    entry.key = i << 60;
    entry.key2 = 4;
    entry.action_index = static_cast<int32_t>(i);
    ASSERT_TRUE(table.Insert(entry).ok());
  }
  EXPECT_EQ(table.version(), 8u);  // one published snapshot per insert
  (void)table.Match(1ull << 60);
  (void)table.Match(2ull << 60);
  (void)table.Peek(3ull << 60);
  EXPECT_EQ(table.version(), 8u);  // lookups never publish

  TableEntry extra;
  extra.key = 9ull << 56;
  extra.key2 = 8;
  extra.action_index = 9;
  ASSERT_TRUE(table.Insert(extra).ok());
  EXPECT_EQ(table.version(), 9u);  // visible before any lookup happens
  const TableEntry* hit = table.Peek(9ull << 56);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->action_index, 9);  // post-mutation lookup sees the new entry
  EXPECT_EQ(table.version(), 9u);
}

TEST(TableIndexTest, InsertBatchPublishesOnce) {
  RmtTable table("t", MatchKind::kExact, 64);
  std::vector<TableEntry> batch;
  for (uint64_t i = 0; i < 16; ++i) {
    TableEntry entry;
    entry.key = i;
    entry.action_index = static_cast<int32_t>(i);
    batch.push_back(entry);
  }
  ASSERT_TRUE(table.InsertBatch(batch).ok());
  EXPECT_EQ(table.version(), 1u);  // one snapshot for the whole bulk load
  for (uint64_t i = 0; i < 16; ++i) {
    const TableEntry* hit = table.Match(i);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->action_index, static_cast<int32_t>(i));
  }
  // All-or-nothing: an in-batch duplicate rolls the whole batch back.
  std::vector<TableEntry> bad;
  TableEntry dup;
  dup.key = 99;
  bad.push_back(dup);
  bad.push_back(dup);
  EXPECT_FALSE(table.InsertBatch(bad).ok());
  EXPECT_EQ(table.version(), 1u);
  EXPECT_EQ(table.Match(99), nullptr);
  EXPECT_EQ(table.size(), 16u);
}

TEST(TableIndexTest, ModifyPublishesAndIsVisible) {
  RmtTable table("t", MatchKind::kRange, 64);
  TableEntry entry;
  entry.key = 10;
  entry.key2 = 20;
  entry.action_index = 1;
  ASSERT_TRUE(table.Insert(entry).ok());
  const uint64_t before = table.version();
  ASSERT_TRUE(table.Modify(10, 20, 5, -1).ok());
  const TableEntry* hit = table.Match(15);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->action_index, 5);          // the change is visible...
  EXPECT_EQ(table.version(), before + 1);   // ...through a fresh snapshot
}

TEST(TableIndexTest, SwitchingModesIsTransparent) {
  RmtTable table("t", MatchKind::kTernary, 64);
  TableEntry entry;
  entry.key = 0x12;
  entry.key2 = 0xFF;
  entry.priority = 3;
  entry.action_index = 7;
  ASSERT_TRUE(table.Insert(entry).ok());
  const TableEntry* compiled_hit = table.Match(0x12);
  table.set_index_mode(TableIndexMode::kLinear);
  const TableEntry* linear_hit = table.Match(0x12);
  ASSERT_NE(compiled_hit, nullptr);
  ASSERT_NE(linear_hit, nullptr);
  EXPECT_EQ(compiled_hit->action_index, linear_hit->action_index);
  table.set_index_mode(TableIndexMode::kCompiled);
  ASSERT_NE(table.Match(0x12), nullptr);
}

// --- Targeted tie-break and boundary semantics ---

TEST(TableIndexTest, LpmZeroBitsIsCatchAllAndLongestPrefixWins) {
  RmtTable table("t", MatchKind::kLpm, 16);
  TableEntry all;
  all.key2 = 0;  // /0: matches everything
  all.action_index = 1;
  TableEntry wide;
  wide.key = 0xAB00ull << 48;
  wide.key2 = 8;
  wide.action_index = 2;
  TableEntry narrow;
  narrow.key = 0xABCDull << 48;
  narrow.key2 = 16;
  narrow.action_index = 3;
  ASSERT_TRUE(table.Insert(all).ok());
  ASSERT_TRUE(table.Insert(wide).ok());
  ASSERT_TRUE(table.Insert(narrow).ok());
  EXPECT_EQ(table.Peek(0xABCDull << 48)->action_index, 3);  // /16 beats /8 and /0
  EXPECT_EQ(table.Peek(0xAB11ull << 48)->action_index, 2);  // /8 beats /0
  EXPECT_EQ(table.Peek(0x1111ull << 48)->action_index, 1);  // only /0 covers it
}

TEST(TableIndexTest, LpmEqualLengthAliasKeepsFirstInserted) {
  // Two /8 prefixes whose masked keys collide: 0xAB00... and 0xAB77... both
  // mask to 0xAB under /8. The linear scan's strict > keeps the first; the
  // compiled bucket must too.
  RmtTable table("t", MatchKind::kLpm, 16);
  TableEntry first;
  first.key = 0xAB00ull << 48;
  first.key2 = 8;
  first.action_index = 1;
  TableEntry alias;
  alias.key = 0xAB77ull << 48;
  alias.key2 = 8;
  alias.action_index = 2;
  ASSERT_TRUE(table.Insert(first).ok());
  ASSERT_TRUE(table.Insert(alias).ok());
  EXPECT_EQ(table.Peek(0xAB42ull << 48)->action_index, 1);
}

TEST(TableIndexTest, RangeOverlapKeepsInsertionOrderWinner) {
  for (bool reversed : {false, true}) {
    RmtTable table("t", MatchKind::kRange, 16);
    TableEntry a;
    a.key = 0;
    a.key2 = 100;
    a.action_index = 1;
    TableEntry b;
    b.key = 50;
    b.key2 = 150;
    b.action_index = 2;
    if (reversed) {
      ASSERT_TRUE(table.Insert(b).ok());
      ASSERT_TRUE(table.Insert(a).ok());
    } else {
      ASSERT_TRUE(table.Insert(a).ok());
      ASSERT_TRUE(table.Insert(b).ok());
    }
    // In the overlap [50,100] the first-inserted entry wins.
    EXPECT_EQ(table.Peek(75)->action_index, reversed ? 2 : 1);
    EXPECT_EQ(table.Peek(25)->action_index, 1);   // only [0,100]
    EXPECT_EQ(table.Peek(125)->action_index, 2);  // only [50,150]
    EXPECT_EQ(table.Peek(151), nullptr);
  }
}

TEST(TableIndexTest, RangeCoversTheTopOfTheKeySpace) {
  RmtTable table("t", MatchKind::kRange, 16);
  TableEntry top;
  top.key = ~0ull - 10;
  top.key2 = ~0ull;  // key2 + 1 would wrap; the sweep must not emit it
  top.action_index = 4;
  ASSERT_TRUE(table.Insert(top).ok());
  EXPECT_EQ(table.Peek(~0ull)->action_index, 4);
  EXPECT_EQ(table.Peek(~0ull - 10)->action_index, 4);
  EXPECT_EQ(table.Peek(~0ull - 11), nullptr);
}

TEST(TableIndexTest, TernaryPriorityThenInsertionOrder) {
  RmtTable table("t", MatchKind::kTernary, 16);
  TableEntry low;
  low.key = 0x10;
  low.key2 = 0xF0;
  low.priority = 1;
  low.action_index = 1;
  TableEntry high;
  high.key = 0x12;
  high.key2 = 0xFF;
  high.priority = 5;
  high.action_index = 2;
  TableEntry tie;  // same priority as `high`, different mask, also matches 0x12
  tie.key = 0x02;
  tie.key2 = 0x0F;
  tie.priority = 5;
  tie.action_index = 3;
  ASSERT_TRUE(table.Insert(low).ok());
  ASSERT_TRUE(table.Insert(high).ok());
  ASSERT_TRUE(table.Insert(tie).ok());
  // 0x12 matches all three; priority 5 beats 1, and among the priority-5
  // pair the first-inserted wins.
  EXPECT_EQ(table.Peek(0x12)->action_index, 2);
  // 0x15 matches `low` (0x10/0xF0) only.
  EXPECT_EQ(table.Peek(0x15)->action_index, 1);
}

TEST(TableIndexTest, ExactDuplicateKeyRejectedOutright) {
  RmtTable table("t", MatchKind::kExact, 16);
  TableEntry entry;
  entry.key = 7;
  entry.key2 = 1;
  ASSERT_TRUE(table.Insert(entry).ok());
  entry.key2 = 2;  // same key, different key2: key2 is meaningless for exact
  EXPECT_FALSE(table.Insert(entry).ok());
  EXPECT_EQ(table.size(), 1u);
}

TEST(TableIndexTest, ExactRemoveSwapAndPopKeepsIndexConsistent) {
  RmtTable table("t", MatchKind::kExact, 64);
  for (uint64_t i = 0; i < 8; ++i) {
    TableEntry entry;
    entry.key = i;
    entry.action_index = static_cast<int32_t>(i);
    ASSERT_TRUE(table.Insert(entry).ok());
  }
  // Remove from the middle repeatedly; every survivor must stay reachable.
  ASSERT_TRUE(table.Remove(3).ok());
  ASSERT_TRUE(table.Remove(0).ok());
  ASSERT_TRUE(table.Remove(7).ok());
  EXPECT_EQ(table.size(), 5u);
  for (uint64_t key : {1ull, 2ull, 4ull, 5ull, 6ull}) {
    const TableEntry* hit = table.Peek(key);
    ASSERT_NE(hit, nullptr) << key;
    EXPECT_EQ(hit->action_index, static_cast<int32_t>(key));
  }
  for (uint64_t key : {0ull, 3ull, 7ull}) {
    EXPECT_EQ(table.Peek(key), nullptr) << key;
  }
  EXPECT_FALSE(table.Remove(3).ok());  // already gone
}

// --- "rkd.table.*" telemetry export ---

TEST(TableTelemetryTest, HitsMissesAndEntryCountExported) {
  TelemetryRegistry telemetry;
  RmtTable table("demo", MatchKind::kExact, 16);
  table.BindTelemetry(&telemetry);
  TableEntry entry;
  entry.key = 1;
  ASSERT_TRUE(table.Insert(entry).ok());
  EXPECT_EQ(telemetry.GetGauge("rkd.table.demo.entries")->value(), 1.0);
  (void)table.Match(1);
  (void)table.Match(1);
  (void)table.Match(99);
  EXPECT_EQ(telemetry.GetCounter("rkd.table.demo.hits")->value(), 2u);
  EXPECT_EQ(telemetry.GetCounter("rkd.table.demo.misses")->value(), 1u);
  ASSERT_TRUE(table.Remove(1).ok());
  EXPECT_EQ(telemetry.GetGauge("rkd.table.demo.entries")->value(), 0.0);
}

// --- FireBatch vs N single Fires ---

// One full datapath stack (registry + control plane + installed program) so
// a Fire-driven copy and a FireBatch-driven copy start bit-identical.
struct DispatchStack {
  HookRegistry hooks;
  ControlPlane control_plane{&hooks};
  HookId hook = kInvalidHook;
  ControlPlane::ProgramHandle handle = -1;

  void Build() {
    Result<HookId> id = hooks.Register("test.hook", HookKind::kGeneric);
    ASSERT_TRUE(id.ok());
    hook = *id;

    Assembler sum("sum", HookKind::kGeneric);
    sum.Mov(0, 1);
    sum.Add(0, 2);
    sum.Exit();
    Assembler seven("seven", HookKind::kGeneric);
    seven.MovImm(0, 7);
    seven.Exit();

    RmtProgramSpec spec;
    spec.name = "batch_prog";
    RmtTableSpec table;
    table.name = "batch_tab";
    table.hook_point = "test.hook";
    table.actions.push_back(std::move(sum.Build()).value());
    table.actions.push_back(std::move(seven.Build()).value());
    table.default_action = 0;
    TableEntry special;  // key 3 runs the constant action instead
    special.key = 3;
    special.action_index = 1;
    table.initial_entries.push_back(special);
    TableEntry inherit;  // key 5 matches but inherits the default action
    inherit.key = 5;
    inherit.action_index = -1;
    table.initial_entries.push_back(inherit);
    spec.tables.push_back(std::move(table));
    Result<ControlPlane::ProgramHandle> installed =
        control_plane.Install(spec, ExecTier::kJit);
    ASSERT_TRUE(installed.ok()) << installed.status().message();
    handle = *installed;
  }
};

std::vector<HookEvent> MakeEvents(size_t n) {
  std::vector<HookEvent> events;
  for (size_t i = 0; i < n; ++i) {
    events.emplace_back(i % 8, std::initializer_list<int64_t>{static_cast<int64_t>(i * 3)});
  }
  return events;
}

TEST(FireBatchTest, ResultsMatchSingleFires) {
  DispatchStack single_stack;
  single_stack.Build();
  DispatchStack batch_stack;
  batch_stack.Build();

  const std::vector<HookEvent> events = MakeEvents(64);
  std::vector<int64_t> single_results;
  for (const HookEvent& event : events) {
    single_results.push_back(single_stack.hooks.Fire(
        single_stack.hook, event.key,
        std::span<const int64_t>(event.args.data(), event.num_args)));
  }
  std::vector<int64_t> batch_results(events.size(), 0);
  batch_stack.hooks.FireBatch(batch_stack.hook, events, batch_results);
  ASSERT_EQ(single_results.size(), batch_results.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(single_results[i], batch_results[i]) << "event " << i;
  }
  // key 3 took the constant action, key 5 inherited the default.
  EXPECT_EQ(batch_results[3], 7);
  EXPECT_EQ(batch_results[5], 5 + 5 * 3);
}

TEST(FireBatchTest, CountsActionsAndFiresLikeSingleFires) {
  DispatchStack single_stack;
  single_stack.Build();
  DispatchStack batch_stack;
  batch_stack.Build();

  const std::vector<HookEvent> events = MakeEvents(32);
  for (const HookEvent& event : events) {
    (void)single_stack.hooks.Fire(
        single_stack.hook, event.key,
        std::span<const int64_t>(event.args.data(), event.num_args));
  }
  std::vector<int64_t> results(events.size());
  batch_stack.hooks.FireBatch(batch_stack.hook, events, results);

  auto& single_t = single_stack.control_plane.telemetry();
  auto& batch_t = batch_stack.control_plane.telemetry();
  const std::string base = "rkd.hook.test.hook.";
  EXPECT_EQ(single_t.GetCounter(base + "fires")->value(),
            batch_t.GetCounter(base + "fires")->value());
  EXPECT_EQ(single_t.GetCounter(base + "actions_run")->value(),
            batch_t.GetCounter(base + "actions_run")->value());
  EXPECT_EQ(single_t.GetCounter(base + "exec_errors")->value(),
            batch_t.GetCounter(base + "exec_errors")->value());
  EXPECT_EQ(batch_t.GetCounter(base + "actions_run")->value(), 32u);
}

TEST(FireBatchTest, CanaryRoutingMatchesSingleFires) {
  DispatchStack single_stack;
  single_stack.Build();
  DispatchStack batch_stack;
  batch_stack.Build();

  const auto install_canary = [](DispatchStack& stack) {
    Assembler nine("nine", HookKind::kGeneric);
    nine.MovImm(0, 9);
    nine.Exit();
    RmtProgramSpec candidate;
    candidate.name = "canary_prog";
    RmtTableSpec table;
    table.name = "canary_tab";
    table.hook_point = "test.hook";
    table.actions.push_back(std::move(nine.Build()).value());
    table.default_action = 0;
    candidate.tables.push_back(std::move(table));
    ControlPlane::CanaryConfig config;
    config.canary_permille = 400;
    config.soak_min_execs = 1'000'000;  // keep soaking for the whole test
    Result<ControlPlane::RolloutId> rollout =
        stack.control_plane.InstallCanary(stack.handle, candidate, config);
    ASSERT_TRUE(rollout.ok()) << rollout.status().message();
  };
  install_canary(single_stack);
  install_canary(batch_stack);

  // Both stacks start at fire seq 0; FireBatch reserves the same dense seq
  // range N single Fires would consume, so the permille routing must agree
  // event for event. 1200 events span a full seq%1000 cycle, so both rollout
  // arms are guaranteed traffic.
  const std::vector<HookEvent> events = MakeEvents(1200);
  std::vector<int64_t> single_results;
  for (const HookEvent& event : events) {
    single_results.push_back(single_stack.hooks.Fire(
        single_stack.hook, event.key,
        std::span<const int64_t>(event.args.data(), event.num_args)));
  }
  std::vector<int64_t> batch_results(events.size());
  batch_stack.hooks.FireBatch(batch_stack.hook, events, batch_results);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(single_results[i], batch_results[i]) << "event " << i;
  }
  // Routing actually split the batch: both arms' actions ran.
  bool saw_canary = false;
  bool saw_incumbent = false;
  for (int64_t result : batch_results) {
    saw_canary |= result == 9;
    saw_incumbent |= result != 9;
  }
  EXPECT_TRUE(saw_canary);
  EXPECT_TRUE(saw_incumbent);
}

TEST(FireBatchTest, EmptyBatchAndShortResultsAreNoOps) {
  DispatchStack stack;
  stack.Build();
  std::vector<int64_t> results;
  stack.hooks.FireBatch(stack.hook, {}, results);  // must not crash
  const std::vector<HookEvent> events = MakeEvents(4);
  std::vector<int64_t> short_results(2, 123);
  stack.hooks.FireBatch(stack.hook, events, short_results);
  // Undersized result span: the whole batch is rejected — results hold the
  // fallback sentinel and no action ran.
  EXPECT_EQ(short_results[0], kHookFallback);
  EXPECT_EQ(short_results[1], kHookFallback);
  EXPECT_EQ(
      stack.control_plane.telemetry().GetCounter("rkd.hook.test.hook.actions_run")->value(),
      0u);
}

}  // namespace
}  // namespace rkd
