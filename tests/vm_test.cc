// Unit tests for the interpreter tier: src/vm/vm.cc plus the context store
// and helper services it executes against.
#include <array>
#include <gtest/gtest.h>

#include "src/bytecode/assembler.h"
#include "src/vm/context_store.h"
#include "src/vm/helpers.h"
#include "src/vm/vm.h"

namespace rkd {
namespace {

// Runs a program with no environment, returning r0.
Result<int64_t> RunBare(const BytecodeProgram& program, std::span<const int64_t> args = {}) {
  const Interpreter interp(VmEnv{});
  return interp.Run(program, args);
}

BytecodeProgram MustBuild(Assembler& a) {
  Result<BytecodeProgram> program = a.Build();
  EXPECT_TRUE(program.ok()) << program.status();
  return std::move(program).value();
}

// --- Scalar ALU semantics ---

struct AluCase {
  const char* name;
  Opcode reg_op;
  Opcode imm_op;
  int64_t lhs;
  int64_t rhs;
  int64_t expected;
};

class AluTest : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluTest, RegisterForm) {
  const AluCase& c = GetParam();
  Assembler a("alu");
  a.MovImm(0, c.lhs).MovImm(2, c.rhs);
  switch (c.reg_op) {
    case Opcode::kAdd: a.Add(0, 2); break;
    case Opcode::kSub: a.Sub(0, 2); break;
    case Opcode::kMul: a.Mul(0, 2); break;
    case Opcode::kDiv: a.Div(0, 2); break;
    case Opcode::kMod: a.Mod(0, 2); break;
    case Opcode::kAnd: a.And(0, 2); break;
    case Opcode::kOr: a.Or(0, 2); break;
    case Opcode::kXor: a.Xor(0, 2); break;
    case Opcode::kShl: a.Shl(0, 2); break;
    case Opcode::kShr: a.Shr(0, 2); break;
    case Opcode::kAshr: a.Ashr(0, 2); break;
    default: FAIL() << "unexpected opcode";
  }
  a.Exit();
  const BytecodeProgram program = MustBuild(a);
  Result<int64_t> result = RunBare(program);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(*result, c.expected) << c.name;
}

TEST_P(AluTest, ImmediateForm) {
  const AluCase& c = GetParam();
  Assembler a("alu_imm");
  a.MovImm(0, c.lhs);
  switch (c.imm_op) {
    case Opcode::kAddImm: a.AddImm(0, c.rhs); break;
    case Opcode::kSubImm: a.SubImm(0, c.rhs); break;
    case Opcode::kMulImm: a.MulImm(0, c.rhs); break;
    case Opcode::kDivImm: a.DivImm(0, c.rhs); break;
    case Opcode::kModImm: a.ModImm(0, c.rhs); break;
    case Opcode::kAndImm: a.AndImm(0, c.rhs); break;
    case Opcode::kOrImm: a.OrImm(0, c.rhs); break;
    case Opcode::kXorImm: a.XorImm(0, c.rhs); break;
    case Opcode::kShlImm: a.ShlImm(0, c.rhs); break;
    case Opcode::kShrImm: a.ShrImm(0, c.rhs); break;
    case Opcode::kAshrImm: a.AshrImm(0, c.rhs); break;
    default: FAIL() << "unexpected opcode";
  }
  a.Exit();
  const BytecodeProgram program = MustBuild(a);
  Result<int64_t> result = RunBare(program);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(*result, c.expected) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, AluTest,
    ::testing::Values(
        AluCase{"add", Opcode::kAdd, Opcode::kAddImm, 7, 5, 12},
        AluCase{"add_negative", Opcode::kAdd, Opcode::kAddImm, -7, 5, -2},
        AluCase{"sub", Opcode::kSub, Opcode::kSubImm, 7, 5, 2},
        AluCase{"mul", Opcode::kMul, Opcode::kMulImm, -3, 6, -18},
        AluCase{"div", Opcode::kDiv, Opcode::kDivImm, 17, 5, 3},
        AluCase{"div_negative", Opcode::kDiv, Opcode::kDivImm, -17, 5, -3},
        AluCase{"div_by_zero_is_zero", Opcode::kDiv, Opcode::kDivImm, 17, 0, 0},
        AluCase{"mod", Opcode::kMod, Opcode::kModImm, 17, 5, 2},
        AluCase{"mod_by_zero_is_zero", Opcode::kMod, Opcode::kModImm, 17, 0, 0},
        AluCase{"and", Opcode::kAnd, Opcode::kAndImm, 0b1100, 0b1010, 0b1000},
        AluCase{"or", Opcode::kOr, Opcode::kOrImm, 0b1100, 0b1010, 0b1110},
        AluCase{"xor", Opcode::kXor, Opcode::kXorImm, 0b1100, 0b1010, 0b0110},
        AluCase{"shl", Opcode::kShl, Opcode::kShlImm, 3, 4, 48},
        AluCase{"shl_masked", Opcode::kShl, Opcode::kShlImm, 1, 65, 2},
        AluCase{"shr_logical", Opcode::kShr, Opcode::kShrImm, -8, 60, 15},
        AluCase{"ashr_arithmetic", Opcode::kAshr, Opcode::kAshrImm, -8, 2, -2}),
    [](const ::testing::TestParamInfo<AluCase>& info) { return info.param.name; });

TEST(VmTest, MovAndNeg) {
  Assembler a("movneg");
  a.MovImm(3, 41).Mov(0, 3).Neg(0).Exit();
  Result<int64_t> result = RunBare(MustBuild(a));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, -41);
}

TEST(VmTest, ArgumentsArriveInR1ToR5) {
  Assembler a("args");
  a.MovImm(0, 0);
  for (int reg = 1; reg <= 5; ++reg) {
    a.Add(0, reg);
  }
  a.Exit();
  const std::array<int64_t, 5> args{1, 10, 100, 1000, 10000};
  Result<int64_t> result = RunBare(MustBuild(a), args);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 11111);
}

TEST(VmTest, TooManyArgumentsRejected) {
  Assembler a("args6");
  a.MovImm(0, 0).Exit();
  const std::array<int64_t, 6> args{};
  Result<int64_t> result = RunBare(MustBuild(a), args);
  EXPECT_FALSE(result.ok());
}

// --- Branches ---

struct BranchCase {
  const char* name;
  Opcode imm_op;
  int64_t lhs;
  int64_t imm;
  bool taken;
};

class BranchTest : public ::testing::TestWithParam<BranchCase> {};

TEST_P(BranchTest, ImmediateCondition) {
  const BranchCase& c = GetParam();
  Assembler a("branch");
  auto taken = a.NewLabel();
  a.MovImm(3, c.lhs);
  switch (c.imm_op) {
    case Opcode::kJeqImm: a.JeqImm(3, c.imm, taken); break;
    case Opcode::kJneImm: a.JneImm(3, c.imm, taken); break;
    case Opcode::kJltImm: a.JltImm(3, c.imm, taken); break;
    case Opcode::kJleImm: a.JleImm(3, c.imm, taken); break;
    case Opcode::kJgtImm: a.JgtImm(3, c.imm, taken); break;
    case Opcode::kJgeImm: a.JgeImm(3, c.imm, taken); break;
    case Opcode::kJsetImm: a.JsetImm(3, c.imm, taken); break;
    default: FAIL();
  }
  auto end = a.NewLabel();
  a.MovImm(0, 100);  // fall-through path
  a.Ja(end);
  a.Bind(taken);
  a.MovImm(0, 200);  // taken path
  a.Bind(end);
  a.Exit();
  Result<int64_t> result = RunBare(MustBuild(a));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, c.taken ? 200 : 100) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Conditions, BranchTest,
    ::testing::Values(
        BranchCase{"jeq_taken", Opcode::kJeqImm, 5, 5, true},
        BranchCase{"jeq_not", Opcode::kJeqImm, 5, 6, false},
        BranchCase{"jne_taken", Opcode::kJneImm, 5, 6, true},
        BranchCase{"jne_not", Opcode::kJneImm, 5, 5, false},
        BranchCase{"jlt_taken", Opcode::kJltImm, -1, 0, true},
        BranchCase{"jlt_not_equal", Opcode::kJltImm, 0, 0, false},
        BranchCase{"jle_taken_equal", Opcode::kJleImm, 0, 0, true},
        BranchCase{"jgt_taken", Opcode::kJgtImm, 1, 0, true},
        BranchCase{"jgt_not", Opcode::kJgtImm, 0, 0, false},
        BranchCase{"jge_taken_equal", Opcode::kJgeImm, 0, 0, true},
        BranchCase{"jset_taken", Opcode::kJsetImm, 0b110, 0b010, true},
        BranchCase{"jset_not", Opcode::kJsetImm, 0b100, 0b010, false}),
    [](const ::testing::TestParamInfo<BranchCase>& info) { return info.param.name; });

TEST(VmTest, RegisterFormBranchComparesRegisters) {
  Assembler a("branch_reg");
  auto yes = a.NewLabel();
  auto end = a.NewLabel();
  a.MovImm(2, 9).MovImm(3, 9);
  a.Jeq(2, 3, yes);
  a.MovImm(0, 0);
  a.Ja(end);
  a.Bind(yes);
  a.MovImm(0, 1);
  a.Bind(end);
  a.Exit();
  Result<int64_t> result = RunBare(MustBuild(a));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 1);
}

// --- Stack ---

TEST(VmTest, StackStoreLoadRoundTrip) {
  Assembler a("stack");
  a.MovImm(2, 0xdeadbeef);
  a.StStack(-8, 2);
  a.StStackImm(-16, 77);
  a.LdStack(0, -8);
  a.LdStack(3, -16);
  a.Add(0, 3);
  a.Exit();
  Result<int64_t> result = RunBare(MustBuild(a));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 0xdeadbeef + 77);
}

TEST(VmTest, DeepestStackSlotIsAccessible) {
  Assembler a("stack_deep");
  a.StStackImm(-kStackSize, 123);
  a.LdStack(0, -kStackSize);
  a.Exit();
  Result<int64_t> result = RunBare(MustBuild(a));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 123);
}

TEST(VmTest, OutOfBoundsStackFaults) {
  Assembler a("stack_oob");
  a.StStackImm(-(kStackSize + 8), 1);
  a.MovImm(0, 0).Exit();
  Result<int64_t> result = RunBare(MustBuild(a));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(VmTest, UnalignedStackFaults) {
  Assembler a("stack_unaligned");
  a.StStackImm(-12, 1);
  a.MovImm(0, 0).Exit();
  Result<int64_t> result = RunBare(MustBuild(a));
  ASSERT_FALSE(result.ok());
}

// --- Execution context ---

TEST(VmTest, CtxtStoreCreatesAndLoads) {
  ContextStore ctxt;
  VmEnv env;
  env.ctxt = &ctxt;
  const Interpreter interp(env);

  Assembler a("ctxt");
  a.MovImm(2, 55);        // value
  a.StCtxt(1, 3, 2);      // ctxt[r1].slot3 = 55
  a.LdCtxt(0, 1, 3);
  a.Exit();
  const std::array<int64_t, 1> args{42};  // key
  Result<int64_t> result = interp.Run(MustBuild(a), args);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(*result, 55);
  ASSERT_NE(ctxt.Find(42), nullptr);
  EXPECT_EQ(ctxt.Find(42)->slots[3], 55);
}

TEST(VmTest, LdCtxtMissingKeyReadsZero) {
  ContextStore ctxt;
  VmEnv env;
  env.ctxt = &ctxt;
  const Interpreter interp(env);

  Assembler a("ctxt_miss");
  a.LdCtxt(0, 1, 0).Exit();
  const std::array<int64_t, 1> args{999};
  Result<int64_t> result = interp.Run(MustBuild(a), args);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 0);
  EXPECT_FALSE(ctxt.Contains(999));  // reads do not create entries
}

TEST(VmTest, MatchCtxtReportsPresence) {
  ContextStore ctxt;
  ctxt.FindOrCreate(7);
  VmEnv env;
  env.ctxt = &ctxt;
  const Interpreter interp(env);

  Assembler a("match");
  auto hit = a.NewLabel();
  auto end = a.NewLabel();
  a.MatchCtxt(2, 1);
  a.JeqImm(2, 1, hit);
  a.MovImm(0, 0);
  a.Ja(end);
  a.Bind(hit);
  a.MovImm(0, 1);
  a.Bind(end);
  a.Exit();
  const BytecodeProgram program = MustBuild(a);

  const std::array<int64_t, 1> present{7};
  const std::array<int64_t, 1> absent{8};
  EXPECT_EQ(*interp.Run(program, present), 1);
  EXPECT_EQ(*interp.Run(program, absent), 0);
}

// --- Vector ops ---

TEST(VmTest, ScalarValAndExtract) {
  Assembler a("lanes");
  a.VecZero(1);
  a.MovImm(2, 12345);
  a.ScalarVal(1, 9, 2);
  a.VecExtract(0, 1, 9);
  a.Exit();
  Result<int64_t> result = RunBare(MustBuild(a));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 12345);
}

TEST(VmTest, VecArgmaxFindsLargestLane) {
  Assembler a("argmax");
  a.VecZero(0);
  a.MovImm(2, 10);
  a.ScalarVal(0, 3, 2);
  a.MovImm(2, 99);
  a.ScalarVal(0, 17, 2);
  a.MovImm(2, 50);
  a.ScalarVal(0, 30, 2);
  a.VecArgmax(0, 0);
  a.Exit();
  Result<int64_t> result = RunBare(MustBuild(a));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 17);
}

TEST(VmTest, VecAddAndReluAreLaneWise) {
  Assembler a("vecadd");
  a.VecZero(0);
  a.VecZero(1);
  a.MovImm(2, -5);
  a.ScalarVal(0, 0, 2);
  a.MovImm(2, 3);
  a.ScalarVal(1, 0, 2);
  a.VecAdd(0, 1);           // lane0 = -2
  a.VecRelu(0, 0);          // lane0 = 0
  a.VecExtract(0, 0, 0);
  a.Exit();
  Result<int64_t> result = RunBare(MustBuild(a));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 0);
}

TEST(VmTest, MatMulAppliesTensor) {
  // 2x2 identity * [x, y] = [x, y] in Q16.16.
  TensorRegistry tensors;
  FixedMatrix identity(2, 2);
  identity.at(0, 0) = Fixed32::One().raw();
  identity.at(1, 1) = Fixed32::One().raw();
  const int64_t id = tensors.Add(identity);

  VmEnv env;
  env.tensors = &tensors;
  const Interpreter interp(env);

  Assembler a("matmul");
  a.VecZero(0);
  a.MovImm(2, 7 << 16);
  a.ScalarVal(0, 0, 2);
  a.MovImm(2, 9 << 16);
  a.ScalarVal(0, 1, 2);
  a.MatMul(1, 0, id);
  a.VecExtract(0, 1, 1);
  a.Exit();
  Result<int64_t> result = interp.Run(MustBuild(a), {});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(*result, 9 << 16);
}

TEST(VmTest, VecDotComputesQ16Product) {
  Assembler a("dot");
  a.VecZero(2);
  a.VecZero(3);
  a.MovImm(4, 3 << 16);
  a.ScalarVal(2, 0, 4);
  a.MovImm(4, 5 << 16);
  a.ScalarVal(3, 0, 4);
  a.VecDot(2, 3);    // r2 = 15 in Q16.16
  a.Mov(0, 2);
  a.Exit();
  Result<int64_t> result = RunBare(MustBuild(a));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 15ll << 16);
}

TEST(VmTest, MissingTensorFaultsInInterpreter) {
  Assembler a("no_tensor");
  a.VecZero(0);
  a.MatMul(1, 0, 5);
  a.MovImm(0, 0).Exit();
  Result<int64_t> result = RunBare(MustBuild(a));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

// --- Step budget / runtime safety ---

TEST(VmTest, StepBudgetStopsNonTerminatingProgram) {
  // Hand-build a backward jump (the assembler cannot express one with
  // labels bound after use, so craft the instruction directly).
  BytecodeProgram program;
  program.name = "loop";
  Instruction jump;
  jump.opcode = Opcode::kJa;
  jump.offset = -1;  // jump to itself
  program.code.push_back(jump);
  Instruction exit_insn;
  exit_insn.opcode = Opcode::kExit;
  program.code.push_back(exit_insn);

  VmConfig config;
  config.max_steps = 1000;
  const Interpreter interp(VmEnv{}, config);
  Result<int64_t> result = interp.Run(program, {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(VmTest, EmptyProgramRejected) {
  BytecodeProgram program;
  program.name = "empty";
  Result<int64_t> result = RunBare(program);
  EXPECT_FALSE(result.ok());
}

TEST(VmTest, OutOfRangeRegisterFaults) {
  BytecodeProgram program;
  program.name = "badreg";
  Instruction insn;
  insn.opcode = Opcode::kMovImm;
  insn.dst = kNumScalarRegs;  // r11 does not exist
  insn.imm = 1;
  program.code.push_back(insn);
  Instruction exit_insn;
  exit_insn.opcode = Opcode::kExit;
  program.code.push_back(exit_insn);
  Result<int64_t> result = RunBare(program);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(VmTest, RunStatsCountSteps) {
  Assembler a("stats");
  a.MovImm(0, 1).AddImm(0, 1).Exit();
  const Interpreter interp(VmEnv{});
  RunStats stats;
  Result<int64_t> result = interp.Run(MustBuild(a), {}, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.steps, 3u);
}

// --- Helpers through kCall ---

class HelperVmTest : public ::testing::Test {
 protected:
  HelperVmTest() {
    services_.now = [this] { return now_; };
    services_.ctxt = &ctxt_;
    services_.sample_ring = &ring_;
    services_.rate_limiter = &limiter_;
    services_.prediction_log = &log_;
    services_.prefetch_emit = [this](int64_t page, int64_t count) {
      for (int64_t i = 0; i < count; ++i) {
        emitted_.push_back(page + i);
      }
    };
    env_.ctxt = &ctxt_;
    env_.helpers = &services_;
  }

  Result<int64_t> Run(Assembler& a, std::span<const int64_t> args = {}) {
    const Interpreter interp(env_);
    return interp.Run(MustBuild(a), args);
  }

  uint64_t now_ = 0;
  ContextStore ctxt_;
  RingMap ring_{16};
  RateLimiter limiter_{4, 1};
  PredictionLog log_;
  std::vector<int64_t> emitted_;
  HelperServices services_;
  VmEnv env_;
};

TEST_F(HelperVmTest, GetTimeReturnsClock) {
  now_ = 777;
  Assembler a("time");
  a.Call(HelperId::kGetTime).Exit();
  const std::array<int64_t, 5> args{0, 0, 0, 0, 0};
  Result<int64_t> result = Run(a, args);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 777);
}

TEST_F(HelperVmTest, RecordSampleFeedsRing) {
  Assembler a("sample");
  a.Call(HelperId::kRecordSample).Exit();
  const std::array<int64_t, 5> args{42, 99, 0, 0, 0};
  ASSERT_TRUE(Run(a, args).ok());
  auto record = ring_.Pop();
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->key, 42);
  EXPECT_EQ(record->value, 99);
}

TEST_F(HelperVmTest, HistoryAppendGetLen) {
  Assembler a("history");
  a.Call(HelperId::kHistoryAppend);       // append r2 to history[r1]
  a.MovImm(2, 0);
  a.Call(HelperId::kHistoryGet);          // newest element
  a.Mov(6, 0);
  a.Call(HelperId::kHistoryLen);
  a.Mul(0, 6);                            // len * newest
  a.Exit();
  const std::array<int64_t, 5> args{5, 31, 0, 0, 0};
  Result<int64_t> result = Run(a, args);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 31);  // len 1 * value 31
}

TEST_F(HelperVmTest, RateLimiterDeniesAfterCapacity) {
  Assembler a("limit");
  a.MovImm(2, 3);
  a.Call(HelperId::kRateLimitCheck);  // consume 3 of 4
  a.Mov(6, 0);
  a.Call(HelperId::kRateLimitCheck);  // needs 3, only 1 left -> denied
  a.Add(0, 6);
  a.Exit();
  const std::array<int64_t, 5> args{1, 0, 0, 0, 0};
  Result<int64_t> result = Run(a, args);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 1);  // first allowed (1) + second denied (0)
}

TEST_F(HelperVmTest, PrefetchEmitReachesSink) {
  Assembler a("emit");
  a.MovImm(1, 100).MovImm(2, 3);
  a.Call(HelperId::kPrefetchEmit);
  a.Exit();
  ASSERT_TRUE(Run(a, std::array<int64_t, 5>{0, 0, 0, 0, 0}).ok());
  EXPECT_EQ(emitted_, (std::vector<int64_t>{100, 101, 102}));
}

TEST_F(HelperVmTest, PredictionLogRecordsAndResolves) {
  Assembler a("log");
  a.Call(HelperId::kPredictionLog);
  a.Exit();
  ASSERT_TRUE(Run(a, std::array<int64_t, 5>{7, 1234, 0, 0, 0}).ok());
  log_.Resolve(7, 1234);
  EXPECT_EQ(log_.total_resolved(), 1u);
  EXPECT_EQ(log_.total_correct(), 1u);
  log_.Record(7, 1);
  log_.Resolve(7, 2);
  EXPECT_NEAR(log_.accuracy(), 0.5, 1e-9);
}

TEST_F(HelperVmTest, UnknownHelperFaults) {
  BytecodeProgram program;
  program.name = "badcall";
  Instruction call;
  call.opcode = Opcode::kCall;
  call.imm = 999;
  program.code.push_back(call);
  Instruction exit_insn;
  exit_insn.opcode = Opcode::kExit;
  program.code.push_back(exit_insn);
  const Interpreter interp(env_);
  const std::array<int64_t, 5> args{0, 0, 0, 0, 0};
  Result<int64_t> result = interp.Run(program, args);
  EXPECT_FALSE(result.ok());
}

// --- Context store internals ---

TEST(ContextStoreTest, HistoryRingWrapsAround) {
  ContextEntry entry;
  for (int i = 0; i < kCtxtHistoryCapacity + 10; ++i) {
    entry.AppendHistory(i);
  }
  EXPECT_EQ(entry.history_len, static_cast<uint32_t>(kCtxtHistoryCapacity));
  EXPECT_EQ(entry.HistoryAt(0), kCtxtHistoryCapacity + 9);  // newest
  EXPECT_EQ(entry.HistoryAt(kCtxtHistoryCapacity - 1), 10); // oldest retained
  EXPECT_EQ(entry.HistoryAt(kCtxtHistoryCapacity), 0);      // out of range
}

TEST(ContextStoreTest, CapacityBackPressure) {
  ContextStore store(2);
  EXPECT_NE(store.FindOrCreate(1), nullptr);
  EXPECT_NE(store.FindOrCreate(2), nullptr);
  EXPECT_EQ(store.FindOrCreate(3), nullptr);  // full
  EXPECT_NE(store.FindOrCreate(1), nullptr);  // existing keys still work
  EXPECT_TRUE(store.Erase(1));
  EXPECT_NE(store.FindOrCreate(3), nullptr);  // space freed
}

TEST(ContextStoreTest, ForEachVisitsAllEntries) {
  ContextStore store;
  store.FindOrCreate(1)->slots[0] = 10;
  store.FindOrCreate(2)->slots[0] = 20;
  int64_t total = 0;
  store.ForEach([&](uint64_t, const ContextEntry& entry) { total += entry.slots[0]; });
  EXPECT_EQ(total, 30);
}

}  // namespace
}  // namespace rkd
