// Concurrency tests for the model hot-swap path: the single synchronization
// point between the training plane and the inference path (section 3.2's
// "models periodically quantized and pushed to the kernel") — and for the
// fire path under concurrent fault injection.
#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "src/base/failpoints.h"
#include "src/bytecode/assembler.h"
#include "src/ml/decision_tree.h"
#include "src/ml/model_registry.h"
#include "src/ml/online.h"
#include "src/rmt/control_plane.h"

namespace rkd {
namespace {

ModelPtr MakeConstantTree(int32_t label) {
  Dataset data(1);
  data.Add(std::array<int32_t, 1>{0}, label);
  data.Add(std::array<int32_t, 1>{1}, label);
  return std::make_shared<DecisionTree>(std::move(DecisionTree::Train(data)).value());
}

TEST(ConcurrencyTest, ModelSlotReadersSurviveContinuousSwaps) {
  ModelSlot slot;
  slot.Set(MakeConstantTree(0));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<bool> failed{false};

  // Four reader threads continuously snapshotting and predicting. Each takes
  // the coherent {model, version} pair: versions must never run backwards
  // within a thread, and the slot is never observably empty.
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      const std::array<int32_t, 1> x{0};
      uint64_t last_version = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const ModelSlot::VersionedModel vm = slot.Snapshot();
        if (vm.model == nullptr || vm.version == 0 || vm.version > 501 ||
            vm.version < last_version) {
          failed.store(true);
          return;
        }
        last_version = vm.version;
        const int64_t prediction = vm.model->Predict(x);
        if (prediction < 0 || prediction > 1000) {
          failed.store(true);
          return;
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // The "training plane": swap in a fresh model as fast as possible.
  std::thread writer([&] {
    for (int32_t version = 1; version <= 500; ++version) {
      slot.Set(MakeConstantTree(version % 7));
    }
    stop.store(true);
  });

  writer.join();
  for (std::thread& reader : readers) {
    reader.join();
  }
  EXPECT_FALSE(failed.load());
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(slot.version(), 501u);  // initial set + 500 swaps
}

TEST(ConcurrencyTest, SnapshotOutlivesSwap) {
  ModelSlot slot;
  slot.Set(MakeConstantTree(3));
  const ModelPtr snapshot = slot.Get();
  slot.Set(nullptr);  // the slot is emptied...
  // ...but the in-flight reader's snapshot still predicts.
  EXPECT_EQ(snapshot->Predict(std::array<int32_t, 1>{0}), 3);
}

TEST(ConcurrencyTest, RegistryInstallUnderConcurrentGet) {
  ModelRegistry registry;
  const int64_t slot = registry.AddSlot();
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};

  std::thread reader([&] {
    const std::array<int32_t, 1> x{0};
    while (!stop.load(std::memory_order_relaxed)) {
      const ModelPtr model = registry.Get(slot);
      if (model != nullptr && model->Predict(x) > 100) {
        failed.store(true);
      }
    }
  });
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(registry.Install(slot, MakeConstantTree(i % 5)).ok());
  }
  stop.store(true);
  reader.join();
  EXPECT_FALSE(failed.load());
}

TEST(ConcurrencyTest, TrainerPublishesWhileReadersPredict) {
  ModelSlot slot;
  WindowedTrainerConfig config;
  config.window_size = 40;
  config.min_train_samples = 10;
  WindowedTreeTrainer trainer(1, &slot, config);

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::thread reader([&] {
    const std::array<int32_t, 1> x{75};
    while (!stop.load(std::memory_order_relaxed)) {
      const ModelPtr model = slot.Get();
      if (model != nullptr) {
        const int64_t p = model->Predict(x);
        if (p != 0 && p != 1) {
          failed.store(true);
        }
      }
    }
  });

  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    const std::array<int32_t, 1> row{static_cast<int32_t>(rng.NextInt(0, 100))};
    trainer.Observe(row, row[0] > 50 ? 1 : 0);
  }
  stop.store(true);
  reader.join();
  EXPECT_FALSE(failed.load());
  EXPECT_GE(trainer.windows_trained(), 40u);
  EXPECT_EQ(slot.Get()->Predict(std::array<int32_t, 1>{75}), 1);
}

TEST(ConcurrencyTest, ConcurrentFiresUnderIntermittentFaultsDegradeCleanly) {
  HookRegistry hooks;
  const HookId hook = *hooks.Register("generic.hook", HookKind::kGeneric);
  ControlPlane cp(&hooks);

  // A helper-calling action (the "vm.helper" failpoint site): key + 100.
  Assembler a("timed_add", HookKind::kGeneric);
  a.Call(HelperId::kGetTime);
  a.Mov(0, 1).AddImm(0, 100).Exit();
  RmtProgramSpec spec;
  spec.name = "faulty_prog";
  RmtTableSpec table;
  table.name = "tab";
  table.hook_point = "generic.hook";
  table.actions.push_back(std::move(a.Build()).value());
  table.default_action = 0;
  spec.tables.push_back(std::move(table));
  ASSERT_TRUE(cp.Install(spec).ok());

  // Every 7th helper call across all threads faults.
  FailpointSpec fault;
  fault.mode = FailpointMode::kEveryNth;
  fault.n = 7;
  fault.force_error = true;
  ScopedFailpoint guard("vm.helper", fault);

  constexpr int kThreads = 4;
  constexpr int kFiresPerThread = 500;
  std::atomic<uint64_t> fallbacks{0};
  std::atomic<bool> bad_result{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kFiresPerThread; ++i) {
        const int64_t result = hooks.Fire(hook, 7);
        if (result == kHookFallback) {
          fallbacks.fetch_add(1, std::memory_order_relaxed);
        } else if (result != 107) {
          bad_result.store(true);  // a fault must never corrupt a result
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  // Every fire either produced the correct value or degraded to the stock
  // fallback; the counter-based trigger makes the totals exact even under
  // interleaving.
  EXPECT_FALSE(bad_result.load());
  constexpr uint64_t kTotal = kThreads * kFiresPerThread;
  constexpr uint64_t kExpectedFaults = kTotal / 7;
  EXPECT_EQ(fallbacks.load(), kExpectedFaults);
  EXPECT_EQ(guard.point().triggers(), kExpectedFaults);
  EXPECT_EQ(hooks.MetricsOf(hook).fires(), kTotal);
  EXPECT_EQ(hooks.MetricsOf(hook).exec_errors(), kExpectedFaults);
  TelemetryRegistry& telemetry = hooks.telemetry();
  EXPECT_EQ(telemetry.GetCounter("rkd.guard.prog.faulty_prog.execs")->value(), kTotal);
  EXPECT_EQ(telemetry.GetCounter("rkd.guard.prog.faulty_prog.exec_errors")->value(),
            kExpectedFaults);
}

// The epoch-reclamation stress the redesign exists for: N readers firing a
// hook flat-out while one reconfigurer exercises every write path — table
// entry churn (snapshot republish), model installs (slot republish), and
// suspend/resume (attachment-list republish, i.e. detach mid-fire). Every
// fire must return the correct value or the stock fallback, never garbage
// and never a crash; under TSan this also proves the grace periods are
// properly ordered.
TEST(ConcurrencyTest, ReadersSurviveContinuousReconfiguration) {
  HookRegistry hooks;
  const HookId hook = *hooks.Register("generic.reconfig", HookKind::kGeneric);
  ControlPlane cp(&hooks);

  Assembler a("add100", HookKind::kGeneric);
  a.Mov(0, 1).AddImm(0, 100).Exit();
  RmtProgramSpec spec;
  spec.name = "reconfig_prog";
  spec.model_slots = 1;
  RmtTableSpec table;
  table.name = "tab";
  table.hook_point = "generic.reconfig";
  table.actions.push_back(std::move(a.Build()).value());
  table.default_action = -1;  // a miss is a deliberate no-op -> fallback
  TableEntry seed;
  seed.key = 7;
  seed.action_index = 0;
  table.initial_entries.push_back(seed);
  spec.tables.push_back(std::move(table));
  Result<ControlPlane::ProgramHandle> handle = cp.Install(spec);
  ASSERT_TRUE(handle.ok());

  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<bool> bad{false};
  std::atomic<uint64_t> fires{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const int64_t result = hooks.Fire(hook, 7);
        if (result != 107 && result != kHookFallback) {
          bad.store(true);  // a reconfiguration corrupted a live fire
          return;
        }
        fires.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::atomic<bool> reconfig_failed{false};
  std::thread reconfigurer([&] {
    for (int round = 0; round < 200 && !reconfig_failed.load(); ++round) {
      if (!cp.RemoveEntry(*handle, "tab", 7).ok()) {
        reconfig_failed.store(true);
      }
      TableEntry entry;
      entry.key = 7;
      entry.action_index = 0;
      if (!cp.AddEntry(*handle, "tab", entry).ok()) {
        reconfig_failed.store(true);
      }
      if (!cp.InstallModel(*handle, 0, MakeConstantTree(round % 3)).ok()) {
        reconfig_failed.store(true);
      }
      if (round % 10 == 9) {
        if (!cp.Suspend(*handle).ok() || !cp.Resume(*handle).ok()) {
          reconfig_failed.store(true);
        }
      }
    }
    stop.store(true);
  });

  reconfigurer.join();
  for (std::thread& reader : readers) {
    reader.join();
  }
  EXPECT_FALSE(bad.load());
  EXPECT_FALSE(reconfig_failed.load());
  EXPECT_GT(fires.load(), 0u);
  // Uninstall runs the grace period (Synchronize) before the program dies.
  ASSERT_TRUE(cp.Uninstall(*handle).ok());
}

// Tier-3 deopt under reconfiguration: a churn thread rewrites the folded
// map cell, hot-swaps the folded model, mutates the table, and keeps
// respecializing via tiering ticks — while reader threads fire a promoted
// program. Every observable result must come from the closed set built out
// of the published map values and model labels: a result mixing a retired
// constant with state it was never published against would be a stale-fold
// escape. Exercised under TSan in CI (the specialized stream, its guards,
// and the epoch retire/publish protocol all race here by design).
TEST(ConcurrencyTest, Tier3DeoptUnderReconfigurationStress) {
  HookRegistry hooks;
  const HookId hook = *hooks.Register("generic.tier3", HookKind::kGeneric);
  ControlPlane cp(&hooks);

  // r0 = map0[4] + model(vzero)*100 + key. The map cell cycles {10, 20},
  // the model label cycles {1, 2}; the key is pinned at 7. Every tier and
  // every (map, model) version pair lands in a 4-value closed set; the two
  // dimensions deopt independently so mixed pairs are legal, values outside
  // the published sets are not.
  Assembler a("guarded", HookKind::kGeneric);
  a.DeclareMaps(1).DeclareModels(1);
  a.MovImm(2, 4);
  a.MapLookup(0, 2, 0);
  a.VecZero(0);
  a.MlCall(3, 0, 0);
  a.MulImm(3, 100);
  a.Add(0, 3);
  a.Add(0, 1);
  a.Exit();

  RmtProgramSpec spec;
  spec.name = "tier3_stress_prog";
  spec.model_slots = 1;
  MapSpec map_spec;
  map_spec.kind = MapKind::kArray;
  map_spec.capacity = 16;
  spec.maps.push_back(map_spec);
  RmtTableSpec table;
  table.name = "tab";
  table.hook_point = "generic.tier3";
  table.actions.push_back(std::move(a.Build()).value());
  table.default_action = 0;
  spec.tables.push_back(std::move(table));
  Result<ControlPlane::ProgramHandle> handle = cp.Install(spec);
  ASSERT_TRUE(handle.ok()) << handle.status();
  ASSERT_TRUE(cp.WriteMap(*handle, 0, 4, 10).ok());
  ASSERT_TRUE(cp.InstallModel(*handle, 0, MakeConstantTree(1)).ok());

  ControlPlane::TieringConfig tiering;
  tiering.hot_execs = 1;
  ASSERT_TRUE(cp.EnableTiering(*handle, tiering).ok());
  for (int i = 0; i < 4; ++i) {
    (void)hooks.Fire(hook, 7);
  }
  ASSERT_TRUE(cp.TickTiering(*handle).ok());  // promoted before the storm

  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<bool> bad{false};
  std::atomic<uint64_t> fires{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const int64_t result = hooks.Fire(hook, 7);
        // map in {10, 20} x label in {1, 2}, plus the key: {117, 127, 217, 227}.
        if (result != 117 && result != 127 && result != 217 && result != 227) {
          bad.store(true);  // a stale folded constant escaped the guards
          return;
        }
        fires.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::atomic<bool> churn_failed{false};
  std::thread churner([&] {
    for (int round = 0; round < 200 && !churn_failed.load(); ++round) {
      // Rewrite the folded cell (kMapWrite deopts)...
      if (!cp.WriteMap(*handle, 0, 4, round % 2 == 0 ? 20 : 10).ok()) {
        churn_failed.store(true);
      }
      // ...swap the folded model (kModelInstall deopts)...
      if (round % 3 == 0 &&
          !cp.InstallModel(*handle, 0, MakeConstantTree(round % 2 == 0 ? 2 : 1)).ok()) {
        churn_failed.store(true);
      }
      // ...and churn the table snapshot (kTableMutation deopts).
      if (round % 5 == 0) {
        TableEntry entry;
        entry.key = 7;
        entry.action_index = 0;
        if (!cp.AddEntry(*handle, "tab", entry).ok() ||
            !cp.RemoveEntry(*handle, "tab", 7).ok()) {
          churn_failed.store(true);
        }
      }
      // Respecialize at the new snapshot every few rounds, so the storm
      // alternates between windows of live tier-3 guards and multi-round
      // stale windows where every fire must deopt to tier 2.
      if (round % 4 == 3 && !cp.TickTiering(*handle).ok()) {
        churn_failed.store(true);
      }
    }
    stop.store(true);
  });

  churner.join();
  for (std::thread& reader : readers) {
    reader.join();
  }
  EXPECT_FALSE(bad.load());
  EXPECT_FALSE(churn_failed.load());
  EXPECT_GT(fires.load(), 0u);

  // Quiesce: respecialize at the final snapshot and verify the stream is
  // live and correct, then drive the deopt boundary deterministically — a
  // write with no tick leaves the guard stale, so the next fire MUST refuse
  // the stream, fall back to tier 2, and read the new value.
  Result<ControlPlane::TierReport> final_tick = cp.TickTiering(*handle);
  ASSERT_TRUE(final_tick.ok());
  EXPECT_EQ(final_tick->tier, 3);
  const int64_t settled = hooks.Fire(hook, 7);
  EXPECT_TRUE(settled == 117 || settled == 127 || settled == 217 || settled == 227);
  InstalledProgram* program = cp.Get(*handle);
  ASSERT_NE(program, nullptr);
  EXPECT_GT(program->tier3_stats().execs.value(), 0u);

  const uint64_t deopts_before = program->tier3_stats().total_deopts();
  ASSERT_TRUE(cp.WriteMap(*handle, 0, 4, 20).ok());
  const int64_t label = settled / 100;  // model dimension is untouched
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(hooks.Fire(hook, 7), 27 + label * 100);
  }
  EXPECT_GT(program->tier3_stats().total_deopts(), deopts_before);
  ASSERT_TRUE(cp.Uninstall(*handle).ok());
}

}  // namespace
}  // namespace rkd
