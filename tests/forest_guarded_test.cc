// Tests for the random forest and the model-safety guardrail wrapper.
#include <array>
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/ml/forest.h"
#include "src/ml/guarded.h"
#include "src/ml/quantize.h"

namespace rkd {
namespace {

// Noisy threshold task: label flips with 10% probability.
Dataset NoisyData(Rng& rng, size_t n = 600) {
  Dataset data(4);
  for (size_t i = 0; i < n; ++i) {
    std::array<int32_t, 4> row;
    for (int32_t& v : row) {
      v = static_cast<int32_t>(rng.NextInt(0, 100));
    }
    int32_t label = row[0] + row[2] > 100 ? 1 : 0;
    if (rng.NextBool(0.1)) {
      label = 1 - label;
    }
    data.Add(row, label);
  }
  return data;
}

TEST(RandomForestTest, LearnsAndVotesDeterministically) {
  Rng rng(1);
  const Dataset data = NoisyData(rng);
  Result<RandomForest> forest = RandomForest::Train(data);
  ASSERT_TRUE(forest.ok()) << forest.status();
  EXPECT_EQ(forest->tree_count(), 8u);
  EXPECT_GE(forest->Evaluate(data), 0.85);
  // Deterministic: same seed, same predictions.
  Result<RandomForest> again = RandomForest::Train(data);
  ASSERT_TRUE(again.ok());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(forest->Predict(data.row(i)), again->Predict(data.row(i)));
  }
}

TEST(RandomForestTest, MoreRobustThanSingleTreeOnHeldOutNoise) {
  Rng rng(2);
  Dataset all = NoisyData(rng, 900);
  auto [train, test] = all.Split(0.33, rng);
  const DecisionTree tree = std::move(DecisionTree::Train(train)).value();
  ForestConfig config;
  config.num_trees = 16;
  const RandomForest forest = std::move(RandomForest::Train(train, config)).value();
  // The ensemble should be in the same league as (or better than) its base
  // learner out of sample, and well above chance, despite 10% label noise.
  EXPECT_GE(forest.Evaluate(test) + 0.05, tree.Evaluate(test));
  EXPECT_GE(forest.Evaluate(test), 0.7);
}

TEST(RandomForestTest, CostSumsTrees) {
  Rng rng(3);
  const Dataset data = NoisyData(rng, 300);
  ForestConfig config;
  config.num_trees = 4;
  const RandomForest forest = std::move(RandomForest::Train(data, config)).value();
  uint64_t comparisons = 0;
  for (const DecisionTree& tree : forest.trees()) {
    comparisons += tree.Cost().comparisons;
  }
  EXPECT_EQ(forest.Cost().comparisons, comparisons);
  EXPECT_EQ(forest.kind(), "random_forest");
}

TEST(RandomForestTest, ImportanceConcentratesOnInformativeFeatures) {
  Rng rng(4);
  const Dataset data = NoisyData(rng);
  const RandomForest forest = std::move(RandomForest::Train(data)).value();
  const std::vector<double> importance = forest.FeatureImportance();
  EXPECT_GT(importance[0] + importance[2], importance[1] + importance[3]);
}

TEST(RandomForestTest, InvalidConfigsRejected) {
  Dataset empty(2);
  EXPECT_FALSE(RandomForest::Train(empty).ok());
  Rng rng(5);
  const Dataset data = NoisyData(rng, 50);
  ForestConfig zero_trees;
  zero_trees.num_trees = 0;
  EXPECT_FALSE(RandomForest::Train(data, zero_trees).ok());
}

// A stub model producing scripted outputs.
class ScriptedModel final : public InferenceModel {
 public:
  explicit ScriptedModel(std::vector<int64_t> outputs) : outputs_(std::move(outputs)) {}
  int64_t Predict(std::span<const int32_t>) const override {
    const int64_t out = outputs_[index_ % outputs_.size()];
    ++index_;
    return out;
  }
  size_t num_features() const override { return 1; }
  ModelCost Cost() const override { return ModelCost{}; }
  std::string_view kind() const override { return "scripted"; }

 private:
  std::vector<int64_t> outputs_;
  mutable size_t index_ = 0;
};

TEST(GuardedModelTest, PassesInRangePredictionsThrough) {
  GuardrailConfig config;
  config.min_output = 0;
  config.max_output = 10;
  config.fallback = -7;
  GuardedModel guarded(std::make_shared<ScriptedModel>(std::vector<int64_t>{3, 7, 0, 10}),
                       config);
  const std::array<int32_t, 1> x{0};
  EXPECT_EQ(guarded.Predict(x), 3);
  EXPECT_EQ(guarded.Predict(x), 7);
  EXPECT_EQ(guarded.Predict(x), 0);
  EXPECT_EQ(guarded.Predict(x), 10);
  EXPECT_FALSE(guarded.tripped());
  EXPECT_EQ(guarded.violations(), 0u);
}

TEST(GuardedModelTest, ClampsOutOfRangeToFallback) {
  GuardrailConfig config;
  config.min_output = 0;
  config.max_output = 1;
  config.fallback = 0;
  config.max_violations = 100;  // don't trip in this test
  GuardedModel guarded(
      std::make_shared<ScriptedModel>(std::vector<int64_t>{1ll << 40, -5, 1}), config);
  const std::array<int32_t, 1> x{0};
  EXPECT_EQ(guarded.Predict(x), 0);  // huge -> fallback
  EXPECT_EQ(guarded.Predict(x), 0);  // negative -> fallback
  EXPECT_EQ(guarded.Predict(x), 1);  // fine
  EXPECT_EQ(guarded.violations(), 2u);
}

TEST(GuardedModelTest, TripsAfterTooManyViolations) {
  GuardrailConfig config;
  config.min_output = 0;
  config.max_output = 1;
  config.fallback = 0;
  config.violation_window = 32;
  config.max_violations = 3;
  GuardedModel guarded(std::make_shared<ScriptedModel>(std::vector<int64_t>{99}), config);
  const std::array<int32_t, 1> x{0};
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(guarded.Predict(x), 0);
  }
  EXPECT_TRUE(guarded.tripped());
  // After the trip, the inner model is not consulted: a healthy output would
  // still be overridden by the fallback.
  EXPECT_EQ(guarded.Predict(x), 0);
}

TEST(GuardedModelTest, WindowResetForgivesScatteredViolations) {
  GuardrailConfig config;
  config.min_output = 0;
  config.max_output = 1;
  config.violation_window = 4;
  config.max_violations = 2;
  // One violation per window of four: never trips.
  GuardedModel guarded(
      std::make_shared<ScriptedModel>(std::vector<int64_t>{99, 1, 1, 1}), config);
  const std::array<int32_t, 1> x{0};
  for (int i = 0; i < 40; ++i) {
    (void)guarded.Predict(x);
  }
  EXPECT_FALSE(guarded.tripped());
  EXPECT_EQ(guarded.violations(), 10u);
}

TEST(GuardedModelTest, CostAddsSurchargeOnly) {
  GuardrailConfig config;
  auto inner = std::make_shared<ScriptedModel>(std::vector<int64_t>{0});
  GuardedModel guarded(inner, config);
  EXPECT_EQ(guarded.Cost().comparisons, inner->Cost().comparisons + 4);
  EXPECT_EQ(guarded.Cost().macs, inner->Cost().macs);
  EXPECT_EQ(guarded.kind(), "guarded");
}

TEST(GuardedModelTest, WrapsRealModelEndToEnd) {
  Rng rng(6);
  const Dataset data = NoisyData(rng, 300);
  auto forest = std::make_shared<RandomForest>(std::move(RandomForest::Train(data)).value());
  GuardrailConfig config;
  config.min_output = 0;
  config.max_output = 1;
  GuardedModel guarded(forest, config);
  // The forest only ever emits 0/1, so the guard is transparent.
  size_t agree = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (guarded.Predict(data.row(i)) == forest->Predict(data.row(i))) {
      ++agree;
    }
  }
  EXPECT_EQ(agree, data.size());
  EXPECT_FALSE(guarded.tripped());
}

}  // namespace
}  // namespace rkd
