// Cross-module integration tests: full verify -> install -> fire -> learn ->
// adapt flows, privacy end to end, and the guard pipeline under real
// execution.
#include <array>
#include <gtest/gtest.h>

#include "src/bytecode/assembler.h"
#include "src/bytecode/disassembler.h"
#include "src/ml/decision_tree.h"
#include "src/ml/distill.h"
#include "src/ml/mlp.h"
#include "src/ml/quantize.h"
#include "src/rmt/control_plane.h"
#include "src/sim/mem/ml_prefetcher.h"
#include "src/sim/mem/readahead.h"
#include "src/verifier/guards.h"
#include "src/verifier/verifier.h"
#include "src/workloads/access_trace.h"

namespace rkd {
namespace {

// The full admission path: assemble -> verify (reject) -> auto-guard ->
// verify (accept) -> install -> fire -> observe rate limiting at runtime.
TEST(IntegrationTest, GuardedAdmissionPipeline) {
  Assembler a("aggressive_prefetch", HookKind::kMemPrefetch);
  a.Mov(1, 1);        // key = pid (already in r1; explicit for clarity)
  a.MovImm(2, 8);
  a.Call(HelperId::kPrefetchEmit);  // unguarded: 8 pages per fault
  a.MovImm(0, 0).Exit();
  BytecodeProgram action = std::move(a.Build()).value();

  // Step 1: the verifier refuses the unguarded program.
  ASSERT_FALSE(Verifier().Verify(action).ok());

  // Step 2: the guard pass rewrites it; now it verifies.
  ASSERT_TRUE(InsertRateLimitGuards(action).ok());
  ASSERT_TRUE(Verifier().Verify(action).ok());

  // Step 3: install and run against a hook with a prefetch sink.
  HookRegistry hooks;
  std::vector<int64_t> emitted;
  SubsystemBindings bindings;
  uint64_t now = 0;
  bindings.now = [&] { return now; };
  bindings.prefetch_emit = [&](int64_t page, int64_t count) {
    for (int64_t i = 0; i < count; ++i) {
      emitted.push_back(page + i);
    }
  };
  const HookId hook =
      *hooks.Register("mm.swap_cluster_readahead", HookKind::kMemPrefetch, bindings);
  ControlPlane cp(&hooks);

  RmtProgramSpec spec;
  spec.name = "guarded";
  spec.rate_limit_capacity = 16;
  spec.rate_limit_refill = 0;  // never refills within this test
  RmtTableSpec table;
  table.name = "t";
  table.hook_point = "mm.swap_cluster_readahead";
  table.actions.push_back(action);
  table.default_action = 0;
  spec.tables.push_back(std::move(table));
  Result<ControlPlane::ProgramHandle> handle = cp.Install(spec);
  ASSERT_TRUE(handle.ok()) << handle.status();

  // Two fires drain the 16-token bucket (8 each); the third is denied.
  (void)hooks.Fire(hook, 1);
  (void)hooks.Fire(hook, 1);
  EXPECT_EQ(emitted.size(), 16u);
  (void)hooks.Fire(hook, 1);
  EXPECT_EQ(emitted.size(), 16u);  // rate limited: no new emissions
  EXPECT_EQ(hooks.MetricsOf(hook).exec_errors(), 0u);
  EXPECT_EQ(hooks.MetricsOf(hook).fires(), 3u);
}

// Differential-privacy end to end: a generic aggregate-query program whose
// kDpNoise calls consume the program's budget until refusal.
TEST(IntegrationTest, PrivacyBudgetEnforcedThroughHelper) {
  Assembler a("noisy_query", HookKind::kGeneric);
  a.Mov(1, 1);  // the value to noise arrives as the hook key
  a.Call(HelperId::kDpNoise);
  a.Exit();
  BytecodeProgram action = std::move(a.Build()).value();
  ASSERT_TRUE(Verifier().Verify(action).ok());

  HookRegistry hooks;
  const HookId hook = *hooks.Register("stats.query", HookKind::kGeneric);
  ControlPlane cp(&hooks);
  RmtProgramSpec spec;
  spec.name = "dp";
  spec.privacy_epsilon = 0.3;
  spec.epsilon_per_query = 0.1;   // three queries total
  spec.dp_sensitivity = 1.0;
  RmtTableSpec table;
  table.name = "t";
  table.hook_point = "stats.query";
  table.actions.push_back(action);
  table.default_action = 0;
  spec.tables.push_back(std::move(table));
  Result<ControlPlane::ProgramHandle> handle = cp.Install(spec);
  ASSERT_TRUE(handle.ok()) << handle.status();

  int64_t nonzero_answers = 0;
  for (int i = 0; i < 3; ++i) {
    if (hooks.Fire(hook, 1000000) != 0) {
      ++nonzero_answers;
    }
  }
  EXPECT_EQ(nonzero_answers, 3);  // noisy but nonzero answers
  // Budget exhausted: the helper hard-zeroes.
  EXPECT_EQ(hooks.Fire(hook, 1000000), 0);
  const PrivacyBudget& budget = cp.Get(*handle)->privacy_budget();
  EXPECT_EQ(budget.queries_answered(), 3u);
  EXPECT_EQ(budget.queries_refused(), 1u);
}

// Offline training -> quantize -> verify cost -> install -> infer in the VM:
// the full userspace/kernel split of section 3.2, with distillation when the
// quantized model is over budget.
TEST(IntegrationTest, DistillationRecoversFromCostRejection) {
  // Teacher task: xor-ish decision.
  Dataset data(2);
  Rng rng(1);
  for (int i = 0; i < 400; ++i) {
    const std::array<int32_t, 2> row{static_cast<int32_t>(rng.NextInt(0, 100)),
                                     static_cast<int32_t>(rng.NextInt(0, 100))};
    data.Add(row, (row[0] > 50) != (row[1] > 50) ? 1 : 0);
  }
  MlpConfig big;
  big.hidden_sizes = {64, 64};
  big.epochs = 40;
  big.learning_rate = 0.1f;
  Result<Mlp> teacher = Mlp::Train(data, big);
  ASSERT_TRUE(teacher.ok());
  Result<QuantizedMlp> quantized = QuantizedMlp::FromMlp(*teacher);
  ASSERT_TRUE(quantized.ok());

  HookRegistry hooks;
  ASSERT_TRUE(hooks.Register("sched.can_migrate_task", HookKind::kSchedMigrate).ok());
  ControlPlane cp(&hooks);

  Assembler a("predict", HookKind::kSchedMigrate);
  a.DeclareModels(1);
  a.VecLdCtxt(0, 1);
  a.MlCall(0, 0, 0);
  a.Exit();
  RmtProgramSpec spec;
  spec.name = "sched_ml";
  spec.model_slots = 1;
  RmtTableSpec table;
  table.name = "t";
  table.hook_point = "sched.can_migrate_task";
  table.actions.push_back(std::move(a.Build()).value());
  table.default_action = 0;
  spec.tables.push_back(std::move(table));
  Result<ControlPlane::ProgramHandle> handle = cp.Install(spec);
  ASSERT_TRUE(handle.ok());

  // The big quantized MLP busts the scheduler hook budget (2^13 work units).
  EXPECT_GT(quantized->Cost().WorkUnits(), BudgetForHook(HookKind::kSchedMigrate).max_work_units);
  EXPECT_FALSE(cp.InstallModel(*handle, 0,
                               std::make_shared<QuantizedMlp>(std::move(quantized).value()))
                   .ok());

  // Distill to a tree student; it fits and installs.
  const auto teacher_fn = [&](std::span<const int32_t> row) {
    return static_cast<int64_t>(teacher->PredictClass(row));
  };
  Result<DecisionTree> student = DistillToTree(teacher_fn, data);
  ASSERT_TRUE(student.ok());
  EXPECT_LE(student->Cost().WorkUnits(), BudgetForHook(HookKind::kSchedMigrate).max_work_units);
  auto student_ptr = std::make_shared<DecisionTree>(std::move(student).value());
  ASSERT_TRUE(cp.InstallModel(*handle, 0, student_ptr).ok());

  // Fire through the context-vector path and cross-check against the student
  // directly.
  InstalledProgram* program = cp.Get(*handle);
  const HookId hook = *hooks.Lookup("sched.can_migrate_task");
  int agree = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const std::array<int32_t, 2> row{static_cast<int32_t>(rng.NextInt(0, 100)),
                                     static_cast<int32_t>(rng.NextInt(0, 100))};
    ContextEntry* entry = program->context().FindOrCreate(7);
    entry->features.fill(0);
    entry->features[0] = row[0];
    entry->features[1] = row[1];
    const int64_t via_hook = hooks.Fire(hook, 7);
    if (via_hook == student_ptr->Predict(row)) {
      ++agree;
    }
  }
  EXPECT_EQ(agree, 50);
}

// The control-plane adaptation loop closes end to end on the ML prefetcher:
// an adversarial phase change (learned pattern becomes random) drives the
// rolling accuracy down and the depth knob toward conservative values.
TEST(IntegrationTest, PrefetchAdaptationReactsToWorkloadChange) {
  MlPrefetcherConfig config;
  config.window_size = 128;
  config.initial_depth = 8;
  config.max_depth = 8;
  RmtMlPrefetcher prefetcher(config);
  ASSERT_TRUE(prefetcher.Init().ok());

  MemSimConfig sim_config;
  sim_config.frame_capacity = 64;
  MemorySim sim(sim_config, &prefetcher);

  // Phase 1: learnable stride.
  Rng rng(2);
  AccessTrace trace = MakeStridedTrace(1, 0, 5, 1500, 0.0, rng);
  // Phase 2: uniform random over a huge space — predictions become garbage.
  const AccessTrace chaos = MakeRandomTrace(1, 1 << 24, 1500, rng);
  trace.insert(trace.end(), chaos.begin(), chaos.end());
  (void)sim.Run(trace);

  EXPECT_GT(prefetcher.windows_trained(), 2u);
  EXPECT_LT(prefetcher.current_depth_knob(), 8);  // adapted downward
}

// Disassembly of the real installed prefetch program stays readable — a
// smoke test that the toolchain pieces agree on the instruction set.
TEST(IntegrationTest, InstalledProgramsDisassemble) {
  RmtMlPrefetcher prefetcher;
  ASSERT_TRUE(prefetcher.Init().ok());
  // Rebuild the action the prefetcher installs and check its listing.
  Assembler a("probe", HookKind::kMemAccess);
  a.LdCtxt(6, 1, 0);
  a.Call(HelperId::kHistoryAppend);
  a.MovImm(0, 0).Exit();
  const BytecodeProgram program = std::move(a.Build()).value();
  const std::string listing = Disassemble(program);
  EXPECT_NE(listing.find("ld_ctxt r6, ctxt[r1].0"), std::string::npos);
  EXPECT_NE(listing.find("call history_append"), std::string::npos);
}

}  // namespace
}  // namespace rkd
