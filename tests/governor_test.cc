// Tests for the overload governor: fire-time deadlines, map quotas, and the
// kFull -> kDegraded -> kShed degradation ladder. Every scenario is
// deterministic: overload comes from an injectable clock or from latency
// failpoints, time is governor Tick() calls, and the scripted ladder trace
// is asserted byte-identical across runs and across both VM tiers.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>

#include "src/base/failpoints.h"
#include "src/bytecode/assembler.h"
#include "src/rmt/control_plane.h"
#include "src/rmt/governor.h"
#include "src/rmt/guardian.h"

namespace rkd {
namespace {

// Pure-ALU action: returns key + addend.
RmtProgramSpec AluSpec(const std::string& name, const std::string& hook_name,
                       int64_t addend) {
  Assembler a("add_imm", HookKind::kGeneric);
  a.Mov(0, 1).AddImm(0, addend).Exit();
  RmtProgramSpec spec;
  spec.name = name;
  RmtTableSpec table;
  table.name = "tab";
  table.hook_point = hook_name;
  table.actions.push_back(std::move(a.Build()).value());
  table.default_action = 0;
  spec.tables.push_back(std::move(table));
  return spec;
}

// Helper-calling action with a long straight-line body, so both VM tiers
// cross a deadline poll boundary (interpreter: 128 steps, JIT: 64 dispatch
// blocks) after the "vm.helper" failpoint site has injected its latency.
RmtProgramSpec SlowSpec(const std::string& name, const std::string& hook_name) {
  Assembler a("slow_add", HookKind::kGeneric);
  a.Call(HelperId::kGetTime);
  a.Mov(0, 1);
  for (int i = 0; i < 160; ++i) {
    a.AddImm(0, 1);
  }
  a.Exit();
  RmtProgramSpec spec;
  spec.name = name;
  RmtTableSpec table;
  table.name = "tab";
  table.hook_point = hook_name;
  table.actions.push_back(std::move(a.Build()).value());
  table.default_action = 0;
  spec.tables.push_back(std::move(table));
  return spec;
}

// A fake timebase the tests script: every Now() call advances it by `step`,
// so a step larger than the fire budget makes every execution overrun its
// deadline at the entry poll — the same number of clock reads per execution
// on both VM tiers, which keeps scripted traces tier-identical.
struct FakeClock {
  std::atomic<uint64_t> now{1};
  std::atomic<uint64_t> step{0};
  std::function<uint64_t()> AsFunction() {
    return [this] { return now.fetch_add(step.load()) + step.load(); };
  }
};

GovernorConfig TightGovernor() {
  GovernorConfig config;
  config.window_fires = 8;
  config.max_deadline_rate = 0.05;
  config.max_quota_breaches = 0;
  config.demote_windows = 1;
  config.promote_windows = 2;
  config.shed_probe_ticks = 4;
  config.shed_cycles_to_breaker = 1;
  return config;
}

class GovernorTest : public ::testing::Test {
 protected:
  GovernorTest() : cp_(&hooks_) {
    hook_ = *hooks_.Register("generic.hook", HookKind::kGeneric);
  }

  void Fire(int n, uint64_t key = 7) {
    for (int i = 0; i < n; ++i) {
      hooks_.Fire(hook_, key);
    }
  }

  HookRegistry hooks_;
  ControlPlane cp_;
  HookId hook_;
};

// --- Admission ---

TEST_F(GovernorTest, GovernValidatesItsTarget) {
  OverloadGovernor governor(&cp_);
  EXPECT_FALSE(governor.Govern(999).ok());  // no such program
  Result<ControlPlane::ProgramHandle> handle =
      cp_.Install(AluSpec("plain", "generic.hook", 100));
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(governor.Govern(*handle, TightGovernor()).ok());
  EXPECT_TRUE(governor.IsGoverned(*handle));
  EXPECT_EQ(governor.LevelOf(*handle), GovLevel::kFull);
  EXPECT_FALSE(governor.Govern(*handle).ok());  // double govern
  ASSERT_TRUE(governor.Ungovern(*handle).ok());
  EXPECT_FALSE(governor.Ungovern(*handle).ok());
  GovernorConfig bad;
  bad.window_fires = 0;
  EXPECT_FALSE(governor.Govern(*handle, bad).ok());
}

TEST_F(GovernorTest, HealthyProgramStaysAtFullAcrossTicks) {
  OverloadGovernor governor(&cp_);
  RmtProgramSpec spec = AluSpec("plain", "generic.hook", 100);
  spec.fire_deadline_ns = 1'000'000'000;  // 1s: never overruns
  Result<ControlPlane::ProgramHandle> handle = cp_.Install(std::move(spec));
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(governor.Govern(*handle, TightGovernor()).ok());
  for (int round = 0; round < 5; ++round) {
    Fire(8);
    EXPECT_TRUE(governor.Tick().transitions.empty());
  }
  EXPECT_EQ(governor.LevelOf(*handle), GovLevel::kFull);
  EXPECT_EQ(hooks_.Fire(hook_, 7), 107);
  EXPECT_EQ(cp_.telemetry().GetCounter("rkd.gov.demotions")->value(), 0u);
}

// --- Deadline overruns (fake clock) demote to the fallback oracle ---

TEST_F(GovernorTest, DeadlineOverrunsDemoteToDegradedAndFallbackServes) {
  auto clock = std::make_shared<FakeClock>();
  OverloadGovernor governor(&cp_, clock->AsFunction());
  ASSERT_TRUE(hooks_
                  .SetFallbackOracle(hook_,
                                     [](uint64_t key, std::span<const int64_t>) {
                                       return static_cast<int64_t>(key) + 1000;
                                     })
                  .ok());

  RmtProgramSpec spec = AluSpec("hot", "generic.hook", 100);
  spec.fire_deadline_ns = 10;
  Result<ControlPlane::ProgramHandle> handle = cp_.Install(std::move(spec));
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(governor.Govern(*handle, TightGovernor()).ok());

  // Storm: every clock read advances time by more than the whole budget, so
  // each execution is already past its deadline at the entry poll.
  clock->step = 50;
  Fire(8);
  const ProgramExecMetrics& metrics = cp_.Get(*handle)->exec_metrics();
  EXPECT_EQ(metrics.deadline_errors->value(), 8u);
  EXPECT_EQ(metrics.budget_errors->value(), 0u);  // breach attribution: wall clock, not steps
  EXPECT_EQ(metrics.exec_errors->value(), 8u);

  OverloadGovernor::TickSummary summary = governor.Tick();
  ASSERT_EQ(summary.transitions.size(), 1u);
  EXPECT_EQ(summary.transitions[0].from, GovLevel::kFull);
  EXPECT_EQ(summary.transitions[0].to, GovLevel::kDegraded);
  EXPECT_NE(summary.transitions[0].reason.find("deadline overrun rate"), std::string::npos);
  EXPECT_EQ(governor.LevelOf(*handle), GovLevel::kDegraded);

  // Degraded fires answer from the fallback oracle; the learned program
  // never runs (its exec counters freeze).
  const uint64_t execs_before = metrics.execs->value();
  EXPECT_EQ(hooks_.Fire(hook_, 7), 1007);
  EXPECT_EQ(metrics.execs->value(), execs_before);
  EXPECT_EQ(hooks_.MetricsOf(hook_).degraded_fires(), 1u);
  EXPECT_EQ(cp_.telemetry().GetGauge("rkd.gov.level.hot")->value(),
            static_cast<double>(GovLevel::kDegraded));
}

// --- Satellite: ladder demotion under injected latency failpoints, on both
// VM tiers with the real clock ---

TEST_F(GovernorTest, LatencyFailpointDemotesLadderOnBothTiers) {
  for (const ExecTier tier : {ExecTier::kInterpreter, ExecTier::kJit}) {
    HookRegistry hooks;
    ControlPlane cp(&hooks);
    const HookId hook = *hooks.Register("generic.hook", HookKind::kGeneric);
    OverloadGovernor governor(&cp);

    RmtProgramSpec spec = SlowSpec("laggy", "generic.hook");
    spec.fire_deadline_ns = 100'000;  // 100us budget
    Result<ControlPlane::ProgramHandle> handle = cp.Install(std::move(spec), tier);
    ASSERT_TRUE(handle.ok()) << handle.status();
    ASSERT_TRUE(governor.Govern(*handle, TightGovernor()).ok());

    FailpointSpec lag;
    lag.mode = FailpointMode::kAlways;
    lag.latency_ns = 1'000'000;  // 1ms busy-wait at the helper site
    ScopedFailpoint guard("vm.helper", lag);

    for (int i = 0; i < 8; ++i) {
      hooks.Fire(hook, 7);
    }
    const ProgramExecMetrics& metrics = cp.Get(*handle)->exec_metrics();
    EXPECT_EQ(metrics.deadline_errors->value(), 8u)
        << "tier " << static_cast<int>(tier);
    const OverloadGovernor::TickSummary summary = governor.Tick();
    ASSERT_EQ(summary.transitions.size(), 1u);
    EXPECT_EQ(summary.transitions[0].to, GovLevel::kDegraded);
  }
}

// --- Recovery hysteresis: clean windows climb the ladder slower than
// breaches descend it ---

TEST_F(GovernorTest, RecoveryRequiresConsecutiveCleanWindows) {
  auto clock = std::make_shared<FakeClock>();
  OverloadGovernor governor(&cp_, clock->AsFunction());
  RmtProgramSpec spec = AluSpec("bursty", "generic.hook", 100);
  spec.fire_deadline_ns = 10;
  Result<ControlPlane::ProgramHandle> handle = cp_.Install(std::move(spec));
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(governor.Govern(*handle, TightGovernor()).ok());

  clock->step = 50;  // storm on
  Fire(8);
  ASSERT_EQ(governor.Tick().transitions.size(), 1u);
  ASSERT_EQ(governor.LevelOf(*handle), GovLevel::kDegraded);

  clock->step = 0;  // storm over
  // Degraded runs nothing, so clean time is the promotion evidence; one
  // clean tick is not enough (promote_windows = 2)...
  EXPECT_TRUE(governor.Tick().transitions.empty());
  EXPECT_EQ(governor.LevelOf(*handle), GovLevel::kDegraded);
  // ...the second consecutive clean tick promotes back to kFull.
  const OverloadGovernor::TickSummary summary = governor.Tick();
  ASSERT_EQ(summary.transitions.size(), 1u);
  EXPECT_EQ(summary.transitions[0].from, GovLevel::kDegraded);
  EXPECT_EQ(summary.transitions[0].to, GovLevel::kFull);
  EXPECT_EQ(governor.LevelOf(*handle), GovLevel::kFull);
  EXPECT_EQ(hooks_.Fire(hook_, 7), 107);  // learned policy serves again
  EXPECT_EQ(cp_.telemetry().GetCounter("rkd.gov.promotions")->value(), 1u);
  EXPECT_EQ(cp_.telemetry().GetCounter("rkd.gov.demotions")->value(), 1u);
}

// --- Map-quota breaches walk the ladder down and, on shed cycling, feed the
// guardian's breaker instead of shedding silently forever ---

TEST_F(GovernorTest, QuotaBreachesDescendLadderAndTripBreaker) {
  OverloadGovernor governor(&cp_);
  PolicyGuardian guardian(&cp_);
  governor.set_guardian(&guardian);

  RmtProgramSpec spec = AluSpec("greedy", "generic.hook", 100);
  spec.maps = {MapSpec{MapKind::kHash, 64}};
  spec.map_bytes_quota = 2 * MapQuota::kBytesPerEntry;  // two entries, then breach
  Result<ControlPlane::ProgramHandle> handle = cp_.Install(std::move(spec));
  ASSERT_TRUE(handle.ok()) << handle.status();
  ASSERT_TRUE(guardian.Guard(*handle).ok());
  ASSERT_TRUE(governor.Govern(*handle, TightGovernor()).ok());

  EXPECT_TRUE(cp_.WriteMap(*handle, 0, 1, 11).ok());
  EXPECT_TRUE(cp_.WriteMap(*handle, 0, 2, 22).ok());
  const Status breach = cp_.WriteMap(*handle, 0, 3, 33);
  ASSERT_FALSE(breach.ok());
  EXPECT_EQ(breach.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(breach.message().find("quota"), std::string::npos);
  // Overwriting a resident key charges nothing: still within quota.
  EXPECT_TRUE(cp_.WriteMap(*handle, 0, 1, 12).ok());

  // Resource pressure needs no executions: the breach alone closes the
  // window and demotes.
  OverloadGovernor::TickSummary summary = governor.Tick();
  ASSERT_EQ(summary.transitions.size(), 1u);
  EXPECT_EQ(summary.transitions[0].to, GovLevel::kDegraded);
  EXPECT_NE(summary.transitions[0].reason.find("quota"), std::string::npos);

  // Still breaching on the degraded rung -> kShed, and with
  // shed_cycles_to_breaker = 1 the governor escalates to the guardian.
  (void)cp_.WriteMap(*handle, 0, 4, 44);
  summary = governor.Tick();
  ASSERT_EQ(summary.transitions.size(), 1u);
  EXPECT_EQ(summary.transitions[0].to, GovLevel::kShed);
  EXPECT_EQ(summary.breaker_reports, 1u);
  EXPECT_EQ(guardian.StateOf(*handle), GuardState::kTripped);
  EXPECT_EQ(cp_.telemetry().GetCounter("rkd.gov.breaker_reports")->value(), 1u);
  EXPECT_EQ(hooks_.Fire(hook_, 7), kHookFallback);  // suspended + shed: stock path
}

// --- Shed-path determinism on both VM tiers ---

TEST_F(GovernorTest, ShedPathIsDeterministicOnBothTiers) {
  for (const ExecTier tier : {ExecTier::kInterpreter, ExecTier::kJit}) {
    HookRegistry hooks;
    ControlPlane cp(&hooks);
    const HookId hook = *hooks.Register("generic.hook", HookKind::kGeneric);
    OverloadGovernor governor(&cp);

    RmtProgramSpec spec = AluSpec("shedder", "generic.hook", 100);
    spec.maps = {MapSpec{MapKind::kHash, 64}};
    spec.map_bytes_quota = MapQuota::kBytesPerEntry;
    Result<ControlPlane::ProgramHandle> handle = cp.Install(std::move(spec), tier);
    ASSERT_TRUE(handle.ok());
    GovernorConfig config = TightGovernor();
    config.shed_cycles_to_breaker = 0;  // no guardian here; shed and stay
    ASSERT_TRUE(governor.Govern(*handle, config).ok());

    // Two breach-bearing ticks: kFull -> kDegraded -> kShed.
    (void)cp.WriteMap(*handle, 0, 1, 1);
    (void)cp.WriteMap(*handle, 0, 2, 2);
    governor.Tick();
    (void)cp.WriteMap(*handle, 0, 3, 3);
    governor.Tick();
    ASSERT_EQ(governor.LevelOf(*handle), GovLevel::kShed);

    const ProgramExecMetrics& metrics = cp.Get(*handle)->exec_metrics();
    const uint64_t execs_before = metrics.execs->value();
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(hooks.Fire(hook, 7), kHookFallback) << "tier " << static_cast<int>(tier);
    }
    EXPECT_EQ(metrics.execs->value(), execs_before);  // nothing executed
    EXPECT_EQ(hooks.MetricsOf(hook).shed_fires(), 16u);
    EXPECT_EQ(hooks.MetricsOf(hook).degraded_fires(), 0u);  // no oracle registered
  }
}

// --- Acceptance: a scripted fake-clock overload trace produces a
// byte-identical ladder transcript across runs and across VM tiers ---

std::string RunScriptedLadder(ExecTier tier) {
  HookRegistry hooks;
  ControlPlane cp(&hooks);
  const HookId hook = *hooks.Register("generic.hook", HookKind::kGeneric);
  (void)hooks.SetFallbackOracle(hook, [](uint64_t key, std::span<const int64_t>) {
    return static_cast<int64_t>(key) + 1000;
  });
  auto clock = std::make_shared<FakeClock>();
  OverloadGovernor governor(&cp, clock->AsFunction());

  RmtProgramSpec spec = AluSpec("scripted", "generic.hook", 100);
  spec.fire_deadline_ns = 10;
  spec.maps = {MapSpec{MapKind::kHash, 64}};
  spec.map_bytes_quota = 2 * MapQuota::kBytesPerEntry;
  const ControlPlane::ProgramHandle handle = *cp.Install(std::move(spec), tier);
  GovernorConfig config = TightGovernor();
  config.shed_cycles_to_breaker = 0;
  (void)governor.Govern(handle, config);

  std::string transcript;
  const auto record = [&](const OverloadGovernor::TickSummary& summary) {
    for (const OverloadGovernor::LadderEvent& event : summary.transitions) {
      transcript += std::string(GovLevelName(event.from)) + ">" +
                    std::string(GovLevelName(event.to)) + ":" + event.reason + "\n";
    }
  };

  // Phase A: deadline storm (every execution overruns at the entry poll).
  clock->step = 50;
  for (int i = 0; i < 8; ++i) {
    hooks.Fire(hook, 7);
  }
  record(governor.Tick());  // kFull -> kDegraded

  // Phase B: resource pressure while degraded (control-plane map writes).
  (void)cp.WriteMap(handle, 0, 1, 1);
  (void)cp.WriteMap(handle, 0, 2, 2);
  (void)cp.WriteMap(handle, 0, 3, 3);  // breach
  record(governor.Tick());  // kDegraded -> kShed

  // Phase C: the storm ends; shed probes back up after shed_probe_ticks.
  clock->step = 0;
  for (int i = 0; i < 4; ++i) {
    record(governor.Tick());
  }  // kShed -> kDegraded on the 4th tick

  // Phase D: clean degraded ticks promote back to kFull.
  record(governor.Tick());
  record(governor.Tick());  // kDegraded -> kFull

  // Verified recovery: the learned policy serves again.
  transcript += "fire=" + std::to_string(hooks.Fire(hook, 7)) + "\n";

  // Counter block: the rkd.gov.* slice plus hook-level shed accounting.
  TelemetryRegistry& telemetry = cp.telemetry();
  transcript += "demotions=" +
                std::to_string(telemetry.GetCounter("rkd.gov.demotions")->value()) +
                " promotions=" +
                std::to_string(telemetry.GetCounter("rkd.gov.promotions")->value()) +
                " ticks=" + std::to_string(telemetry.GetCounter("rkd.gov.ticks")->value()) +
                " level=" + std::to_string(static_cast<int>(
                                telemetry.GetGauge("rkd.gov.level.scripted")->value())) +
                " degraded_fires=" + std::to_string(hooks.MetricsOf(hook).degraded_fires()) +
                " shed_fires=" + std::to_string(hooks.MetricsOf(hook).shed_fires()) + "\n";

  // Flight-recorder view: every ladder transition lands in the trace ring
  // with the fake-clock timestamp, the handle, and the from/to rungs.
  for (const TraceEvent& event : telemetry.trace().Snapshot()) {
    if (event.kind != kGovTransitionEvent) {
      continue;
    }
    transcript += "ev ts=" + std::to_string(event.ts_ns) +
                  " src=" + std::to_string(event.source) +
                  " from=" + std::to_string(event.key) +
                  " to=" + std::to_string(event.value) + "\n";
  }
  return transcript;
}

TEST_F(GovernorTest, ScriptedLadderTraceIsByteIdenticalAcrossRunsAndTiers) {
  const std::string interp_a = RunScriptedLadder(ExecTier::kInterpreter);
  const std::string interp_b = RunScriptedLadder(ExecTier::kInterpreter);
  const std::string jit_a = RunScriptedLadder(ExecTier::kJit);
  const std::string jit_b = RunScriptedLadder(ExecTier::kJit);
  EXPECT_EQ(interp_a, interp_b);  // identical across runs
  EXPECT_EQ(jit_a, jit_b);
  EXPECT_EQ(interp_a, jit_a);     // identical across VM tiers

  // The full ladder was walked: down twice, up twice, ending at kFull with
  // the learned policy serving.
  EXPECT_NE(interp_a.find("full>degraded:"), std::string::npos);
  EXPECT_NE(interp_a.find("degraded>shed:"), std::string::npos);
  EXPECT_NE(interp_a.find("shed>degraded:"), std::string::npos);
  EXPECT_NE(interp_a.find("degraded>full:"), std::string::npos);
  EXPECT_NE(interp_a.find("fire=107"), std::string::npos);
  EXPECT_NE(interp_a.find("demotions=2 promotions=2"), std::string::npos);
}

// --- Ladder transitions snapshot the flight recorder like guardian trips ---

TEST_F(GovernorTest, TransitionsDumpTheFlightRecorder) {
  auto clock = std::make_shared<FakeClock>();
  OverloadGovernor governor(&cp_, clock->AsFunction());
  governor.set_flight_recorder_dir(::testing::TempDir());
  RmtProgramSpec spec = AluSpec("dumped", "generic.hook", 100);
  spec.fire_deadline_ns = 10;
  Result<ControlPlane::ProgramHandle> handle = cp_.Install(std::move(spec));
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(governor.Govern(*handle, TightGovernor()).ok());

  clock->step = 50;
  Fire(8);
  ASSERT_EQ(governor.Tick().transitions.size(), 1u);
  EXPECT_EQ(governor.flight_dumps(), 1u);
  EXPECT_NE(governor.last_flight_dump().find("gov_dumped_1.json"), std::string::npos);
}

// --- Install-time budget declaration is validated against the measured
// canary cost before promote ---

TEST_F(GovernorTest, CanaryExceedingItsDeclaredDeadlineIsRolledBack) {
  PolicyGuardian guardian(&cp_);
  Result<ControlPlane::ProgramHandle> incumbent =
      cp_.Install(AluSpec("incumbent", "generic.hook", 100));
  ASSERT_TRUE(incumbent.ok());

  // The candidate declares a 10us budget but a latency failpoint makes every
  // execution cost ~1ms. The program is short, so no deadline poll fires
  // mid-execution (zero exec errors) — only the measured p99 betrays it.
  RmtProgramSpec candidate = AluSpec("candidate", "generic.hook", 200);
  {
    Assembler a("timed_add", HookKind::kGeneric);
    a.Call(HelperId::kGetTime);
    a.Mov(0, 1).AddImm(0, 200).Exit();
    candidate.tables[0].actions[0] = std::move(a.Build()).value();
  }
  candidate.fire_deadline_ns = 10'000;

  ControlPlane::CanaryConfig config;
  config.canary_permille = 500;
  config.soak_min_execs = 32;
  config.max_error_rate = 0.05;
  config.max_latency_ratio = 0.0;  // ratio bound off: the declared budget decides
  Result<ControlPlane::RolloutId> rollout =
      cp_.InstallCanary(*incumbent, std::move(candidate), config);
  ASSERT_TRUE(rollout.ok()) << rollout.status();

  FailpointSpec lag;
  lag.mode = FailpointMode::kAlways;
  lag.latency_ns = 100'000;
  ScopedFailpoint guard("vm.helper", lag);
  // One full routing period: fire seq 0-499 soak the canary, 500-999 the
  // incumbent, so both arms clear soak_min_execs.
  for (int i = 0; i < 1000; ++i) {
    hooks_.Fire(hook_, 7);
  }

  const PolicyGuardian::TickSummary summary = guardian.Tick();
  ASSERT_EQ(summary.rollouts.size(), 1u);
  EXPECT_EQ(summary.rollouts[0].decision,
            ControlPlane::RolloutReport::Decision::kRolledBack);
  EXPECT_NE(summary.rollouts[0].reason.find("fire deadline"), std::string::npos);
}

}  // namespace
}  // namespace rkd
