// Tests for the text-assembly parser, including the round-trip property
// with the disassembler.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/bytecode/assembler.h"
#include "src/bytecode/disassembler.h"
#include "src/bytecode/parser.h"
#include "src/verifier/verifier.h"
#include "src/vm/vm.h"

namespace rkd {
namespace {

TEST(ParserTest, MinimalProgram) {
  Result<BytecodeProgram> program = ParseAssembly(R"(
    .name tiny
    mov_imm r0, 7
    exit
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->name, "tiny");
  ASSERT_EQ(program->code.size(), 2u);
  EXPECT_EQ(program->code[0].opcode, Opcode::kMovImm);
  EXPECT_EQ(program->code[0].imm, 7);
  EXPECT_EQ(program->code[1].opcode, Opcode::kExit);
}

TEST(ParserTest, DirectivesSetHeaderFields) {
  Result<BytecodeProgram> program = ParseAssembly(R"(
    .name prefetch_action
    .hook mem_prefetch
    .maps 2
    .models 1
    .tensors 3
    .tables 4
    mov_imm r0, 0
    exit
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->hook_kind, HookKind::kMemPrefetch);
  EXPECT_EQ(program->num_maps, 2u);
  EXPECT_EQ(program->num_models, 1u);
  EXPECT_EQ(program->num_tensors, 3u);
  EXPECT_EQ(program->num_tables, 4u);
}

TEST(ParserTest, LabelsResolveForward) {
  Result<BytecodeProgram> program = ParseAssembly(R"(
    jeq_imm r1, 5, hit
    mov_imm r0, 0
    ja end
  hit:
    mov_imm r0, 1
  end:
    exit
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->code[0].offset, 2);  // to 'hit' at index 3
  EXPECT_EQ(program->code[2].offset, 1);  // to 'end' at index 4
}

TEST(ParserTest, ParsedProgramExecutes) {
  Result<BytecodeProgram> program = ParseAssembly(R"(
    ; classify: r0 = (key < 1000) ? 1 : 2
    jlt_imm r1, 1000, small
    mov_imm r0, 2
    exit
  small:
    mov_imm r0, 1
    exit
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_TRUE(Verifier().Verify(*program).ok());
  const Interpreter interp(VmEnv{});
  EXPECT_EQ(*interp.Run(*program, std::array<int64_t, 1>{42}), 1);
  EXPECT_EQ(*interp.Run(*program, std::array<int64_t, 1>{5000}), 2);
}

TEST(ParserTest, AllOperandFamilies) {
  Result<BytecodeProgram> program = ParseAssembly(R"(
    .maps 1
    .models 1
    .tensors 1
    .tables 1
    add r1, r2
    mov_imm r6, -42
    neg r6
    st_stack [fp-8], r6
    ld_stack r7, [fp-8]
    st_ctxt ctxt[r1].3, r7
    ld_ctxt r8, ctxt[r1].3
    match_ctxt r9, ctxt[r1]
    map_lookup r6, map0[r1]
    map_update map0[r1], r6
    map_delete map0[r1]
    vec_zero v0
    scalar_val v0[5], r6
    vec_extract r7, v0[5]
    vec_ld_ctxt v1, ctxt[r1]
    vec_st_ctxt ctxt[r1], v1
    mat_mul v2, v0, t0
    vec_add_t v2, t0
    vec_add v2, v1
    vec_relu v2, v2
    vec_argmax r6, v2
    vec_dot v2, v1
    call history_append
    ml_call r0, model0(v2)
    tail_call table0
    exit
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  // Spot-check several encodings.
  EXPECT_EQ(program->code[0].opcode, Opcode::kAdd);
  EXPECT_EQ(program->code[5].opcode, Opcode::kStCtxt);
  EXPECT_EQ(program->code[5].dst, 1);
  EXPECT_EQ(program->code[5].offset, 3);
  EXPECT_EQ(program->code[5].src, 7);
  EXPECT_EQ(program->code[8].opcode, Opcode::kMapLookup);
  EXPECT_EQ(program->code[8].imm, 0);
  EXPECT_EQ(program->code[12].opcode, Opcode::kScalarVal);
  EXPECT_EQ(program->code[12].offset, 5);
  EXPECT_EQ(program->code[16].opcode, Opcode::kMatMul);
  EXPECT_EQ(program->code[16].imm, 0);
  EXPECT_EQ(program->code[22].opcode, Opcode::kCall);
  EXPECT_EQ(program->code[22].imm, static_cast<int64_t>(HelperId::kHistoryAppend));
  EXPECT_EQ(program->code[23].opcode, Opcode::kMlCall);
  EXPECT_EQ(program->code[24].opcode, Opcode::kTailCall);
}

TEST(ParserTest, ErrorsNameTheLine) {
  Result<BytecodeProgram> program = ParseAssembly("mov_imm r0, 1\nbogus_op r1\nexit\n");
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(program.status().message().find("bogus_op"), std::string::npos);
}

TEST(ParserTest, RejectsBadOperands) {
  EXPECT_FALSE(ParseAssembly("add r1\nexit\n").ok());            // arity
  EXPECT_FALSE(ParseAssembly("add r1, x2\nexit\n").ok());        // not a register
  EXPECT_FALSE(ParseAssembly("ja nowhere\nexit\n").ok());        // unknown label
  EXPECT_FALSE(ParseAssembly("call not_a_helper\nexit\n").ok()); // unknown helper
  EXPECT_FALSE(ParseAssembly(".hook bogus\nexit\n").ok());       // unknown hook kind
  EXPECT_FALSE(ParseAssembly("").ok());                          // empty program
}

TEST(ParserTest, RejectsDuplicateLabel) {
  Result<BytecodeProgram> program = ParseAssembly(R"(
  a:
    mov_imm r0, 1
  a:
    exit
  )");
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("duplicate label"), std::string::npos);
}

TEST(ParserTest, LabelOnInstructionLine) {
  Result<BytecodeProgram> program = ParseAssembly(R"(
    ja target
  target: mov_imm r0, 9
    exit
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->code[0].offset, 0);
}

TEST(ParserTest, NumericBranchOffsetsAccepted) {
  Result<BytecodeProgram> program = ParseAssembly(R"(
    jeq_imm r1, 0, +1
    mov_imm r0, 1
    exit
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->code[0].offset, 1);
}

// Round-trip property: disassemble(parse(x)) == disassemble(x) for programs
// produced by the assembler, and parse(disassemble(p)) executes identically.
class ParserRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserRoundTripTest, DisassembleParseRoundTrip) {
  Rng rng(GetParam());
  Assembler a("roundtrip");
  a.DeclareMaps(2);
  for (int reg = 0; reg <= 9; ++reg) {
    a.MovImm(reg, rng.NextInt(-100, 100));
  }
  a.StStackImm(-8, 5);
  std::vector<Assembler::Label> pending;
  for (int i = 0; i < 30; ++i) {
    const int dst = static_cast<int>(rng.NextBounded(10));
    const int src = static_cast<int>(rng.NextBounded(10));
    switch (rng.NextBounded(10)) {
      case 0: a.Add(dst, src); break;
      case 1: a.SubImm(dst, rng.NextInt(-9, 9)); break;
      case 2: a.Xor(dst, src); break;
      case 3: a.LdStack(dst, -8); break;
      case 4: a.StCtxt(1, static_cast<int32_t>(rng.NextBounded(kCtxtScalarSlots)), src); break;
      case 5: a.MapLookup(dst, src, static_cast<int64_t>(rng.NextBounded(2))); break;
      case 6: a.Mov(dst, src); break;
      case 7: a.Neg(dst); break;
      case 8: {
        auto label = a.NewLabel();
        a.JgtImm(dst, rng.NextInt(-50, 50), label);
        pending.push_back(label);
        break;
      }
      case 9: a.AndImm(dst, 0xff); break;
    }
    while (pending.size() > 1) {
      a.Bind(pending.front());
      pending.erase(pending.begin());
    }
  }
  for (auto& label : pending) {
    a.Bind(label);
  }
  a.Mov(0, 4);
  a.Exit();
  const BytecodeProgram original = std::move(a.Build()).value();

  // Disassemble -> strip the listing down to parseable text -> parse.
  std::string text = ".name roundtrip\n.maps 2\n";
  for (const Instruction& insn : original.code) {
    text += DisassembleInstruction(insn);
    text += "\n";
  }
  Result<BytecodeProgram> reparsed = ParseAssembly(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << text;
  ASSERT_EQ(reparsed->code.size(), original.code.size());
  for (size_t i = 0; i < original.code.size(); ++i) {
    EXPECT_EQ(reparsed->code[i], original.code[i]) << "insn " << i << ": "
                                                   << DisassembleInstruction(original.code[i]);
  }

  // And the reparsed program behaves identically.
  ContextStore ctxt_a;
  ContextStore ctxt_b;
  MapSet maps_a;
  MapSet maps_b;
  (void)maps_a.Create(MapKind::kHash, 16);
  (void)maps_a.Create(MapKind::kHash, 16);
  (void)maps_b.Create(MapKind::kHash, 16);
  (void)maps_b.Create(MapKind::kHash, 16);
  VmEnv env_a;
  env_a.ctxt = &ctxt_a;
  env_a.maps = &maps_a;
  VmEnv env_b;
  env_b.ctxt = &ctxt_b;
  env_b.maps = &maps_b;
  const std::array<int64_t, 2> args{3, 9};
  Result<int64_t> run_a = Interpreter(env_a).Run(original, args);
  Result<int64_t> run_b = Interpreter(env_b).Run(*reparsed, args);
  ASSERT_TRUE(run_a.ok());
  ASSERT_TRUE(run_b.ok());
  EXPECT_EQ(*run_a, *run_b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRoundTripTest, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace rkd
