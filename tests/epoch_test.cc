// Reclamation edge cases of the epoch machinery (src/base/epoch.h), on
// test-local domains so advances are fully controlled.
#include "src/base/epoch.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace rkd {
namespace {

// Counts destructions so a test can pinpoint exactly when a retired object
// was actually freed.
struct Tracked {
  explicit Tracked(std::atomic<int>* counter) : counter(counter) {}
  ~Tracked() { counter->fetch_add(1, std::memory_order_relaxed); }
  std::atomic<int>* counter;
};

TEST(EpochDomainTest, RetiredObjectSurvivesUntilLagThreeAdvance) {
  EpochDomain domain;
  std::atomic<int> freed{0};
  domain.Retire(new Tracked(&freed));
  EXPECT_EQ(domain.pending(), 1u);

  // Lag-3: the bucket an object is retired into is freed two advances later
  // at the earliest — never on the very next one.
  ASSERT_TRUE(domain.TryAdvance());
  EXPECT_EQ(freed.load(), 0);
  ASSERT_TRUE(domain.TryAdvance());
  ASSERT_TRUE(domain.TryAdvance());
  EXPECT_EQ(freed.load(), 1);
  EXPECT_EQ(domain.pending(), 0u);
  EXPECT_EQ(domain.reclaimed(), 1u);
}

TEST(EpochDomainTest, PinnedReaderBlocksAdvancePastItsEpoch) {
  EpochDomain domain;
  std::atomic<int> freed{0};
  {
    EpochGuard guard(domain);
    domain.Retire(new Tracked(&freed));
    // A reader pinned at epoch P blocks any advance past P+1, so with the
    // pin held the retired object can never be freed.
    int advanced = 0;
    for (int i = 0; i < 8; ++i) {
      advanced += domain.TryAdvance() ? 1 : 0;
    }
    EXPECT_LE(advanced, 1);  // at most the P -> P+1 step succeeds
    EXPECT_EQ(freed.load(), 0);
  }
  // Unpinned: advances drain the limbo bucket.
  while (domain.pending() > 0) {
    ASSERT_TRUE(domain.TryAdvance());
  }
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochDomainTest, NestedGuardsPinOnce) {
  EpochDomain domain;
  std::atomic<int> freed{0};
  {
    EpochGuard outer(domain);
    {
      EpochGuard inner(domain);
      domain.Retire(new Tracked(&freed));
    }
    // The inner guard's destruction must not release the outer pin.
    for (int i = 0; i < 8; ++i) {
      (void)domain.TryAdvance();
    }
    EXPECT_EQ(freed.load(), 0);
  }
  while (domain.pending() > 0) {
    ASSERT_TRUE(domain.TryAdvance());
  }
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochDomainTest, DomainDestructionDrainsAllLimboBuckets) {
  std::atomic<int> freed{0};
  {
    EpochDomain domain;
    // Spread retirements across several epochs so every limbo bucket holds
    // something at destruction time.
    for (int i = 0; i < 5; ++i) {
      domain.Retire(new Tracked(&freed));
      (void)domain.TryAdvance();
    }
    EXPECT_LT(freed.load(), 5);  // some are still in limbo
  }
  EXPECT_EQ(freed.load(), 5);  // no leak at shutdown
}

TEST(EpochDomainTest, SynchronizeWaitsTwoGracePeriods) {
  EpochDomain domain;
  std::atomic<int> freed{0};
  domain.Retire(new Tracked(&freed));
  domain.Retire(new Tracked(&freed));
  domain.Synchronize();
  // Synchronize = two full advances; with the lag-3 rule a third advance
  // at most remains. Either way nothing retired before the call may still
  // be reachable; drain and verify.
  (void)domain.TryAdvance();
  EXPECT_EQ(freed.load(), 2);
}

TEST(EpochPtrTest, PublishRetiresTheDisplacedSnapshot) {
  EpochDomain domain;
  std::atomic<int> freed{0};
  EpochPtr<Tracked> ptr;
  EXPECT_EQ(ptr.Load(), nullptr);

  ptr.Publish(new Tracked(&freed), domain);
  Tracked* first = ptr.Load();
  ASSERT_NE(first, nullptr);

  ptr.Publish(new Tracked(&freed), domain);
  EXPECT_NE(ptr.Load(), first);
  EXPECT_EQ(freed.load(), 0);  // first is in limbo, not freed
  while (domain.pending() > 0) {
    ASSERT_TRUE(domain.TryAdvance());
  }
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochPtrTest, DestructorFreesTheFinalSnapshot) {
  std::atomic<int> freed{0};
  {
    EpochDomain domain;
    EpochPtr<Tracked> ptr;
    ptr.Publish(new Tracked(&freed), domain);
  }
  EXPECT_EQ(freed.load(), 1);
}

// Readers chase an EpochPtr while a writer republishes it: no loaded
// snapshot may be destroyed while a guard covers the dereference. The
// Tracked payload is poisoned at destruction so a use-after-retire shows up
// as a counter mismatch (and as a TSan race under -fsanitize=thread).
TEST(EpochDomainTest, ConcurrentReadersNeverObserveAFreedSnapshot) {
  struct Payload {
    explicit Payload(uint64_t v) : a(v), b(~v) {}
    ~Payload() { a = 0xdeaddeaddeaddead; b = 0; }
    volatile uint64_t a;
    volatile uint64_t b;
  };

  EpochDomain domain;
  EpochPtr<Payload> ptr;
  ptr.Publish(new Payload(1), domain);

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        EpochGuard guard(domain);
        const Payload* p = ptr.Load();
        if (p == nullptr || p->a != ~p->b) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (uint64_t v = 2; v < 2000; ++v) {
    ptr.Publish(new Payload(v), domain);
    if (v % 64 == 0) {
      (void)domain.TryAdvance();
    }
  }
  stop.store(true);
  for (std::thread& reader : readers) {
    reader.join();
  }
  EXPECT_FALSE(failed.load());
  // Three advances clear all three limbo buckets once nothing is pinned:
  // Synchronize contributes two, one more drains the current-epoch bucket.
  domain.Synchronize();
  ASSERT_TRUE(domain.TryAdvance());
  EXPECT_EQ(domain.pending(), 0u);  // no garbage survives quiescence
}

}  // namespace
}  // namespace rkd
