// Tests for the workload generators: the delta-cycle structure each trace
// documents is asserted here, since the Table 1 reproduction depends on it.
#include <map>
#include <gtest/gtest.h>

#include "src/workloads/access_trace.h"
#include "src/workloads/cpu_jobs.h"
#include "src/workloads/packet_trace.h"

namespace rkd {
namespace {

std::map<int64_t, size_t> DeltaHistogram(const AccessTrace& trace) {
  std::map<int64_t, size_t> histogram;
  for (size_t i = 1; i < trace.size(); ++i) {
    ++histogram[trace[i].page - trace[i - 1].page];
  }
  return histogram;
}

TEST(AccessTraceTest, SequentialTraceHasUnitDeltas) {
  const AccessTrace trace = MakeSequentialTrace(1, 100, 50);
  ASSERT_EQ(trace.size(), 50u);
  EXPECT_EQ(trace.front().page, 100);
  EXPECT_EQ(trace.back().page, 149);
  const auto histogram = DeltaHistogram(trace);
  ASSERT_EQ(histogram.size(), 1u);
  EXPECT_EQ(histogram.at(1), 49u);
}

TEST(AccessTraceTest, StridedTraceWithoutNoiseIsPureStride) {
  Rng rng(1);
  const AccessTrace trace = MakeStridedTrace(1, 0, 7, 100, 0.0, rng);
  const auto histogram = DeltaHistogram(trace);
  ASSERT_EQ(histogram.size(), 1u);
  EXPECT_EQ(histogram.at(7), 99u);
}

TEST(AccessTraceTest, StridedTraceNoiseInjectsOtherDeltas) {
  Rng rng(2);
  const AccessTrace trace = MakeStridedTrace(1, 0, 4, 2000, 0.2, rng);
  const auto histogram = DeltaHistogram(trace);
  EXPECT_GT(histogram.size(), 1u);
}

TEST(AccessTraceTest, RandomTraceStaysInPageSpace) {
  Rng rng(3);
  const AccessTrace trace = MakeRandomTrace(2, 1000, 500, rng);
  for (const AccessEvent& event : trace) {
    EXPECT_GE(event.page, 0);
    EXPECT_LT(event.page, 1000);
    EXPECT_EQ(event.pid, 2u);
  }
}

TEST(AccessTraceTest, ZipfTraceIsSkewed) {
  Rng rng(4);
  const AccessTrace trace = MakeZipfTrace(1, 1000, 1.2, 5000, rng);
  std::map<int64_t, size_t> counts;
  for (const AccessEvent& event : trace) {
    ++counts[event.page];
  }
  EXPECT_GT(counts[0], counts.size() > 100 ? counts.rbegin()->second : 0u);
}

TEST(AccessTraceTest, VideoResizeLumaCycleIsPresent) {
  VideoResizeConfig config;
  config.noise_prob = 0.0;
  Rng rng(5);
  const AccessTrace trace = MakeVideoResizeTrace(config, rng);
  const auto histogram = DeltaHistogram(trace);
  // The documented 2-cycle: +width and -width+scale dominate the luma pass.
  ASSERT_TRUE(histogram.contains(config.width_pages));
  ASSERT_TRUE(histogram.contains(-config.width_pages + config.scale));
  // The chroma pass contributes a +2 single stride.
  ASSERT_TRUE(histogram.contains(2));
  // No unit-stride runs anywhere (that is the point of the workload).
  EXPECT_FALSE(histogram.contains(1));
}

TEST(AccessTraceTest, VideoResizeNoMajorityDeltaInLuma) {
  VideoResizeConfig config;
  config.noise_prob = 0.0;
  Rng rng(6);
  const AccessTrace trace = MakeVideoResizeTrace(config, rng);
  const auto histogram = DeltaHistogram(trace);
  // +width (the most common luma delta) must not hold a strict majority of
  // the whole trace, or Leap's vote would trivially win.
  EXPECT_LT(histogram.at(config.width_pages) * 2, trace.size() - 1);
}

TEST(AccessTraceTest, MatrixConvSixCycle) {
  MatrixConvConfig config;
  config.noise_prob = 0.0;
  Rng rng(7);
  const AccessTrace trace = MakeMatrixConvTrace(config, rng);
  const auto histogram = DeltaHistogram(trace);
  const int64_t width = config.width_pages;
  // Documented deltas: +1 (pair partner), +width-1 (next row of the span),
  // and the cycle-closing -2*width + tile_step - 1.
  ASSERT_TRUE(histogram.contains(1));
  ASSERT_TRUE(histogram.contains(width - 1));
  ASSERT_TRUE(histogram.contains(-2 * width + config.tile_step - 1));
  // +1 is exactly half the deltas within a full band (no strict majority).
  const size_t total = trace.size() - 1;
  EXPECT_NEAR(static_cast<double>(histogram.at(1)) / static_cast<double>(total), 0.5, 0.02);
}

TEST(AccessTraceTest, MatrixConvBandsAreStaggered) {
  MatrixConvConfig config;
  config.noise_prob = 0.0;
  Rng rng(8);
  const AccessTrace trace = MakeMatrixConvTrace(config, rng);
  // First access of band 0 is at column 0; band 1 starts 7 columns later
  // (phase = 7 % tile_step), so the first pages of the two bands differ by
  // more than a whole band height of rows.
  const int64_t band0_first = trace.front().page;
  EXPECT_EQ(band0_first, config.input_base);
  // Find the first access in the second band (row >= kernel).
  int64_t band1_first = -1;
  for (const AccessEvent& event : trace) {
    if (event.page >= config.input_base + config.kernel * config.width_pages) {
      band1_first = event.page;
      break;
    }
  }
  ASSERT_GE(band1_first, 0);
  EXPECT_EQ((band1_first - config.input_base) % config.width_pages, 7);
}

TEST(AccessTraceTest, InterleaveRoundRobinsAndKeepsAllEvents) {
  const AccessTrace a = MakeSequentialTrace(1, 0, 3);
  const AccessTrace b = MakeSequentialTrace(2, 100, 2);
  const AccessTrace merged = Interleave({a, b});
  ASSERT_EQ(merged.size(), 5u);
  EXPECT_EQ(merged[0].pid, 1u);
  EXPECT_EQ(merged[1].pid, 2u);
  EXPECT_EQ(merged[2].pid, 1u);
  EXPECT_EQ(merged[3].pid, 2u);
  EXPECT_EQ(merged[4].pid, 1u);
}

// --- CPU jobs ---

TEST(CpuJobsTest, KindNames) {
  EXPECT_EQ(JobKindName(JobKind::kBlackscholes), "blackscholes");
  EXPECT_EQ(JobKindName(JobKind::kStreamcluster), "streamcluster");
  EXPECT_EQ(JobKindName(JobKind::kFib), "fib");
  EXPECT_EQ(JobKindName(JobKind::kMatMul), "matmul");
}

TEST(CpuJobsTest, BlackscholesIsUniformNoBarriers) {
  JobConfig config;
  config.num_tasks = 8;
  config.base_work = 1000;
  const JobSpec job = MakeJob(JobKind::kBlackscholes, config);
  EXPECT_EQ(job.tasks.size(), 8u);
  EXPECT_EQ(job.num_phases, 0u);
  for (const TaskSpec& task : job.tasks) {
    EXPECT_EQ(task.arrival_tick, 0u);
    EXPECT_GE(task.total_work, 1000u);
    EXPECT_LE(task.total_work, 1100u);
    EXPECT_EQ(task.phase_work, 0u);
  }
}

TEST(CpuJobsTest, StreamclusterHasConsistentPhases) {
  const JobSpec job = MakeJob(JobKind::kStreamcluster);
  EXPECT_GT(job.num_phases, 0u);
  for (const TaskSpec& task : job.tasks) {
    EXPECT_GT(task.phase_work, 0u);
    EXPECT_EQ(task.total_work, task.phase_work * job.num_phases);
  }
}

TEST(CpuJobsTest, FibIsGeometricWithStaggeredArrivals) {
  JobConfig config;
  config.num_tasks = 12;
  config.base_work = 4096;
  const JobSpec job = MakeJob(JobKind::kFib, config);
  EXPECT_EQ(job.tasks.front().total_work, 4096u);
  EXPECT_LT(job.tasks.back().total_work, job.tasks.front().total_work);
  bool any_late = false;
  for (const TaskSpec& task : job.tasks) {
    any_late |= task.arrival_tick > 0;
  }
  EXPECT_TRUE(any_late);
}

TEST(CpuJobsTest, MatMulHasLargeFootprintAndStalls) {
  const JobSpec job = MakeJob(JobKind::kMatMul);
  for (const TaskSpec& task : job.tasks) {
    EXPECT_GE(task.cache_footprint, 1024);
    EXPECT_GT(task.run_burst, 0u);
    EXPECT_GT(task.sleep_ticks, 0u);
  }
}

TEST(CpuJobsTest, DeterministicGivenSeed) {
  JobConfig config;
  config.seed = 42;
  const JobSpec a = MakeJob(JobKind::kStreamcluster, config);
  const JobSpec b = MakeJob(JobKind::kStreamcluster, config);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].total_work, b.tasks[i].total_work);
  }
}

TEST(PacketTraceTest, DeterministicGivenSeed) {
  PacketTraceConfig config;
  config.packets = 4096;
  Rng rng_a(21);
  Rng rng_b(21);
  const PacketTrace a = MakePacketTrace(config, rng_a);
  const PacketTrace b = MakePacketTrace(config, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].flow_id, b[i].flow_id);
    EXPECT_EQ(a[i].dst_ip, b[i].dst_ip);
    EXPECT_EQ(a[i].length, b[i].length);
    EXPECT_EQ(a[i].flood, b[i].flood);
  }
}

TEST(PacketTraceTest, FlowIdIsTheTupleDigestAndPrefixesBound) {
  PacketTraceConfig config;
  config.packets = 2048;
  config.prefixes = 16;
  Rng rng(4);
  const PacketTrace trace = MakePacketTrace(config, rng);
  ASSERT_EQ(trace.size(), config.packets);
  for (const PacketEvent& pkt : trace) {
    EXPECT_EQ(pkt.flow_id,
              FlowDigest(pkt.src_ip, pkt.dst_ip, pkt.src_port, pkt.dst_port, pkt.proto));
    const uint32_t prefix = (pkt.dst_ip >> 8) & 0xffffff;
    EXPECT_EQ(pkt.dst_ip & 0xff000000u, 0x0A000000u);  // inside 10.0.0.0/8
    EXPECT_LT(prefix & 0xffff, config.prefixes);
  }
}

TEST(PacketTraceTest, ZipfMixHasElephantsAndMice) {
  PacketTraceConfig config;
  config.packets = 1 << 14;
  config.flows = 256;
  config.churn_interval = 0;
  Rng rng(5);
  const PacketTrace trace = MakePacketTrace(config, rng);
  std::map<uint64_t, size_t> counts;
  for (const PacketEvent& pkt : trace) {
    ++counts[pkt.flow_id];
  }
  size_t max_count = 0;
  for (const auto& [flow, count] : counts) {
    max_count = std::max(max_count, count);
  }
  // The top elephant must dwarf the uniform share by an order of magnitude.
  EXPECT_GT(max_count, 10 * trace.size() / counts.size());
}

TEST(PacketTraceTest, FloodWindowProducesFreshUdpFlowsAtTheVictim) {
  PacketTraceConfig config;
  config.packets = 8192;
  config.flood_begin = 0.25;
  config.flood_end = 0.75;
  config.flood_prob = 0.5;
  config.victim_prefix = 3;
  config.victim_port = 53;
  Rng rng(6);
  const PacketTrace trace = MakePacketTrace(config, rng);
  std::map<uint64_t, size_t> flood_flows;
  size_t flood_packets = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    const PacketEvent& pkt = trace[i];
    if (!pkt.flood) continue;
    ++flood_packets;
    ++flood_flows[pkt.flow_id];
    EXPECT_EQ(pkt.proto, 17);
    EXPECT_EQ(pkt.dst_port, config.victim_port);
    EXPECT_EQ(pkt.dst_ip & 0xffffff00u, PrefixBase(config.victim_prefix));
    // Flood packets live strictly inside the configured window.
    EXPECT_GE(i, static_cast<size_t>(config.flood_begin * config.packets));
    EXPECT_LT(i, static_cast<size_t>(config.flood_end * config.packets) + 1);
  }
  ASSERT_GT(flood_packets, 1000u);
  // Spoofed sources: every flood packet is its own never-seen flow.
  for (const auto& [flow, count] : flood_flows) {
    EXPECT_EQ(count, 1u);
  }
}

TEST(PacketTraceTest, ChurnRetiresFlows) {
  PacketTraceConfig config;
  config.packets = 1 << 14;
  config.flows = 64;
  config.churn_interval = 256;
  Rng rng(7);
  const PacketTrace trace = MakePacketTrace(config, rng);
  std::map<uint64_t, size_t> counts;
  for (const PacketEvent& pkt : trace) {
    ++counts[pkt.flow_id];
  }
  // Churn must push the distinct-flow population past the live set size.
  EXPECT_GT(counts.size(), config.flows * 3 / 2);
}

}  // namespace
}  // namespace rkd
