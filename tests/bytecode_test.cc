// Unit tests for src/bytecode: ISA predicates, assembler, disassembler.
#include <gtest/gtest.h>

#include "src/bytecode/assembler.h"
#include "src/bytecode/disassembler.h"
#include "src/bytecode/isa.h"
#include "src/bytecode/program.h"

namespace rkd {
namespace {

TEST(IsaTest, OpcodeNamesAreStable) {
  EXPECT_EQ(OpcodeName(Opcode::kAdd), "add");
  EXPECT_EQ(OpcodeName(Opcode::kJeqImm), "jeq_imm");
  EXPECT_EQ(OpcodeName(Opcode::kMatMul), "mat_mul");
  EXPECT_EQ(OpcodeName(Opcode::kScalarVal), "scalar_val");
  EXPECT_EQ(OpcodeName(Opcode::kVecLdCtxt), "vec_ld_ctxt");
  EXPECT_EQ(OpcodeName(Opcode::kTailCall), "tail_call");
  EXPECT_EQ(OpcodeName(Opcode::kExit), "exit");
}

TEST(IsaTest, EveryOpcodeHasAName) {
  for (uint16_t op = 0; op < static_cast<uint16_t>(Opcode::kOpcodeCount); ++op) {
    EXPECT_NE(OpcodeName(static_cast<Opcode>(op)), "invalid")
        << "opcode " << op << " missing a name";
  }
}

TEST(IsaTest, BranchPredicates) {
  EXPECT_TRUE(IsBranch(Opcode::kJa));
  EXPECT_TRUE(IsBranch(Opcode::kJeq));
  EXPECT_TRUE(IsBranch(Opcode::kJsetImm));
  EXPECT_FALSE(IsBranch(Opcode::kAdd));
  EXPECT_FALSE(IsBranch(Opcode::kExit));
  EXPECT_FALSE(IsBranch(Opcode::kTailCall));

  EXPECT_FALSE(IsConditional(Opcode::kJa));
  EXPECT_TRUE(IsConditional(Opcode::kJltImm));
}

TEST(IsaTest, VectorPredicate) {
  EXPECT_TRUE(IsVectorOp(Opcode::kMatMul));
  EXPECT_TRUE(IsVectorOp(Opcode::kMlCall));
  EXPECT_TRUE(IsVectorOp(Opcode::kVecDot));
  EXPECT_FALSE(IsVectorOp(Opcode::kAdd));
  EXPECT_FALSE(IsVectorOp(Opcode::kLdCtxt));
}

TEST(IsaTest, HelperNames) {
  EXPECT_EQ(HelperName(HelperId::kGetTime), "get_time");
  EXPECT_EQ(HelperName(HelperId::kPrefetchEmit), "prefetch_emit");
  EXPECT_EQ(HelperName(HelperId::kDpNoise), "dp_noise");
}

TEST(HookKindTest, Names) {
  EXPECT_EQ(HookKindName(HookKind::kMemPrefetch), "mem_prefetch");
  EXPECT_EQ(HookKindName(HookKind::kSchedMigrate), "sched_migrate");
}

// --- Assembler ---

TEST(AssemblerTest, EmitsInstructionsInOrder) {
  Assembler a("prog");
  a.MovImm(0, 7).AddImm(0, 3).Exit();
  Result<BytecodeProgram> program = a.Build();
  ASSERT_TRUE(program.ok());
  ASSERT_EQ(program->code.size(), 3u);
  EXPECT_EQ(program->code[0].opcode, Opcode::kMovImm);
  EXPECT_EQ(program->code[0].dst, 0);
  EXPECT_EQ(program->code[0].imm, 7);
  EXPECT_EQ(program->code[1].opcode, Opcode::kAddImm);
  EXPECT_EQ(program->code[2].opcode, Opcode::kExit);
}

TEST(AssemblerTest, ProgramCarriesNameAndHookKind) {
  Assembler a("sched_action", HookKind::kSchedMigrate);
  a.Exit();
  Result<BytecodeProgram> program = a.Build();
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->name, "sched_action");
  EXPECT_EQ(program->hook_kind, HookKind::kSchedMigrate);
}

TEST(AssemblerTest, DeclarationsAreCopied) {
  Assembler a("prog");
  a.DeclareMaps(2).DeclareModels(3).DeclareTensors(4).DeclareTables(5);
  a.Exit();
  Result<BytecodeProgram> program = a.Build();
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->num_maps, 2u);
  EXPECT_EQ(program->num_models, 3u);
  EXPECT_EQ(program->num_tensors, 4u);
  EXPECT_EQ(program->num_tables, 5u);
}

TEST(AssemblerTest, ForwardLabelResolvesToRelativeOffset) {
  Assembler a("prog");
  auto skip = a.NewLabel();
  a.MovImm(0, 1);          // 0
  a.JeqImm(1, 0, skip);    // 1: target 3 -> offset +1
  a.MovImm(0, 2);          // 2
  a.Bind(skip);
  a.Exit();                // 3
  Result<BytecodeProgram> program = a.Build();
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->code[1].offset, 1);
}

TEST(AssemblerTest, LabelAtNextInstructionHasZeroOffset) {
  Assembler a("prog");
  auto next = a.NewLabel();
  a.Ja(next);
  a.Bind(next);
  a.Exit();
  Result<BytecodeProgram> program = a.Build();
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->code[0].offset, 0);
}

TEST(AssemblerTest, UnboundLabelFailsBuild) {
  Assembler a("prog");
  auto never = a.NewLabel();
  a.Ja(never);
  a.Exit();
  Result<BytecodeProgram> program = a.Build();
  EXPECT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), StatusCode::kInvalidArgument);
}

TEST(AssemblerTest, DoubleBoundLabelFailsBuild) {
  Assembler a("prog");
  auto label = a.NewLabel();
  a.Bind(label);
  a.MovImm(0, 1);
  a.Bind(label);
  a.Exit();
  Result<BytecodeProgram> program = a.Build();
  EXPECT_FALSE(program.ok());
}

TEST(AssemblerTest, DefaultLabelIsInvalid) {
  Assembler a("prog");
  Assembler::Label label;  // never created via NewLabel
  a.Ja(label);
  a.Exit();
  Result<BytecodeProgram> program = a.Build();
  EXPECT_FALSE(program.ok());
}

TEST(AssemblerTest, MultipleBranchesToOneLabel) {
  Assembler a("prog");
  auto out = a.NewLabel();
  a.JeqImm(1, 0, out);   // 0 -> 4: +3
  a.JeqImm(1, 1, out);   // 1 -> 4: +2
  a.MovImm(0, 5);        // 2
  a.Ja(out);             // 3 -> 4: +0
  a.Bind(out);
  a.Exit();              // 4
  Result<BytecodeProgram> program = a.Build();
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->code[0].offset, 3);
  EXPECT_EQ(program->code[1].offset, 2);
  EXPECT_EQ(program->code[3].offset, 0);
}

TEST(AssemblerTest, StackAndCtxtOperandsEncoded) {
  Assembler a("prog");
  a.StStack(-16, 3);
  a.LdStack(4, -16);
  a.LdCtxt(5, 1, 7);
  a.StCtxt(1, 7, 5);
  a.Exit();
  Result<BytecodeProgram> program = a.Build();
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->code[0].offset, -16);
  EXPECT_EQ(program->code[0].src, 3);
  EXPECT_EQ(program->code[1].dst, 4);
  EXPECT_EQ(program->code[2].offset, 7);
  EXPECT_EQ(program->code[3].dst, 1);  // ctxt key register
  EXPECT_EQ(program->code[3].src, 5);  // value register
}

TEST(AssemblerTest, VectorOperandsEncoded) {
  Assembler a("prog");
  a.VecZero(2);
  a.ScalarVal(2, 5, 3);
  a.MatMul(1, 2, 9);
  a.MlCall(0, 1, 4);
  a.Exit();
  Result<BytecodeProgram> program = a.Build();
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->code[1].dst, 2);
  EXPECT_EQ(program->code[1].offset, 5);  // lane
  EXPECT_EQ(program->code[1].src, 3);     // scalar source
  EXPECT_EQ(program->code[2].imm, 9);     // tensor id
  EXPECT_EQ(program->code[3].imm, 4);     // model id
}

TEST(AssemblerTest, CurrentOffsetTracksEmission) {
  Assembler a("prog");
  EXPECT_EQ(a.current_offset(), 0u);
  a.MovImm(0, 1);
  EXPECT_EQ(a.current_offset(), 1u);
  a.AddImm(0, 1);
  EXPECT_EQ(a.current_offset(), 2u);
}

// --- Disassembler ---

TEST(DisassemblerTest, AluForms) {
  Instruction insn;
  insn.opcode = Opcode::kAdd;
  insn.dst = 1;
  insn.src = 2;
  EXPECT_EQ(DisassembleInstruction(insn), "add r1, r2");

  insn.opcode = Opcode::kMovImm;
  insn.dst = 3;
  insn.imm = -9;
  EXPECT_EQ(DisassembleInstruction(insn), "mov_imm r3, -9");
}

TEST(DisassemblerTest, BranchShowsRelativeTarget) {
  Instruction insn;
  insn.opcode = Opcode::kJeqImm;
  insn.dst = 4;
  insn.imm = 7;
  insn.offset = 5;
  EXPECT_EQ(DisassembleInstruction(insn), "jeq_imm r4, 7, +5");
}

TEST(DisassemblerTest, MemoryAndMapForms) {
  Instruction ld;
  ld.opcode = Opcode::kLdStack;
  ld.dst = 2;
  ld.offset = -8;
  EXPECT_EQ(DisassembleInstruction(ld), "ld_stack r2, [fp-8]");

  Instruction map;
  map.opcode = Opcode::kMapLookup;
  map.dst = 3;
  map.src = 1;
  map.imm = 2;
  EXPECT_EQ(DisassembleInstruction(map), "map_lookup r3, map2[r1]");
}

TEST(DisassemblerTest, MlForms) {
  Instruction mm;
  mm.opcode = Opcode::kMatMul;
  mm.dst = 1;
  mm.src = 0;
  mm.imm = 3;
  EXPECT_EQ(DisassembleInstruction(mm), "mat_mul v1, v0, t3");

  Instruction ml;
  ml.opcode = Opcode::kMlCall;
  ml.dst = 0;
  ml.src = 2;
  ml.imm = 1;
  EXPECT_EQ(DisassembleInstruction(ml), "ml_call r0, model1(v2)");

  Instruction call;
  call.opcode = Opcode::kCall;
  call.imm = static_cast<int64_t>(HelperId::kHistoryAppend);
  EXPECT_EQ(DisassembleInstruction(call), "call history_append");
}

TEST(DisassemblerTest, WholeProgramListsEveryInstruction) {
  Assembler a("listing", HookKind::kMemAccess);
  a.DeclareMaps(1);
  a.MovImm(0, 1).Exit();
  Result<BytecodeProgram> program = a.Build();
  ASSERT_TRUE(program.ok());
  const std::string text = Disassemble(*program);
  EXPECT_NE(text.find("program 'listing'"), std::string::npos);
  EXPECT_NE(text.find("hook=mem_access"), std::string::npos);
  EXPECT_NE(text.find("0: mov_imm r0, 1"), std::string::npos);
  EXPECT_NE(text.find("1: exit"), std::string::npos);
}

}  // namespace
}  // namespace rkd
