// The packet RX datapath: spec admission, policy semantics, governor
// degradation, accounting invariants, record/replay exactness, and the
// shared route/ACL generators at net-scale entry counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/base/rng.h"
#include "src/ml/dataset.h"
#include "src/replay/recorder.h"
#include "src/replay/replay.h"
#include "src/rmt/table.h"
#include "src/sim/net/net_sim.h"
#include "src/sim/net/rx_datapath.h"
#include "src/workloads/packet_trace.h"

namespace rkd {
namespace {

NetConfig SmallConfig() {
  NetConfig config;
  config.batch_size = 256;
  config.flow_cache_capacity = 128;
  config.route_prefixes = 32;
  config.acl_entries = 64;
  config.enable_tiering = false;
  return config;
}

PacketTraceConfig SmallTrace() {
  PacketTraceConfig config;
  config.packets = 2048;
  config.flows = 64;
  config.prefixes = 16;
  return config;
}

PacketEvent LegitPacket(uint32_t src_ip, uint32_t prefix, uint16_t src_port,
                        uint16_t dst_port, uint8_t proto) {
  PacketEvent pkt;
  pkt.src_ip = src_ip;
  pkt.dst_ip = PrefixBase(prefix) + 1;
  pkt.src_port = src_port;
  pkt.dst_port = dst_port;
  pkt.proto = proto;
  pkt.length = 200;
  pkt.flow_id = FlowDigest(pkt.src_ip, pkt.dst_ip, pkt.src_port, pkt.dst_port, proto);
  return pkt;
}

// A deterministic stand-in model: reads the elephant-rank lane and steers
// rank r to queue r, everything unranked to the drop class.
class RankSteerModel final : public InferenceModel {
 public:
  explicit RankSteerModel(uint16_t queues) : queues_(queues) {}
  int64_t Predict(std::span<const int32_t> features) const override {
    const int32_t rank = features[kNfRank];
    return rank >= 0 && rank < queues_ ? rank : queues_;
  }
  size_t num_features() const override { return kNetFeatureCount; }
  ModelCost Cost() const override {
    ModelCost cost;
    cost.comparisons = 2;
    return cost;
  }
  std::string_view kind() const override { return "test_rank_steer"; }

 private:
  uint16_t queues_;
};

// --- Decision encoding ------------------------------------------------------

TEST(RxDecisionTest, PackAndUnpackRoundTrip) {
  const int64_t d = MakeRxDecision(kRxRedirect, 5);
  EXPECT_EQ(RxVerdictOf(d), kRxRedirect);
  EXPECT_EQ(RxQueueOf(d), 5);
  EXPECT_EQ(MakeRxDecision(kRxPass, 3), 3);  // pass(q) == plain queue id
  EXPECT_EQ(RxVerdictOf(3), kRxPass);
}

// --- Spec admission ---------------------------------------------------------

TEST(RxDatapathTest, BothPoliciesInstallThroughTheVerifier) {
  for (const RxPolicyKind policy : {RxPolicyKind::kHeuristic, RxPolicyKind::kLearned}) {
    RmtRxDatapath datapath(SmallConfig(), policy);
    ASSERT_TRUE(datapath.Init().ok());
    EXPECT_GE(datapath.handle(), 0);
    EXPECT_NE(datapath.packet_hook(), kInvalidHook);
    EXPECT_TRUE(datapath.hooks().HasFallbackOracle(datapath.packet_hook()));
  }
}

TEST(RxDatapathTest, SpecDeclaresThreeTablesAndAModelSlot) {
  RmtRxDatapath datapath(SmallConfig(), RxPolicyKind::kLearned);
  const RmtProgramSpec spec = datapath.BuildProgramSpec();
  ASSERT_EQ(spec.tables.size(), 3u);
  EXPECT_EQ(spec.tables[0].match_kind, MatchKind::kLpm);
  EXPECT_EQ(spec.tables[1].match_kind, MatchKind::kTernary);
  EXPECT_EQ(spec.tables[2].match_kind, MatchKind::kExact);
  EXPECT_EQ(spec.model_slots, 1u);
  // The flow table's default action must equal its entry action: a cache miss
  // may cost time but never change the decision (replay exactness rests on
  // this).
  EXPECT_EQ(spec.tables[2].default_action, 0);
  ASSERT_EQ(spec.tables[2].actions.size(), 1u);
}

// --- Policy semantics -------------------------------------------------------

TEST(RxDatapathTest, HeuristicObeysAclAndHashesTheRest) {
  const NetConfig config = SmallConfig();
  RmtRxDatapath datapath(config, RxPolicyKind::kHeuristic);
  ASSERT_TRUE(datapath.Init().ok());

  // Entry 0 of the drop family matches proto=17, src_port=1024 exactly.
  std::vector<PacketEvent> packets;
  packets.push_back(LegitPacket(0xC0A80001, 3, 1024, 80, 17));   // ACL drop
  packets.push_back(LegitPacket(0xC0A80002, 4, 40000, 443, 6));  // clean TCP
  std::vector<NetFeatureRow> rows(packets.size());
  for (auto& row : rows) row.fill(0);
  std::vector<int64_t> decisions(packets.size(), 0);
  datapath.DecideBatch(packets, rows, {}, decisions);

  EXPECT_EQ(decisions[0], MakeRxDecision(kRxDrop, 0));
  EXPECT_EQ(decisions[1], RssQueue(packets[1].flow_id, config.queues));
  EXPECT_EQ(rows[0][kNfAclVerdict], kRxDrop);
  EXPECT_EQ(rows[1][kNfAclVerdict], kRxPass);
  // Route classes come from the LPM stage.
  EXPECT_EQ(rows[0][kNfRouteClass], 3 % config.route_classes);
  EXPECT_EQ(rows[1][kNfRouteClass], 4 % config.route_classes);
}

TEST(RxDatapathTest, LearnedWithoutModelDegradesToRss) {
  const NetConfig config = SmallConfig();
  RmtRxDatapath datapath(config, RxPolicyKind::kLearned);
  ASSERT_TRUE(datapath.Init().ok());
  std::vector<PacketEvent> packets = {LegitPacket(0xC0A80003, 1, 50000, 8080, 6)};
  std::vector<NetFeatureRow> rows(1);
  rows[0].fill(0);
  std::vector<int64_t> decisions(1, 0);
  datapath.DecideBatch(packets, rows, {}, decisions);
  EXPECT_EQ(decisions[0], RssQueue(packets[0].flow_id, config.queues));
}

TEST(RxDatapathTest, LearnedSteersByModelClassAndDropsTheDropClass) {
  const NetConfig config = SmallConfig();
  RmtRxDatapath datapath(config, RxPolicyKind::kLearned);
  ASSERT_TRUE(datapath.Init().ok());
  ASSERT_TRUE(datapath.InstallModel(std::make_shared<RankSteerModel>(config.queues)).ok());

  std::vector<PacketEvent> packets = {LegitPacket(0xC0A80004, 2, 50001, 80, 6),
                                      LegitPacket(0xC0A80005, 2, 50002, 443, 6)};
  std::vector<NetFeatureRow> rows(2);
  rows[0].fill(0);
  rows[0][kNfRank] = 3;              // ranked elephant -> queue 3
  rows[1].fill(0);
  rows[1][kNfRank] = config.queues;  // unranked -> model says drop
  std::vector<int64_t> decisions(2, 0);
  datapath.DecideBatch(packets, rows, {}, decisions);
  EXPECT_EQ(decisions[0], MakeRxDecision(kRxPass, 3));
  EXPECT_EQ(decisions[1], MakeRxDecision(kRxDrop, 0));
}

TEST(RxDatapathTest, AclOutranksTheModel) {
  const NetConfig config = SmallConfig();
  RmtRxDatapath datapath(config, RxPolicyKind::kLearned);
  ASSERT_TRUE(datapath.Init().ok());
  ASSERT_TRUE(datapath.InstallModel(std::make_shared<RankSteerModel>(config.queues)).ok());
  std::vector<PacketEvent> packets = {LegitPacket(0xC0A80006, 5, 1024, 80, 17)};
  std::vector<NetFeatureRow> rows(1);
  rows[0].fill(0);
  rows[0][kNfRank] = 2;  // model would steer to queue 2
  std::vector<int64_t> decisions(1, 0);
  datapath.DecideBatch(packets, rows, {}, decisions);
  EXPECT_EQ(decisions[0], MakeRxDecision(kRxDrop, 0));  // the ACL wins
}

// --- Governor ladder --------------------------------------------------------

TEST(RxDatapathTest, DegradedRungAnswersWithTheRssOracle) {
  const NetConfig config = SmallConfig();
  RmtRxDatapath datapath(config, RxPolicyKind::kLearned);
  ASSERT_TRUE(datapath.Init().ok());
  ASSERT_TRUE(datapath.InstallModel(std::make_shared<RankSteerModel>(config.queues)).ok());
  datapath.control_plane().Get(datapath.handle())->set_governor_level(GovLevel::kDegraded);

  std::vector<PacketEvent> packets = {LegitPacket(0xC0A80007, 6, 50003, 80, 6)};
  std::vector<NetFeatureRow> rows(1);
  rows[0].fill(0);
  rows[0][kNfRank] = 1;  // the model would steer to queue 1...
  std::vector<int64_t> decisions(1, 0);
  datapath.DecideBatch(packets, rows, {}, decisions);
  // ...but the degraded rung short-circuits to the registered RSS oracle.
  EXPECT_EQ(decisions[0], RssQueue(packets[0].flow_id, config.queues));
}

TEST(RxDatapathTest, ShedRungReturnsHookFallbackAndTheSimStillDelivers) {
  const NetConfig config = SmallConfig();
  RmtRxDatapath datapath(config, RxPolicyKind::kHeuristic);
  ASSERT_TRUE(datapath.Init().ok());
  datapath.control_plane().Get(datapath.handle())->set_governor_level(GovLevel::kShed);

  Rng rng(11);
  const PacketTrace trace = MakePacketTrace(SmallTrace(), rng);
  NetRxSim sim(&datapath);
  sim.Run(trace);
  const NetMetrics& m = sim.metrics();
  EXPECT_EQ(m.packets, trace.size());
  EXPECT_GT(m.fallback_decisions, 0u);  // every shed fire came back kHookFallback
  EXPECT_EQ(m.policy_drops, 0u);        // stock-kernel RSS drops nothing
}

// --- Sim accounting ---------------------------------------------------------

TEST(NetRxSimTest, AccountingInvariantsHoldWithFlood) {
  const NetConfig config = SmallConfig();
  RmtRxDatapath datapath(config, RxPolicyKind::kHeuristic);
  ASSERT_TRUE(datapath.Init().ok());
  PacketTraceConfig trace_config = SmallTrace();
  trace_config.flood_begin = 0.4;
  trace_config.flood_end = 0.8;
  trace_config.flood_prob = 0.5;
  Rng rng(5);
  const PacketTrace trace = MakePacketTrace(trace_config, rng);
  NetRxSim sim(&datapath);
  sim.Run(trace);
  const NetMetrics& m = sim.metrics();

  EXPECT_EQ(m.packets, trace.size());
  EXPECT_GT(m.flood_packets, 0u);
  EXPECT_EQ(m.flood_packets + m.legit_packets, m.packets);
  EXPECT_EQ(m.flood_delivered + m.flood_dropped, m.flood_packets);
  EXPECT_EQ(m.legit_delivered + m.legit_dropped, m.legit_packets);
  EXPECT_EQ(m.cache_hits + m.cache_misses, m.packets);
  uint64_t offered = 0;
  for (const uint64_t q : m.queue_packets) offered += q;
  EXPECT_EQ(offered + m.policy_drops + m.redirects, m.packets);
  EXPECT_EQ(datapath.packets_decided(), trace.size());
}

TEST(NetRxSimTest, ContextStoreStaysBoundedUnderFloodChurn) {
  NetConfig config = SmallConfig();
  config.batch_size = 512;
  RmtRxDatapath datapath(config, RxPolicyKind::kHeuristic);
  ASSERT_TRUE(datapath.Init().ok());
  PacketTraceConfig trace_config = SmallTrace();
  trace_config.packets = 8192;
  trace_config.flood_begin = 0.0;
  trace_config.flood_end = 1.0;
  trace_config.flood_prob = 0.7;  // mostly never-seen flows
  Rng rng(9);
  const PacketTrace trace = MakePacketTrace(trace_config, rng);
  NetRxSim sim(&datapath);
  sim.Run(trace);
  EXPECT_EQ(datapath.context_publish_failures(), 0u);
}

TEST(NetRxSimTest, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    RmtRxDatapath datapath(SmallConfig(), RxPolicyKind::kHeuristic);
    EXPECT_TRUE(datapath.Init().ok());
    Rng rng(77);
    const PacketTrace trace = MakePacketTrace(SmallTrace(), rng);
    NetRxSim sim(&datapath);
    sim.Run(trace);
    return sim.metrics();
  };
  const NetMetrics a = run_once();
  const NetMetrics b = run_once();
  EXPECT_EQ(a.queue_bytes, b.queue_bytes);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.policy_drops, b.policy_drops);
  EXPECT_EQ(a.slow_path_ns, b.slow_path_ns);
}

// --- Record/replay exactness ------------------------------------------------

TEST(NetReplayTest, LiveRecordingReplaysExactlyAgainstTheIncumbent) {
  NetConfig config = SmallConfig();
  RmtRxDatapath datapath(config, RxPolicyKind::kHeuristic);
  ASSERT_TRUE(datapath.Init().ok());
  ExperienceRecorderConfig recorder_config;
  recorder_config.source = "net";
  ExperienceRecorder recorder(&datapath.hooks(), recorder_config);
  ASSERT_TRUE(datapath.AttachRecorder(&recorder).ok());

  PacketTraceConfig trace_config = SmallTrace();
  trace_config.flood_begin = 0.5;
  trace_config.flood_end = 0.9;
  trace_config.flood_prob = 0.4;
  Rng rng(13);
  const PacketTrace trace = MakePacketTrace(trace_config, rng);
  NetRxSim sim(&datapath);
  sim.Run(trace);
  recorder.Detach();
  const ExperienceLog log = recorder.TakeLog();
  ASSERT_EQ(log.fire_count(), 3 * trace.size());  // route + classify + packet

  ReplayEngine engine;
  for (const ExecTier tier : {ExecTier::kInterpreter, ExecTier::kJit}) {
    ReplayOptions options;
    options.tier = tier;
    Result<DivergenceReport> report = engine.Replay(
        log, datapath.BuildProgramSpec(RxPolicyKind::kHeuristic, "net_replay_candidate"),
        options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    // Exactness: the rebuilt incumbent must agree with every recorded fire,
    // flow-cache churn and all (the default action carries the misses).
    EXPECT_EQ(report->decision_match_rate(), 1.0);
    EXPECT_EQ(report->total_exec_errors(), 0u);
  }
}

// --- Shared generators at net scale ----------------------------------------

TEST(NetTableScaleTest, GeneratedRouteAndAclTablesMatchLinearAtTenThousand) {
  NetConfig config;
  config.route_prefixes = 10000;
  config.acl_entries = 10240;
  config.acl_mask_diversity = 8;
  const std::vector<TableEntry> routes = MakeRouteEntries(config);
  const std::vector<TableEntry> acls = MakeAclEntries(config);
  ASSERT_EQ(routes.size(), config.route_prefixes + 1);
  ASSERT_EQ(acls.size(), config.acl_entries);
  {
    std::set<std::pair<uint64_t, uint64_t>> unique;
    for (const TableEntry& e : acls) unique.emplace(e.key, e.key2);
    EXPECT_EQ(unique.size(), acls.size());
  }

  RmtTable route_compiled("rc", MatchKind::kLpm, routes.size(), TableIndexMode::kCompiled);
  RmtTable route_linear("rl", MatchKind::kLpm, routes.size(), TableIndexMode::kLinear);
  ASSERT_TRUE(route_compiled.InsertBatch(routes).ok());
  ASSERT_TRUE(route_linear.InsertBatch(routes).ok());
  RmtTable acl_compiled("ac", MatchKind::kTernary, acls.size(), TableIndexMode::kCompiled);
  RmtTable acl_linear("al", MatchKind::kTernary, acls.size(), TableIndexMode::kLinear);
  ASSERT_TRUE(acl_compiled.InsertBatch(acls).ok());
  ASSERT_TRUE(acl_linear.InsertBatch(acls).ok());

  // Probe with the traffic the datapath would actually offer.
  PacketTraceConfig trace_config;
  trace_config.packets = 4096;
  trace_config.flows = 256;
  trace_config.prefixes = 8192;
  trace_config.flood_begin = 0.5;
  trace_config.flood_end = 1.0;
  trace_config.flood_prob = 0.5;
  Rng rng(3);
  const PacketTrace trace = MakePacketTrace(trace_config, rng);
  for (const PacketEvent& pkt : trace) {
    const TableEntry* a = route_compiled.Peek(pkt.dst_ip);
    const TableEntry* b = route_linear.Peek(pkt.dst_ip);
    ASSERT_EQ(a == nullptr, b == nullptr);
    if (a != nullptr) {
      EXPECT_EQ(a->key, b->key);
      EXPECT_EQ(a->key2, b->key2);
    }
    const TableEntry* c = acl_compiled.Peek(ClassifyKey(pkt));
    const TableEntry* d = acl_linear.Peek(ClassifyKey(pkt));
    ASSERT_EQ(c == nullptr, d == nullptr);
    if (c != nullptr) {
      EXPECT_EQ(c->key, d->key);
      EXPECT_EQ(c->priority, d->priority);
    }
  }
}

}  // namespace
}  // namespace rkd
