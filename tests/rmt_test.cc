// Tests for the RMT core: match/action tables, hook registry, control-plane
// install/verify/entry/model management, adaptation, and the syscall layer.
#include <array>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/failpoints.h"
#include "src/bytecode/assembler.h"
#include "src/ml/decision_tree.h"
#include "src/ml/quantize.h"
#include "src/rmt/control_plane.h"
#include "src/rmt/syscall.h"
#include "src/rmt/table.h"

namespace rkd {
namespace {

// --- RmtTable matching ---

TEST(RmtTableTest, ExactMatch) {
  RmtTable table("t", MatchKind::kExact, 8);
  TableEntry entry;
  entry.key = 42;
  entry.action_index = 1;
  ASSERT_TRUE(table.Insert(entry).ok());
  const TableEntry* hit = table.Match(42);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->action_index, 1);
  EXPECT_EQ(table.Match(43), nullptr);
  EXPECT_EQ(table.hits(), 1u);
  EXPECT_EQ(table.misses(), 1u);
}

TEST(RmtTableTest, PeekDoesNotTouchCounters) {
  RmtTable table("t", MatchKind::kExact, 8);
  TableEntry entry;
  entry.key = 1;
  ASSERT_TRUE(table.Insert(entry).ok());
  EXPECT_NE(table.Peek(1), nullptr);
  EXPECT_EQ(table.hits(), 0u);
}

TEST(RmtTableTest, DuplicateSpecRejected) {
  RmtTable table("t", MatchKind::kExact, 8);
  TableEntry entry;
  entry.key = 5;
  ASSERT_TRUE(table.Insert(entry).ok());
  EXPECT_EQ(table.Insert(entry).code(), StatusCode::kAlreadyExists);
}

TEST(RmtTableTest, CapacityEnforced) {
  RmtTable table("t", MatchKind::kExact, 2);
  TableEntry a;
  a.key = 1;
  TableEntry b;
  b.key = 2;
  TableEntry c;
  c.key = 3;
  ASSERT_TRUE(table.Insert(a).ok());
  ASSERT_TRUE(table.Insert(b).ok());
  EXPECT_EQ(table.Insert(c).code(), StatusCode::kResourceExhausted);
}

TEST(RmtTableTest, RemoveRebuildsExactIndex) {
  RmtTable table("t", MatchKind::kExact, 8);
  for (uint64_t k = 1; k <= 4; ++k) {
    TableEntry entry;
    entry.key = k;
    entry.action_index = static_cast<int32_t>(k);
    ASSERT_TRUE(table.Insert(entry).ok());
  }
  ASSERT_TRUE(table.Remove(2).ok());
  EXPECT_EQ(table.Match(2), nullptr);
  ASSERT_NE(table.Match(4), nullptr);
  EXPECT_EQ(table.Match(4)->action_index, 4);
  EXPECT_EQ(table.Remove(2).code(), StatusCode::kNotFound);
}

TEST(RmtTableTest, ModifyRebindsAction) {
  RmtTable table("t", MatchKind::kExact, 8);
  TableEntry entry;
  entry.key = 7;
  entry.action_index = 0;
  ASSERT_TRUE(table.Insert(entry).ok());
  ASSERT_TRUE(table.Modify(7, 0, 2, 5).ok());
  EXPECT_EQ(table.Match(7)->action_index, 2);
  EXPECT_EQ(table.Match(7)->model_slot, 5);
  EXPECT_FALSE(table.Modify(8, 0, 1, -1).ok());
}

TEST(RmtTableTest, LpmPrefersLongestPrefix) {
  RmtTable table("t", MatchKind::kLpm, 8);
  TableEntry wide;    // matches everything with the top 8 bits 0x12
  wide.key = 0x1200000000000000ull;
  wide.key2 = 8;
  wide.action_index = 1;
  TableEntry narrow;  // matches the top 16 bits 0x1234
  narrow.key = 0x1234000000000000ull;
  narrow.key2 = 16;
  narrow.action_index = 2;
  ASSERT_TRUE(table.Insert(wide).ok());
  ASSERT_TRUE(table.Insert(narrow).ok());
  EXPECT_EQ(table.Match(0x1234567800000000ull)->action_index, 2);
  EXPECT_EQ(table.Match(0x12ff000000000000ull)->action_index, 1);
  EXPECT_EQ(table.Match(0x9900000000000000ull), nullptr);
}

TEST(RmtTableTest, LpmZeroPrefixIsDefaultRoute) {
  RmtTable table("t", MatchKind::kLpm, 8);
  TableEntry def;
  def.key = 0;
  def.key2 = 0;
  def.action_index = 9;
  ASSERT_TRUE(table.Insert(def).ok());
  EXPECT_EQ(table.Match(0xdeadbeef)->action_index, 9);
}

TEST(RmtTableTest, LpmRejectsOverlongPrefix) {
  RmtTable table("t", MatchKind::kLpm, 8);
  TableEntry bad;
  bad.key2 = 65;
  EXPECT_FALSE(table.Insert(bad).ok());
}

TEST(RmtTableTest, RangeMatchIsInclusive) {
  RmtTable table("t", MatchKind::kRange, 8);
  TableEntry entry;
  entry.key = 10;
  entry.key2 = 20;
  entry.action_index = 3;
  ASSERT_TRUE(table.Insert(entry).ok());
  EXPECT_NE(table.Match(10), nullptr);
  EXPECT_NE(table.Match(20), nullptr);
  EXPECT_EQ(table.Match(9), nullptr);
  EXPECT_EQ(table.Match(21), nullptr);
}

TEST(RmtTableTest, RangeRejectsInvertedBounds) {
  RmtTable table("t", MatchKind::kRange, 8);
  TableEntry entry;
  entry.key = 20;
  entry.key2 = 10;
  EXPECT_FALSE(table.Insert(entry).ok());
}

TEST(RmtTableTest, TernaryHighestPriorityWins) {
  RmtTable table("t", MatchKind::kTernary, 8);
  TableEntry low;
  low.key = 0b0000;
  low.key2 = 0b0011;  // match low two bits == 00
  low.priority = 1;
  low.action_index = 1;
  TableEntry high;
  high.key = 0b0100;
  high.key2 = 0b0100;  // match bit 2 set
  high.priority = 10;
  high.action_index = 2;
  ASSERT_TRUE(table.Insert(low).ok());
  ASSERT_TRUE(table.Insert(high).ok());
  EXPECT_EQ(table.Match(0b0100)->action_index, 2);  // both match; priority
  EXPECT_EQ(table.Match(0b1000)->action_index, 1);  // only the low entry
  EXPECT_EQ(table.Match(0b0001), nullptr);
}

// --- Hook registry ---

TEST(HookRegistryTest, RegisterAndLookup) {
  HookRegistry hooks;
  Result<HookId> id = hooks.Register("mm.test", HookKind::kMemAccess);
  ASSERT_TRUE(id.ok());
  Result<HookId> found = hooks.Lookup("mm.test");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *id);
  EXPECT_EQ(hooks.KindOf(*id), HookKind::kMemAccess);
  EXPECT_EQ(hooks.NameOf(*id), "mm.test");
  EXPECT_FALSE(hooks.Lookup("nope").ok());
  EXPECT_FALSE(hooks.Register("mm.test", HookKind::kGeneric).ok());
}

TEST(HookRegistryTest, FireWithNothingAttachedFallsBack) {
  HookRegistry hooks;
  Result<HookId> id = hooks.Register("h", HookKind::kGeneric);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(hooks.Fire(*id, 1), kHookFallback);
  EXPECT_EQ(hooks.Fire(kInvalidHook, 1), kHookFallback);
  EXPECT_EQ(hooks.MetricsOf(*id).fires(), 1u);
}

TEST(HookRegistryTest, MetricsViewCountsFires) {
  HookRegistry hooks;
  Result<HookId> id = hooks.Register("h", HookKind::kGeneric);
  ASSERT_TRUE(id.ok());
  for (int i = 0; i < 3; ++i) {
    hooks.Fire(*id, i);
  }
  const HookMetrics metrics = hooks.MetricsOf(*id);
  EXPECT_EQ(metrics.fires(), 3u);
  EXPECT_EQ(metrics.actions_run(), 0u);  // nothing attached
  EXPECT_EQ(metrics.exec_errors(), 0u);
  // Every fire records real latency into the histogram.
  EXPECT_EQ(metrics.fire_ns().count(), 3u);
}

TEST(HookRegistryTest, FirePushesTraceEvents) {
  HookRegistry hooks;
  Result<HookId> id = hooks.Register("h", HookKind::kGeneric);
  ASSERT_TRUE(id.ok());
  hooks.Fire(*id, 42);
  const std::vector<TraceEvent> events = hooks.telemetry().trace().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, kHookFireEvent);
  EXPECT_EQ(events[0].source, *id);
  EXPECT_EQ(events[0].key, 42u);
  EXPECT_EQ(events[0].value, kHookFallback);
}

TEST(HookRegistryTest, MetricsOfInvalidHookIsZero) {
  HookRegistry hooks;
  const HookMetrics metrics = hooks.MetricsOf(kInvalidHook);
  EXPECT_EQ(metrics.fires(), 0u);
  EXPECT_EQ(metrics.fire_ns().count(), 0u);
}

// --- Control plane ---

// A generic-hook program whose single action returns key + 100.
RmtProgramSpec SimpleSpec(const std::string& hook_name) {
  Assembler a("add100", HookKind::kGeneric);
  a.Mov(0, 1).AddImm(0, 100).Exit();
  RmtProgramSpec spec;
  spec.name = "simple";
  RmtTableSpec table;
  table.name = "tab";
  table.hook_point = hook_name;
  table.actions.push_back(std::move(a.Build()).value());
  table.default_action = 0;
  spec.tables.push_back(std::move(table));
  return spec;
}

class ControlPlaneTest : public ::testing::Test {
 protected:
  ControlPlaneTest() : cp_(&hooks_) {
    hook_ = *hooks_.Register("generic.hook", HookKind::kGeneric);
  }

  HookRegistry hooks_;
  ControlPlane cp_;
  HookId hook_;
};

TEST_F(ControlPlaneTest, InstallAttachAndFire) {
  Result<ControlPlane::ProgramHandle> handle = cp_.Install(SimpleSpec("generic.hook"));
  ASSERT_TRUE(handle.ok()) << handle.status();
  EXPECT_EQ(cp_.installed_count(), 1u);
  EXPECT_EQ(hooks_.Fire(hook_, 7), 107);
  EXPECT_EQ(hooks_.MetricsOf(hook_).actions_run(), 1u);
}

TEST_F(ControlPlaneTest, InstallPopulatesControlPlaneMetrics) {
  ASSERT_TRUE(cp_.Install(SimpleSpec("generic.hook")).ok());
  EXPECT_FALSE(cp_.Install(SimpleSpec("missing.hook")).ok());
  const ControlPlaneMetrics& metrics = cp_.Metrics();
  EXPECT_EQ(metrics.installs->value(), 1u);
  EXPECT_EQ(metrics.install_errors->value(), 1u);
  EXPECT_EQ(metrics.install_ns->count(), 2u);  // failures are timed too
  EXPECT_GE(metrics.verify_ns->count(), 1u);
}

TEST_F(ControlPlaneTest, VmInvocationsFlowIntoSharedRegistry) {
  ASSERT_TRUE(cp_.Install(SimpleSpec("generic.hook")).ok());
  hooks_.Fire(hook_, 1);
  hooks_.Fire(hook_, 2);
  TelemetryRegistry& telemetry = hooks_.telemetry();
  EXPECT_EQ(telemetry.GetCounter("rkd.vm.invocations")->value(), 2u);
  EXPECT_EQ(telemetry.GetHistogram("rkd.vm.run_ns")->count(), 2u);
}

TEST_F(ControlPlaneTest, InterpreterTierBehavesIdentically) {
  Result<ControlPlane::ProgramHandle> handle =
      cp_.Install(SimpleSpec("generic.hook"), ExecTier::kInterpreter);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(hooks_.Fire(hook_, 9), 109);
}

TEST_F(ControlPlaneTest, UninstallDetaches) {
  Result<ControlPlane::ProgramHandle> handle = cp_.Install(SimpleSpec("generic.hook"));
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(cp_.Uninstall(*handle).ok());
  EXPECT_EQ(cp_.installed_count(), 0u);
  EXPECT_EQ(hooks_.Fire(hook_, 7), kHookFallback);
  EXPECT_FALSE(cp_.Uninstall(*handle).ok());  // double uninstall
}

TEST_F(ControlPlaneTest, UnknownHookRejected) {
  EXPECT_FALSE(cp_.Install(SimpleSpec("missing.hook")).ok());
}

TEST_F(ControlPlaneTest, HookKindMismatchRejected) {
  RmtProgramSpec spec = SimpleSpec("generic.hook");
  spec.tables[0].actions[0].hook_kind = HookKind::kSchedMigrate;
  Result<ControlPlane::ProgramHandle> handle = cp_.Install(spec);
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kVerificationFailed);
}

TEST_F(ControlPlaneTest, UnverifiableActionRejectedAtInstall) {
  RmtProgramSpec spec = SimpleSpec("generic.hook");
  // Corrupt the action: read of an uninitialized register.
  Assembler a("bad", HookKind::kGeneric);
  a.Mov(0, 6).Exit();
  spec.tables[0].actions[0] = std::move(a.Build()).value();
  EXPECT_FALSE(cp_.Install(spec).ok());
}

TEST_F(ControlPlaneTest, UndeclaredResourceCoverageRejected) {
  RmtProgramSpec spec = SimpleSpec("generic.hook");
  spec.tables[0].actions[0].num_maps = 2;  // declares 2 maps, spec provides 0
  EXPECT_FALSE(cp_.Install(spec).ok());
}

TEST_F(ControlPlaneTest, MatchedEntrySelectsItsAction) {
  // Two actions: default returns 1, entry-bound action returns 2.
  RmtProgramSpec spec;
  spec.name = "two_actions";
  Assembler d("ret1", HookKind::kGeneric);
  d.MovImm(0, 1).Exit();
  Assembler e("ret2", HookKind::kGeneric);
  e.MovImm(0, 2).Exit();
  RmtTableSpec table;
  table.name = "tab";
  table.hook_point = "generic.hook";
  table.actions.push_back(std::move(d.Build()).value());
  table.actions.push_back(std::move(e.Build()).value());
  table.default_action = 0;
  TableEntry entry;
  entry.key = 42;
  entry.action_index = 1;
  table.initial_entries.push_back(entry);
  spec.tables.push_back(std::move(table));

  Result<ControlPlane::ProgramHandle> handle = cp_.Install(spec);
  ASSERT_TRUE(handle.ok()) << handle.status();
  EXPECT_EQ(hooks_.Fire(hook_, 42), 2);  // matched entry
  EXPECT_EQ(hooks_.Fire(hook_, 43), 1);  // miss -> default action
}

TEST_F(ControlPlaneTest, EntryManagementAtRuntime) {
  RmtProgramSpec spec;
  spec.name = "entries";
  Assembler d("ret1", HookKind::kGeneric);
  d.MovImm(0, 1).Exit();
  Assembler e("ret2", HookKind::kGeneric);
  e.MovImm(0, 2).Exit();
  RmtTableSpec table;
  table.name = "tab";
  table.hook_point = "generic.hook";
  table.actions.push_back(std::move(d.Build()).value());
  table.actions.push_back(std::move(e.Build()).value());
  table.default_action = -1;  // no default: miss means no action
  spec.tables.push_back(std::move(table));
  Result<ControlPlane::ProgramHandle> handle = cp_.Install(spec);
  ASSERT_TRUE(handle.ok());

  EXPECT_EQ(hooks_.Fire(hook_, 5), kHookFallback);  // nothing matches

  TableEntry entry;
  entry.key = 5;
  entry.action_index = 0;
  ASSERT_TRUE(cp_.AddEntry(*handle, "tab", entry).ok());
  EXPECT_EQ(hooks_.Fire(hook_, 5), 1);

  ASSERT_TRUE(cp_.ModifyEntry(*handle, "tab", 5, 0, 1).ok());
  EXPECT_EQ(hooks_.Fire(hook_, 5), 2);

  ASSERT_TRUE(cp_.RemoveEntry(*handle, "tab", 5).ok());
  EXPECT_EQ(hooks_.Fire(hook_, 5), kHookFallback);

  EXPECT_FALSE(cp_.AddEntry(*handle, "missing_table", entry).ok());
  entry.action_index = 7;  // out of range
  EXPECT_FALSE(cp_.AddEntry(*handle, "tab", entry).ok());
}

TEST_F(ControlPlaneTest, MlCallUsesInstalledModelAndSentinelBefore) {
  RmtProgramSpec spec;
  spec.name = "ml";
  spec.model_slots = 1;
  Assembler a("predict", HookKind::kGeneric);
  a.DeclareModels(1);
  a.VecZero(0);
  a.MovImm(2, 75);
  a.ScalarVal(0, 0, 2);
  a.MlCall(0, 0, 0);
  a.Exit();
  RmtTableSpec table;
  table.name = "tab";
  table.hook_point = "generic.hook";
  table.actions.push_back(std::move(a.Build()).value());
  table.default_action = 0;
  spec.tables.push_back(std::move(table));
  Result<ControlPlane::ProgramHandle> handle = cp_.Install(spec);
  ASSERT_TRUE(handle.ok()) << handle.status();

  // No model installed yet: the sentinel propagates to the hook result.
  EXPECT_EQ(hooks_.Fire(hook_, 1), kNoModelSentinel);

  // Train a threshold tree (x > 50 -> 1) and install it.
  Dataset data(1);
  for (int32_t x = 0; x <= 100; ++x) {
    data.Add(std::array<int32_t, 1>{x}, x > 50 ? 1 : 0);
  }
  Result<DecisionTree> tree = DecisionTree::Train(data);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(
      cp_.InstallModel(*handle, 0, std::make_shared<DecisionTree>(std::move(tree).value()))
          .ok());
  EXPECT_EQ(hooks_.Fire(hook_, 1), 1);  // lane0 = 75 > 50
}

TEST_F(ControlPlaneTest, OversizedModelRejectedAtInstallTime) {
  RmtProgramSpec spec = SimpleSpec("generic.hook");
  spec.model_slots = 1;
  Result<ControlPlane::ProgramHandle> handle = cp_.Install(spec);
  ASSERT_TRUE(handle.ok());

  // A brutally over-budget model for a generic hook (2^14 work units).
  Dataset data(2);
  Rng rng(1);
  for (int i = 0; i < 64; ++i) {
    const std::array<int32_t, 2> row{static_cast<int32_t>(rng.NextInt(0, 100)),
                                     static_cast<int32_t>(rng.NextInt(0, 100))};
    data.Add(row, row[0] > 50 ? 1 : 0);
  }
  MlpConfig big;
  big.hidden_sizes = {64, 64, 64, 64};  // ~12.5k MACs -> ~50k work units
  big.epochs = 1;
  Result<Mlp> mlp = Mlp::Train(data, big);
  ASSERT_TRUE(mlp.ok());
  Result<QuantizedMlp> quantized = QuantizedMlp::FromMlp(*mlp);
  ASSERT_TRUE(quantized.ok());
  // Generic hook budget is 2^14 work units; this model is ~4*3300 > budget.
  const Status status = cp_.InstallModel(
      *handle, 0, std::make_shared<QuantizedMlp>(std::move(quantized).value()));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kVerificationFailed);
}

TEST_F(ControlPlaneTest, MapReadWriteFromUserspace) {
  RmtProgramSpec spec = SimpleSpec("generic.hook");
  spec.maps.push_back(MapSpec{MapKind::kArray, 4});
  Result<ControlPlane::ProgramHandle> handle = cp_.Install(spec);
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(cp_.WriteMap(*handle, 0, 2, 99).ok());
  Result<int64_t> value = cp_.ReadMap(*handle, 0, 2);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 99);
  EXPECT_FALSE(cp_.WriteMap(*handle, 5, 0, 1).ok());   // no such map
  EXPECT_FALSE(cp_.WriteMap(*handle, 0, 10, 1).ok());  // out of array range
}

TEST_F(ControlPlaneTest, AdaptationLowersKnobOnPoorAccuracy) {
  RmtProgramSpec spec = SimpleSpec("generic.hook");
  spec.maps.push_back(MapSpec{MapKind::kArray, 4});
  Result<ControlPlane::ProgramHandle> handle = cp_.Install(spec);
  ASSERT_TRUE(handle.ok());

  ControlPlane::AdaptationConfig adapt;
  adapt.low_accuracy = 0.5;
  adapt.high_accuracy = 0.9;
  adapt.min_samples = 10;
  adapt.min_value = 1;
  adapt.max_value = 8;
  ASSERT_TRUE(cp_.EnableAdaptation(*handle, adapt).ok());
  EXPECT_EQ(*cp_.ReadMap(*handle, 0, 0), 8);  // starts at max

  // Feed uniformly wrong predictions.
  PredictionLog& log = cp_.Get(*handle)->prediction_log();
  for (int i = 0; i < 20; ++i) {
    log.Record(1, 100);
    log.Resolve(1, 200);
  }
  Result<int64_t> knob = cp_.Tick(*handle);
  ASSERT_TRUE(knob.ok());
  EXPECT_EQ(*knob, 7);

  // Feed uniformly right predictions: knob recovers.
  for (int i = 0; i < 20; ++i) {
    log.Record(1, 100);
    log.Resolve(1, 100);
  }
  knob = cp_.Tick(*handle);
  ASSERT_TRUE(knob.ok());
  EXPECT_EQ(*knob, 8);

  // Too few samples: knob unchanged.
  log.Record(1, 1);
  log.Resolve(1, 2);
  knob = cp_.Tick(*handle);
  ASSERT_TRUE(knob.ok());
  EXPECT_EQ(*knob, 8);
}

TEST_F(ControlPlaneTest, TickReportCarriesAccuracySamplesAndDirection) {
  RmtProgramSpec spec = SimpleSpec("generic.hook");
  spec.maps.push_back(MapSpec{MapKind::kArray, 4});
  Result<ControlPlane::ProgramHandle> handle = cp_.Install(spec);
  ASSERT_TRUE(handle.ok());

  ControlPlane::AdaptationConfig adapt;
  adapt.low_accuracy = 0.5;
  adapt.high_accuracy = 0.9;
  adapt.min_samples = 10;
  adapt.min_value = 1;
  adapt.max_value = 8;
  ASSERT_TRUE(cp_.EnableAdaptation(*handle, adapt).ok());

  // Uniformly wrong -> knob lowered, direction -1.
  PredictionLog& log = cp_.Get(*handle)->prediction_log();
  for (int i = 0; i < 20; ++i) {
    log.Record(1, 100);
    log.Resolve(1, 200);
  }
  Result<ControlPlane::AdaptationReport> report = cp_.TickReport(*handle);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->knob, 7);
  EXPECT_EQ(report->direction, -1);
  EXPECT_DOUBLE_EQ(report->accuracy, 0.0);
  EXPECT_EQ(report->samples, 20u);

  // Uniformly right -> knob raised back, direction +1.
  for (int i = 0; i < 20; ++i) {
    log.Record(1, 100);
    log.Resolve(1, 100);
  }
  report = cp_.TickReport(*handle);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->knob, 8);
  EXPECT_EQ(report->direction, 1);
  EXPECT_DOUBLE_EQ(report->accuracy, 1.0);

  // Not enough samples -> knob held, direction 0.
  log.Record(1, 1);
  log.Resolve(1, 2);
  report = cp_.TickReport(*handle);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->knob, 8);
  EXPECT_EQ(report->direction, 0);

  // The counters mirror what the reports said.
  EXPECT_EQ(cp_.Metrics().ticks->value(), 3u);
  EXPECT_EQ(cp_.Metrics().knob_lowered->value(), 1u);
  EXPECT_EQ(cp_.Metrics().knob_raised->value(), 1u);
}

TEST_F(ControlPlaneTest, TickWithoutAdaptationFails) {
  Result<ControlPlane::ProgramHandle> handle = cp_.Install(SimpleSpec("generic.hook"));
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(cp_.Tick(*handle).status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ControlPlaneTest, TailCallCascadesBetweenTables) {
  // Table 0's action tail-calls table 1's default action.
  RmtProgramSpec spec;
  spec.name = "cascade";
  Assembler first("first", HookKind::kGeneric);
  first.DeclareTables(2);
  first.MovImm(0, 10);
  first.TailCall(1);
  first.Exit();
  // The callee is verified standalone, so it must not read r0; it derives
  // its result from the surviving argument register instead.
  Assembler second("second", HookKind::kGeneric);
  second.Mov(0, 1).AddImm(0, 5).Exit();

  RmtTableSpec t0;
  t0.name = "t0";
  t0.hook_point = "generic.hook";
  t0.actions.push_back(std::move(first.Build()).value());
  t0.default_action = 0;
  RmtTableSpec t1;
  t1.name = "t1";
  t1.hook_point = "generic.hook2";
  t1.actions.push_back(std::move(second.Build()).value());
  t1.default_action = 0;
  spec.tables.push_back(std::move(t0));
  spec.tables.push_back(std::move(t1));

  ASSERT_TRUE(hooks_.Register("generic.hook2", HookKind::kGeneric).ok());
  Result<ControlPlane::ProgramHandle> handle = cp_.Install(spec);
  ASSERT_TRUE(handle.ok()) << handle.status();
  // Firing hook 1 runs t0's action, which tail-calls t1's default action;
  // the argument registers survive the cascade, so the callee computes
  // key + 5 and its result (not t0's overwritten r0) reaches the hook.
  EXPECT_EQ(hooks_.Fire(hook_, 1), 6);
}

// --- Lifecycle hardening ---

TEST_F(ControlPlaneTest, SuspendDetachesBlocksMutationsAndResumeRestores) {
  RmtProgramSpec spec = SimpleSpec("generic.hook");
  spec.maps.push_back(MapSpec{MapKind::kArray, 4});
  Result<ControlPlane::ProgramHandle> handle = cp_.Install(spec);
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(cp_.WriteMap(*handle, 0, 1, 11).ok());
  EXPECT_EQ(hooks_.Fire(hook_, 7), 107);

  ASSERT_TRUE(cp_.Suspend(*handle).ok());
  EXPECT_TRUE(*cp_.IsSuspended(*handle));
  EXPECT_EQ(hooks_.Fire(hook_, 7), kHookFallback);  // stock behaviour
  // Mutating ops are refused while suspended; diagnosis reads still work.
  TableEntry entry;
  entry.key = 1;
  entry.action_index = 0;
  EXPECT_EQ(cp_.AddEntry(*handle, "tab", entry).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(cp_.RemoveEntry(*handle, "tab", 1).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(cp_.ModifyEntry(*handle, "tab", 1, 0, 0).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(cp_.WriteMap(*handle, 0, 1, 12).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(cp_.InstallModel(*handle, 0, nullptr).code(), StatusCode::kFailedPrecondition);
  Result<int64_t> value = cp_.ReadMap(*handle, 0, 1);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 11);  // program state survived the detach
  EXPECT_EQ(cp_.Suspend(*handle).code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(cp_.Resume(*handle).ok());
  EXPECT_FALSE(*cp_.IsSuspended(*handle));
  EXPECT_EQ(hooks_.Fire(hook_, 7), 107);
  EXPECT_EQ(cp_.Resume(*handle).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(cp_.Metrics().suspends->value(), 1u);
  EXPECT_EQ(cp_.Metrics().resumes->value(), 1u);
}

TEST_F(ControlPlaneTest, OpsOnBogusOrStaleHandlesFailCleanly) {
  const ControlPlane::ProgramHandle bogus = 12345;
  EXPECT_FALSE(cp_.Uninstall(bogus).ok());
  EXPECT_FALSE(cp_.Suspend(bogus).ok());
  EXPECT_FALSE(cp_.Resume(bogus).ok());
  EXPECT_FALSE(cp_.IsSuspended(bogus).ok());
  TableEntry entry;
  EXPECT_FALSE(cp_.AddEntry(bogus, "tab", entry).ok());
  EXPECT_FALSE(cp_.RemoveEntry(bogus, "tab", 0).ok());
  EXPECT_FALSE(cp_.ModifyEntry(bogus, "tab", 0, 0, 0).ok());
  EXPECT_FALSE(cp_.InstallModel(bogus, 0, nullptr).ok());
  EXPECT_FALSE(cp_.WriteMap(bogus, 0, 0, 0).ok());
  EXPECT_FALSE(cp_.ReadMap(bogus, 0, 0).ok());
  EXPECT_EQ(cp_.Get(bogus), nullptr);

  // A handle that was valid once behaves identically after Uninstall.
  Result<ControlPlane::ProgramHandle> handle = cp_.Install(SimpleSpec("generic.hook"));
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(cp_.Uninstall(*handle).ok());
  EXPECT_FALSE(cp_.Uninstall(*handle).ok());  // double uninstall
  EXPECT_FALSE(cp_.Suspend(*handle).ok());
  EXPECT_FALSE(cp_.IsSuspended(*handle).ok());
  EXPECT_FALSE(cp_.AddEntry(*handle, "tab", entry).ok());
  EXPECT_FALSE(cp_.WriteMap(*handle, 0, 0, 0).ok());
}

// --- Fault injection on the fire path ---

// A generic-hook program whose action calls a helper (the "vm.helper"
// failpoint site) before computing key + 100.
RmtProgramSpec HelperSpec(const std::string& name, const std::string& hook_name) {
  Assembler a("timed_add100", HookKind::kGeneric);
  a.Call(HelperId::kGetTime);
  a.Mov(0, 1).AddImm(0, 100).Exit();
  RmtProgramSpec spec;
  spec.name = name;
  RmtTableSpec table;
  table.name = "tab";
  table.hook_point = hook_name;
  table.actions.push_back(std::move(a.Build()).value());
  table.default_action = 0;
  spec.tables.push_back(std::move(table));
  return spec;
}

TEST_F(ControlPlaneTest, InjectedHelperFaultFallsBackAndRecovers) {
  Result<ControlPlane::ProgramHandle> handle =
      cp_.Install(HelperSpec("helper_prog", "generic.hook"));
  ASSERT_TRUE(handle.ok()) << handle.status();
  EXPECT_EQ(hooks_.Fire(hook_, 7), 107);

  {
    FailpointSpec fault;
    fault.mode = FailpointMode::kFirstN;
    fault.n = 2;
    fault.force_error = true;
    ScopedFailpoint guard("vm.helper", fault);
    // A faulting action degrades to the stock heuristic, never crashes.
    EXPECT_EQ(hooks_.Fire(hook_, 7), kHookFallback);
    EXPECT_EQ(hooks_.Fire(hook_, 7), kHookFallback);
    EXPECT_EQ(guard.point().triggers(), 2u);
    EXPECT_EQ(hooks_.Fire(hook_, 7), 107);  // first:2 exhausted
  }
  EXPECT_EQ(hooks_.MetricsOf(hook_).exec_errors(), 2u);
  TelemetryRegistry& telemetry = hooks_.telemetry();
  EXPECT_EQ(telemetry.GetCounter("rkd.guard.prog.helper_prog.execs")->value(), 4u);
  EXPECT_EQ(telemetry.GetCounter("rkd.guard.prog.helper_prog.exec_errors")->value(), 2u);
  // Subsequent fires stay healthy once the fault clears.
  EXPECT_EQ(hooks_.Fire(hook_, 1), 101);
}

TEST_F(ControlPlaneTest, InjectedFaultsHitInterpreterTierToo) {
  Result<ControlPlane::ProgramHandle> handle =
      cp_.Install(HelperSpec("helper_prog_interp", "generic.hook"), ExecTier::kInterpreter);
  ASSERT_TRUE(handle.ok()) << handle.status();
  FailpointSpec fault;
  fault.mode = FailpointMode::kEveryNth;
  fault.n = 2;
  fault.force_error = true;
  ScopedFailpoint guard("vm.helper", fault);
  EXPECT_EQ(hooks_.Fire(hook_, 7), 107);           // hit 1: no trigger
  EXPECT_EQ(hooks_.Fire(hook_, 7), kHookFallback);  // hit 2: every:2 fires
  EXPECT_EQ(hooks_.Fire(hook_, 7), 107);
  EXPECT_EQ(hooks_.Fire(hook_, 7), kHookFallback);
  EXPECT_EQ(hooks_.MetricsOf(hook_).exec_errors(), 2u);
}

// --- Syscall layer ---

TEST(SyscallTest, LoadFireAndMapRoundTrip) {
  HookRegistry hooks;
  const HookId hook = *hooks.Register("generic.hook", HookKind::kGeneric);
  ControlPlane cp(&hooks);

  RmtProgramSpec spec = SimpleSpec("generic.hook");
  spec.maps.push_back(MapSpec{MapKind::kArray, 4});

  RmtSyscallArgs load_args;
  load_args.spec = &spec;
  Result<int64_t> handle = RmtSyscall(cp, RmtCmd::kProgLoad, load_args);
  ASSERT_TRUE(handle.ok()) << handle.status();
  EXPECT_EQ(hooks.Fire(hook, 1), 101);

  RmtSyscallArgs write_args;
  write_args.handle = *handle;
  write_args.map_id = 0;
  write_args.key = 1;
  write_args.value = 77;
  ASSERT_TRUE(RmtSyscall(cp, RmtCmd::kMapWrite, write_args).ok());
  RmtSyscallArgs read_args;
  read_args.handle = *handle;
  read_args.map_id = 0;
  read_args.key = 1;
  Result<int64_t> value = RmtSyscall(cp, RmtCmd::kMapRead, read_args);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 77);

  RmtSyscallArgs unload_args;
  unload_args.handle = *handle;
  ASSERT_TRUE(RmtSyscall(cp, RmtCmd::kProgUnload, unload_args).ok());
  EXPECT_EQ(hooks.Fire(hook, 1), kHookFallback);
}

TEST(SyscallTest, EntryCommands) {
  HookRegistry hooks;
  const HookId hook = *hooks.Register("generic.hook", HookKind::kGeneric);
  ControlPlane cp(&hooks);
  RmtProgramSpec spec = SimpleSpec("generic.hook");
  spec.tables[0].default_action = -1;

  RmtSyscallArgs load_args;
  load_args.spec = &spec;
  Result<int64_t> handle = RmtSyscall(cp, RmtCmd::kProgLoad, load_args);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(hooks.Fire(hook, 3), kHookFallback);

  RmtSyscallArgs add_args;
  add_args.handle = *handle;
  add_args.table = "tab";
  add_args.entry.key = 3;
  add_args.entry.action_index = 0;
  ASSERT_TRUE(RmtSyscall(cp, RmtCmd::kEntryAdd, add_args).ok());
  EXPECT_EQ(hooks.Fire(hook, 3), 103);

  RmtSyscallArgs remove_args;
  remove_args.handle = *handle;
  remove_args.table = "tab";
  remove_args.key = 3;
  ASSERT_TRUE(RmtSyscall(cp, RmtCmd::kEntryRemove, remove_args).ok());
  EXPECT_EQ(hooks.Fire(hook, 3), kHookFallback);
}

TEST(SyscallTest, LoadWithoutSpecRejected) {
  HookRegistry hooks;
  ControlPlane cp(&hooks);
  EXPECT_FALSE(RmtSyscall(cp, RmtCmd::kProgLoad, RmtSyscallArgs{}).ok());
}

}  // namespace
}  // namespace rkd
