// Tests for causal span tracing: nesting/parenting (direct API and through
// the Fire/FireBatch datapath), flight-recorder ring wraparound, sampling
// determinism, force-trace, the guardian's breach-triggered auto-dump, and
// the concurrent Begin/End vs Snapshot contract.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/failpoints.h"
#include "src/bytecode/assembler.h"
#include "src/rmt/control_plane.h"
#include "src/rmt/guardian.h"
#include "src/telemetry/span.h"
#include "src/telemetry/trace_export.h"

namespace rkd {
namespace {

const SpanRecord* Find(const std::vector<SpanRecord>& spans, const char* name) {
  for (const SpanRecord& span : spans) {
    if (std::strcmp(span.name, name) == 0) {
      return &span;
    }
  }
  return nullptr;
}

int64_t TagValue(const SpanRecord& span, const char* key) {
  for (uint8_t i = 0; i < span.num_tags; ++i) {
    if (std::strcmp(span.tags[i].key, key) == 0) {
      return span.tags[i].value;
    }
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Direct span API: nesting, parenting, tags, depth overflow.
// ---------------------------------------------------------------------------

TEST(SpanTest, NestedSpansShareTraceAndParentCorrectly) {
  Tracer tracer;
  {
    ScopedSpan root(&tracer, "root");
    root.Tag("k", 7);
    {
      ScopedSpan child(&tracer, "child");
      ScopedSpan grandchild(&tracer, "grandchild");
    }
    ScopedSpan sibling(&tracer, "sibling");
  }
  const std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);

  const SpanRecord* root = Find(spans, "root");
  const SpanRecord* child = Find(spans, "child");
  const SpanRecord* grandchild = Find(spans, "grandchild");
  const SpanRecord* sibling = Find(spans, "sibling");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(child, nullptr);
  ASSERT_NE(grandchild, nullptr);
  ASSERT_NE(sibling, nullptr);

  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(root->depth, 0u);
  EXPECT_EQ(TagValue(*root, "k"), 7);
  EXPECT_EQ(child->parent_id, root->span_id);
  EXPECT_EQ(child->depth, 1u);
  EXPECT_EQ(grandchild->parent_id, child->span_id);
  EXPECT_EQ(grandchild->depth, 2u);
  EXPECT_EQ(sibling->parent_id, root->span_id);

  // Every span belongs to the same causal tree, and children are
  // time-contained in their parents.
  for (const SpanRecord& span : spans) {
    EXPECT_EQ(span.trace_id, root->trace_id);
  }
  EXPECT_GE(child->start_ns, root->start_ns);
  EXPECT_LE(child->end_ns, root->end_ns);
  EXPECT_GE(grandchild->start_ns, child->start_ns);
  EXPECT_LE(grandchild->end_ns, child->end_ns);
}

TEST(SpanTest, SeparateRootsGetSeparateTraceIds) {
  Tracer tracer;
  { ScopedSpan a(&tracer, "a"); }
  { ScopedSpan b(&tracer, "b"); }
  const std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].trace_id, spans[1].trace_id);
}

TEST(SpanTest, NullTracerIsANoOp) {
  ScopedSpan span(nullptr, "nothing");
  span.Tag("k", 1);  // must not crash
}

TEST(SpanTest, DepthOverflowIsCountedNotFatal) {
  Tracer tracer;
  for (size_t i = 0; i < kMaxSpanDepth + 4; ++i) {
    tracer.BeginSpan("deep");
  }
  for (size_t i = 0; i < kMaxSpanDepth + 4; ++i) {
    tracer.EndSpan();
  }
  EXPECT_EQ(tracer.Snapshot().size(), kMaxSpanDepth);
  EXPECT_GE(tracer.spans_dropped(), 4u);
}

// ---------------------------------------------------------------------------
// Flight-recorder ring wraparound.
// ---------------------------------------------------------------------------

TEST(SpanTest, RingWraparoundKeepsNewestSpansInOrder) {
  Tracer tracer(/*ring_capacity=*/8);
  constexpr int64_t kSpans = 20;
  for (int64_t i = 0; i < kSpans; ++i) {
    ScopedSpan span(&tracer, "s");
    span.Tag("i", i);
  }
  EXPECT_EQ(tracer.spans_recorded(), static_cast<uint64_t>(kSpans));

  const std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 8u);
  // The survivors are exactly the newest 8, returned sorted by start time.
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(TagValue(spans[i], "i"), kSpans - 8 + static_cast<int64_t>(i));
    if (i > 0) {
      EXPECT_GE(spans[i].start_ns, spans[i - 1].start_ns);
    }
  }
}

// ---------------------------------------------------------------------------
// Sampling determinism.
// ---------------------------------------------------------------------------

TEST(SpanTest, SamplingIsDeterministicInSeq) {
  Tracer tracer;
  tracer.set_sample_every(4);
  for (uint64_t seq = 0; seq < 64; ++seq) {
    EXPECT_EQ(tracer.ShouldSample(seq), seq % 4 == 0) << "seq " << seq;
  }
  // Re-evaluating the same seqs gives the same traced set: no hidden state.
  for (uint64_t seq = 0; seq < 64; ++seq) {
    EXPECT_EQ(tracer.ShouldSample(seq), seq % 4 == 0) << "seq " << seq;
  }
  tracer.set_sample_every(0);
  for (uint64_t seq = 0; seq < 64; ++seq) {
    EXPECT_FALSE(tracer.ShouldSample(seq));
  }
  tracer.set_sample_every(1);
  for (uint64_t seq = 0; seq < 64; ++seq) {
    EXPECT_TRUE(tracer.ShouldSample(seq));
  }
}

// ---------------------------------------------------------------------------
// Fire / FireBatch datapath integration.
// ---------------------------------------------------------------------------

// One hook + one installed trivial action (r0 = 1).
struct FireRig {
  HookRegistry hooks;
  ControlPlane control_plane{&hooks};
  HookId hook = -1;
  ControlPlane::ProgramHandle handle = -1;

  void Init(bool with_helper_call = false) {
    hook = *hooks.Register("test.hook", HookKind::kGeneric);
    Assembler as("test_action", HookKind::kGeneric);
    if (with_helper_call) {
      as.Call(HelperId::kGetTime);  // the "vm.helper" failpoint site
    }
    as.MovImm(0, 1);
    as.Exit();
    RmtProgramSpec spec;
    spec.name = "span_test_prog";
    RmtTableSpec table;
    table.name = "span_tab";
    table.hook_point = "test.hook";
    table.actions.push_back(std::move(as.Build()).value());
    table.default_action = 0;
    spec.tables.push_back(std::move(table));
    handle = *control_plane.Install(spec);
  }
};

TEST(SpanFireTest, SampledFireEmitsCausalTree) {
  FireRig rig;
  rig.Init();
  Tracer& tracer = rig.hooks.telemetry().tracer();
  tracer.set_sample_every(1);
  const uint64_t before = tracer.spans_recorded();
  (void)rig.hooks.Fire(rig.hook, 42);

  const std::vector<SpanRecord> spans = tracer.Snapshot();
  const SpanRecord* root = Find(spans, "hook.test.hook");
  const SpanRecord* lookup = Find(spans, "table.lookup");
  const SpanRecord* exec = Find(spans, "vm.exec");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(lookup, nullptr);
  ASSERT_NE(exec, nullptr);
  EXPECT_GT(tracer.spans_recorded(), before);

  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(lookup->parent_id, root->span_id);
  EXPECT_EQ(exec->parent_id, root->span_id);
  EXPECT_EQ(lookup->trace_id, root->trace_id);
  EXPECT_EQ(exec->trace_id, root->trace_id);
  EXPECT_EQ(TagValue(*root, "key"), 42);
  EXPECT_EQ(TagValue(*root, "result"), 1);
  EXPECT_EQ(TagValue(*exec, "err"), 0);
}

TEST(SpanFireTest, UntracedFireEmitsNothing) {
  FireRig rig;
  rig.Init();
  Tracer& tracer = rig.hooks.telemetry().tracer();
  tracer.set_sample_every(0);
  // cp.install / cp.verify spans from Init() are already in the ring.
  const uint64_t before = tracer.spans_recorded();
  for (uint64_t i = 0; i < 100; ++i) {
    (void)rig.hooks.Fire(rig.hook, i);
  }
  EXPECT_EQ(tracer.spans_recorded(), before);
}

TEST(SpanFireTest, ForceTraceOverridesDisabledSampling) {
  FireRig rig;
  rig.Init();
  Tracer& tracer = rig.hooks.telemetry().tracer();
  tracer.set_sample_every(0);
  rig.hooks.AdjustForceTrace(rig.hook, +1);
  EXPECT_TRUE(rig.hooks.ForceTraced(rig.hook));
  const uint64_t before = tracer.spans_recorded();
  (void)rig.hooks.Fire(rig.hook, 1);
  EXPECT_GT(tracer.spans_recorded(), before);

  rig.hooks.AdjustForceTrace(rig.hook, -1);
  EXPECT_FALSE(rig.hooks.ForceTraced(rig.hook));
  const uint64_t after_release = tracer.spans_recorded();
  (void)rig.hooks.Fire(rig.hook, 2);
  EXPECT_EQ(tracer.spans_recorded(), after_release);

  // Releasing below zero clamps instead of wrapping to "forced forever".
  rig.hooks.AdjustForceTrace(rig.hook, -5);
  EXPECT_FALSE(rig.hooks.ForceTraced(rig.hook));
}

TEST(SpanFireTest, FireBatchEmitsOneTreePerBatch) {
  FireRig rig;
  rig.Init();
  Tracer& tracer = rig.hooks.telemetry().tracer();
  tracer.set_sample_every(1);

  std::vector<HookEvent> events;
  for (uint64_t i = 0; i < 5; ++i) {
    events.emplace_back(i, std::initializer_list<int64_t>{});
  }
  std::vector<int64_t> results(events.size(), 0);
  const uint64_t before = tracer.spans_recorded();
  rig.hooks.FireBatch(rig.hook, events, results);
  for (const int64_t r : results) {
    EXPECT_EQ(r, 1);
  }

  const std::vector<SpanRecord> spans = tracer.Snapshot();
  const SpanRecord* root = Find(spans, "hook.test.hook");
  const SpanRecord* lookup = Find(spans, "table.lookup");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(lookup, nullptr);
  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(TagValue(*root, "batch"), 5);
  EXPECT_EQ(lookup->parent_id, root->span_id);
  EXPECT_EQ(TagValue(*lookup, "events"), 5);
  EXPECT_EQ(TagValue(*lookup, "execs"), 5);
  EXPECT_EQ(TagValue(*lookup, "errors"), 0);
  // One tree for the whole batch: the per-batch overhead contract.
  EXPECT_EQ(tracer.spans_recorded() - before, 2u);
}

// ---------------------------------------------------------------------------
// Guardian flight-recorder auto-dump.
// ---------------------------------------------------------------------------

TEST(SpanGuardianTest, BreachDumpsFlightRecorderNamingTheProgram) {
  FireRig rig;
  rig.Init(/*with_helper_call=*/true);
  rig.hooks.telemetry().tracer().set_sample_every(4);

  PolicyGuardian guardian(&rig.control_plane);
  guardian.set_flight_recorder_dir(::testing::TempDir());
  BreakerConfig breaker;
  breaker.window_execs = 16;
  breaker.max_trips = 1;  // first trip quarantines -> containment decision
  ASSERT_TRUE(guardian.Guard(rig.handle, breaker).ok());
  EXPECT_EQ(guardian.flight_dumps(), 0u);

  {
    FailpointSpec fault;
    fault.mode = FailpointMode::kAlways;
    fault.force_error = true;
    ScopedFailpoint burst("vm.helper", fault);
    for (uint64_t i = 0; i < 32; ++i) {
      (void)rig.hooks.Fire(rig.hook, i);
    }
    guardian.Tick();
  }

  EXPECT_EQ(guardian.StateOf(rig.handle), GuardState::kQuarantined);
  EXPECT_EQ(guardian.flight_dumps(), 1u);
  ASSERT_FALSE(guardian.last_flight_dump().empty());

  std::ifstream dump(guardian.last_flight_dump());
  ASSERT_TRUE(dump.good()) << guardian.last_flight_dump();
  std::stringstream contents;
  contents << dump.rdbuf();
  const std::string text = contents.str();
  // The dump is a trace-event JSON tagged with the quarantined program and
  // the breach reason, and it carries the recorded spans.
  EXPECT_NE(text.find("traceEvents"), std::string::npos);
  EXPECT_NE(text.find("span_test_prog"), std::string::npos);
  EXPECT_NE(text.find("error rate"), std::string::npos);
  EXPECT_NE(text.find("hook.test.hook"), std::string::npos);
  std::remove(guardian.last_flight_dump().c_str());
}

TEST(SpanGuardianTest, NoDumpWhenDirUnset) {
  FireRig rig;
  rig.Init(/*with_helper_call=*/true);
  PolicyGuardian guardian(&rig.control_plane);
  BreakerConfig breaker;
  breaker.window_execs = 16;
  breaker.max_trips = 1;
  ASSERT_TRUE(guardian.Guard(rig.handle, breaker).ok());
  {
    FailpointSpec fault;
    fault.mode = FailpointMode::kAlways;
    fault.force_error = true;
    ScopedFailpoint burst("vm.helper", fault);
    for (uint64_t i = 0; i < 32; ++i) {
      (void)rig.hooks.Fire(rig.hook, i);
    }
    guardian.Tick();
  }
  EXPECT_EQ(guardian.StateOf(rig.handle), GuardState::kQuarantined);
  EXPECT_EQ(guardian.flight_dumps(), 0u);
  EXPECT_TRUE(guardian.last_flight_dump().empty());
}

// ---------------------------------------------------------------------------
// Concurrency: per-thread rings, and Snapshot racing live writers.
// ---------------------------------------------------------------------------

TEST(SpanConcurrencyTest, ThreadsGetIndependentStacksAndRings) {
  Tracer tracer;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan outer(&tracer, "outer");
        outer.Tag("thread", t);
        ScopedSpan inner(&tracer, "inner");
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), static_cast<size_t>(kThreads * kSpansPerThread * 2));
  // Parenting never crosses threads: every inner's parent is an outer from
  // the same thread.
  for (const SpanRecord& span : spans) {
    if (std::strcmp(span.name, "inner") != 0) {
      continue;
    }
    bool found_parent = false;
    for (const SpanRecord& candidate : spans) {
      if (candidate.span_id == span.parent_id) {
        EXPECT_STREQ(candidate.name, "outer");
        EXPECT_EQ(candidate.thread_index, span.thread_index);
        EXPECT_EQ(candidate.trace_id, span.trace_id);
        found_parent = true;
        break;
      }
    }
    EXPECT_TRUE(found_parent);
  }
}

TEST(SpanConcurrencyTest, SnapshotNeverReturnsTornRecordsUnderLoad) {
  Tracer tracer(/*ring_capacity=*/32);  // small ring -> constant wraparound
  std::atomic<bool> stop{false};
  constexpr int kWriters = 3;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&tracer, &stop] {
      int64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ScopedSpan span(&tracer, "writer.span.with.a.long.name");
        span.Tag("i", i++);
      }
    });
  }
  // Snapshot repeatedly while the writers hammer the rings; every record
  // returned must be internally consistent (the seqlock contract).
  for (int round = 0; round < 200; ++round) {
    const std::vector<SpanRecord> spans = tracer.Snapshot();
    for (const SpanRecord& span : spans) {
      EXPECT_STREQ(span.name, "writer.span.with.a.long.name");
      EXPECT_GE(span.end_ns, span.start_ns);
      EXPECT_NE(span.span_id, 0u);
      EXPECT_LE(span.num_tags, kMaxSpanTags);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) {
    t.join();
  }
}

// ---------------------------------------------------------------------------
// Exporters over real snapshots.
// ---------------------------------------------------------------------------

TEST(TraceExportTest, PerfettoJsonCarriesSpansAndMetadata) {
  Tracer tracer;
  {
    ScopedSpan root(&tracer, "root");
    root.Tag("k", 3);
    ScopedSpan child(&tracer, "child");
  }
  TraceExportOptions options;
  options.program = "progX";
  options.reason = "test reason";
  const std::string json = ExportPerfettoTrace(tracer.Snapshot(), options);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"root\""), std::string::npos);
  EXPECT_NE(json.find("\"child\""), std::string::npos);
  EXPECT_NE(json.find("\"k\""), std::string::npos);
  EXPECT_NE(json.find("progX"), std::string::npos);
  EXPECT_NE(json.find("test reason"), std::string::npos);
}

TEST(TraceExportTest, TreeRenderIndentsChildren) {
  Tracer tracer;
  {
    ScopedSpan root(&tracer, "root");
    ScopedSpan child(&tracer, "child");
  }
  const std::string tree = RenderSpanTree(tracer.Snapshot());
  const size_t root_pos = tree.find("root");
  const size_t child_pos = tree.find("child");
  ASSERT_NE(root_pos, std::string::npos);
  ASSERT_NE(child_pos, std::string::npos);
  EXPECT_GT(child_pos, root_pos);
}

TEST(TraceExportTest, AggregateSpansRollsUpByName) {
  Tracer tracer;
  for (int i = 0; i < 3; ++i) {
    ScopedSpan span(&tracer, "hot");
  }
  { ScopedSpan span(&tracer, "cold"); }
  const std::vector<SpanAggregate> aggregates = AggregateSpans(tracer.Snapshot());
  ASSERT_EQ(aggregates.size(), 2u);
  const SpanAggregate* hot = nullptr;
  for (const SpanAggregate& agg : aggregates) {
    if (agg.name == "hot") {
      hot = &agg;
    }
  }
  ASSERT_NE(hot, nullptr);
  EXPECT_EQ(hot->count, 3u);
  EXPECT_GE(hot->total_ns, hot->max_ns);
}

}  // namespace
}  // namespace rkd
