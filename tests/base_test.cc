// Unit tests for src/base: Status/Result, Rng, Fixed32, statistics.
#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/base/fixed_point.h"
#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/base/status.h"

namespace rkd {
namespace {

// --- Status / Result ---

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = VerificationFailedError("backward jump");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kVerificationFailed);
  EXPECT_EQ(status.message(), "backward jump");
  EXPECT_EQ(status.ToString(), "verification_failed: backward jump");
}

TEST(StatusTest, EveryConstructorMapsToItsCode) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ResourceExhaustedError("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(PermissionDeniedError("x").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(NotFoundError("a"), NotFoundError("a"));
  EXPECT_FALSE(NotFoundError("a") == NotFoundError("b"));
  EXPECT_FALSE(NotFoundError("a") == InvalidArgumentError("a"));
}

TEST(StatusCodeNameTest, AllCodesHaveStableNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeName(StatusCode::kVerificationFailed), "verification_failed");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted), "resource_exhausted");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(NotFoundError("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) {
    return InvalidArgumentError("odd");
  }
  return x / 2;
}

Result<int> QuarterViaMacro(int x) {
  RKD_ASSIGN_OR_RETURN(int half, Half(x));
  RKD_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagatesSuccess) {
  Result<int> result = QuarterViaMacro(8);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 2);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  Result<int> result = QuarterViaMacro(6);  // 6/2 = 3 -> odd -> error
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// --- Rng ---

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(7);
  Rng b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.NextBounded(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(rng.NextGaussian());
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.05);
}

TEST(RngTest, LaplaceIsZeroCenteredWithExpectedSpread) {
  Rng rng(19);
  RunningStats stats;
  const double scale = 2.0;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(rng.NextLaplace(scale));
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.1);
  // Laplace variance = 2 * scale^2.
  EXPECT_NEAR(stats.variance(), 2 * scale * scale, 0.6);
}

TEST(RngTest, BernoulliTracksProbability) {
  Rng rng(23);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    heads += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.02);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(29);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled.begin(), shuffled.end());
  EXPECT_TRUE(std::is_permutation(values.begin(), values.end(), shuffled.begin()));
}

TEST(ZipfSamplerTest, RankOneIsMostFrequent) {
  Rng rng(31);
  const ZipfSampler sampler(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[sampler.Sample(rng)];
  }
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[0], 20000 / 20);  // heavy head
}

// --- Fixed32 ---

TEST(Fixed32Test, IntRoundTrip) {
  EXPECT_EQ(Fixed32::FromInt(5).ToInt(), 5);
  EXPECT_EQ(Fixed32::FromInt(-7).ToInt(), -7);
  EXPECT_EQ(Fixed32::FromInt(0).raw(), 0);
}

TEST(Fixed32Test, DoubleRoundTripWithinResolution) {
  const double values[] = {0.5, -0.25, 3.14159, -100.001, 0.0000152587890625};
  for (double v : values) {
    EXPECT_NEAR(Fixed32::FromDouble(v).ToDouble(), v, 1.0 / (1 << 15));
  }
}

TEST(Fixed32Test, Arithmetic) {
  const Fixed32 a = Fixed32::FromDouble(2.5);
  const Fixed32 b = Fixed32::FromDouble(1.5);
  EXPECT_NEAR((a + b).ToDouble(), 4.0, 1e-4);
  EXPECT_NEAR((a - b).ToDouble(), 1.0, 1e-4);
  EXPECT_NEAR((a * b).ToDouble(), 3.75, 1e-3);
  EXPECT_NEAR((a / b).ToDouble(), 2.5 / 1.5, 1e-3);
  EXPECT_NEAR((-a).ToDouble(), -2.5, 1e-4);
}

TEST(Fixed32Test, AdditionSaturatesInsteadOfWrapping) {
  const Fixed32 big = Fixed32::Max();
  EXPECT_EQ(big + Fixed32::One(), Fixed32::Max());
  EXPECT_EQ(Fixed32::Min() - Fixed32::One(), Fixed32::Min());
}

TEST(Fixed32Test, MultiplySaturates) {
  const Fixed32 big = Fixed32::FromInt(30000);
  EXPECT_EQ(big * big, Fixed32::Max());
  EXPECT_EQ(big * (-big), Fixed32::Min());
}

TEST(Fixed32Test, DivisionByZeroSaturatesTowardNumeratorSign) {
  EXPECT_EQ(Fixed32::FromInt(3) / Fixed32::Zero(), Fixed32::Max());
  EXPECT_EQ(Fixed32::FromInt(-3) / Fixed32::Zero(), Fixed32::Min());
}

TEST(Fixed32Test, Comparisons) {
  EXPECT_LT(Fixed32::FromDouble(1.0), Fixed32::FromDouble(1.5));
  EXPECT_GE(Fixed32::FromInt(2), Fixed32::FromInt(2));
  EXPECT_NE(Fixed32::FromInt(2), Fixed32::FromInt(3));
}

TEST(Fixed32Test, ReluClampsNegatives) {
  EXPECT_EQ(FixedRelu(Fixed32::FromInt(-4)), Fixed32::Zero());
  EXPECT_EQ(FixedRelu(Fixed32::FromInt(4)), Fixed32::FromInt(4));
  EXPECT_EQ(FixedRelu(Fixed32::Zero()), Fixed32::Zero());
}

// --- Stats ---

TEST(RunningStatsTest, MeanVarianceMinMax) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(v);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_NEAR(stats.mean(), 5.0, 1e-9);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-9);  // sample variance
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
  EXPECT_NEAR(stats.sum(), 40.0, 1e-9);
}

TEST(RunningStatsTest, SingleSampleHasZeroVariance) {
  RunningStats stats;
  stats.Add(3.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 3.0);
  EXPECT_EQ(stats.max(), 3.0);
}

TEST(SamplesTest, ExactPercentiles) {
  Samples samples;
  for (int i = 1; i <= 100; ++i) {
    samples.Add(i);
  }
  EXPECT_NEAR(samples.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(samples.Percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(samples.Percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(samples.Mean(), 50.5, 1e-9);
}

TEST(SamplesTest, EmptyIsZero) {
  Samples samples;
  EXPECT_EQ(samples.Percentile(50), 0.0);
  EXPECT_EQ(samples.Mean(), 0.0);
}

TEST(BinaryAccuracyTest, ConfusionCounters) {
  BinaryAccuracy acc;
  acc.Record(true, true);    // TP
  acc.Record(true, false);   // FP
  acc.Record(false, false);  // TN
  acc.Record(false, true);   // FN
  EXPECT_EQ(acc.true_positive(), 1u);
  EXPECT_EQ(acc.false_positive(), 1u);
  EXPECT_EQ(acc.true_negative(), 1u);
  EXPECT_EQ(acc.false_negative(), 1u);
  EXPECT_NEAR(acc.accuracy(), 0.5, 1e-9);
  EXPECT_NEAR(acc.precision(), 0.5, 1e-9);
  EXPECT_NEAR(acc.recall(), 0.5, 1e-9);
}

TEST(BinaryAccuracyTest, EmptyIsZero) {
  BinaryAccuracy acc;
  EXPECT_EQ(acc.total(), 0u);
  EXPECT_EQ(acc.accuracy(), 0.0);
}

}  // namespace
}  // namespace rkd
