// Unit tests for the eBPF-style map library (src/vm/maps.*).
#include <gtest/gtest.h>

#include "src/vm/helpers.h"
#include "src/vm/maps.h"

namespace rkd {
namespace {

TEST(ArrayMapTest, IndexKeyedReadWrite) {
  ArrayMap map(4);
  EXPECT_TRUE(map.Update(0, 10));
  EXPECT_TRUE(map.Update(3, 40));
  EXPECT_EQ(map.Lookup(0).value_or(-1), 10);
  EXPECT_EQ(map.Lookup(3).value_or(-1), 40);
  EXPECT_EQ(map.Lookup(1).value_or(-1), 0);  // untouched slots read zero
}

TEST(ArrayMapTest, OutOfRangeRejected) {
  ArrayMap map(4);
  EXPECT_FALSE(map.Update(4, 1));
  EXPECT_FALSE(map.Update(-1, 1));
  EXPECT_FALSE(map.Lookup(4).has_value());
  EXPECT_FALSE(map.Contains(-1));
  EXPECT_TRUE(map.Contains(3));
}

TEST(ArrayMapTest, DeleteResetsToZero) {
  ArrayMap map(2);
  map.Update(1, 5);
  EXPECT_TRUE(map.Delete(1));
  EXPECT_EQ(map.Lookup(1).value_or(-1), 0);
}

TEST(HashMapTest, InsertLookupDelete) {
  HashMap map(8);
  EXPECT_TRUE(map.Update(-100, 1));
  EXPECT_TRUE(map.Update(1ll << 40, 2));
  EXPECT_EQ(map.Lookup(-100).value_or(0), 1);
  EXPECT_EQ(map.Lookup(1ll << 40).value_or(0), 2);
  EXPECT_FALSE(map.Lookup(7).has_value());
  EXPECT_TRUE(map.Delete(-100));
  EXPECT_FALSE(map.Delete(-100));
  EXPECT_EQ(map.size(), 1u);
}

TEST(HashMapTest, CapacityRejectsNewKeysButAllowsUpdates) {
  HashMap map(2);
  EXPECT_TRUE(map.Update(1, 1));
  EXPECT_TRUE(map.Update(2, 2));
  EXPECT_FALSE(map.Update(3, 3));   // full: new key rejected
  EXPECT_TRUE(map.Update(1, 100));  // existing key updatable
  EXPECT_EQ(map.Lookup(1).value_or(0), 100);
}

TEST(LruMapTest, EvictsLeastRecentlyUsed) {
  LruMap map(3);
  map.Update(1, 10);
  map.Update(2, 20);
  map.Update(3, 30);
  (void)map.Lookup(1);  // 1 becomes most recent; 2 is now LRU
  map.Update(4, 40);    // evicts 2
  EXPECT_TRUE(map.Contains(1));
  EXPECT_FALSE(map.Contains(2));
  EXPECT_TRUE(map.Contains(3));
  EXPECT_TRUE(map.Contains(4));
  EXPECT_EQ(map.size(), 3u);
}

TEST(LruMapTest, UpdateRefreshesRecency) {
  LruMap map(2);
  map.Update(1, 10);
  map.Update(2, 20);
  map.Update(1, 11);  // refresh 1; 2 becomes LRU
  map.Update(3, 30);  // evicts 2
  EXPECT_TRUE(map.Contains(1));
  EXPECT_FALSE(map.Contains(2));
  EXPECT_EQ(map.Lookup(1).value_or(0), 11);
}

TEST(LruMapTest, DeleteRemovesFromRecencyList) {
  LruMap map(2);
  map.Update(1, 10);
  map.Update(2, 20);
  EXPECT_TRUE(map.Delete(1));
  EXPECT_FALSE(map.Delete(1));
  map.Update(3, 30);  // space available; nothing evicted
  EXPECT_TRUE(map.Contains(2));
  EXPECT_TRUE(map.Contains(3));
}

TEST(RingMapTest, FifoOrder) {
  RingMap ring(4);
  ring.Update(1, 10);
  ring.Update(2, 20);
  ring.Update(3, 30);
  auto first = ring.Pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->key, 1);
  EXPECT_EQ(first->value, 10);
  auto second = ring.Pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->key, 2);
}

TEST(RingMapTest, OverflowDropsOldest) {
  RingMap ring(2);
  ring.Update(1, 10);
  ring.Update(2, 20);
  ring.Update(3, 30);  // drops record 1
  EXPECT_EQ(ring.dropped(), 1u);
  auto record = ring.Pop();
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->key, 2);
}

TEST(RingMapTest, EmptyPopReturnsNothing) {
  RingMap ring(2);
  EXPECT_FALSE(ring.Pop().has_value());
}

TEST(RingMapTest, KeyedOperationsAreInert) {
  RingMap ring(2);
  ring.Update(1, 10);
  EXPECT_FALSE(ring.Lookup(1).has_value());
  EXPECT_FALSE(ring.Contains(1));
  EXPECT_FALSE(ring.Delete(1));
}

TEST(MapSetTest, CreatesEveryKind) {
  MapSet set;
  Result<int64_t> array_id = set.Create(MapKind::kArray, 4);
  Result<int64_t> hash_id = set.Create(MapKind::kHash, 4);
  Result<int64_t> lru_id = set.Create(MapKind::kLru, 4);
  Result<int64_t> ring_id = set.Create(MapKind::kRing, 4);
  ASSERT_TRUE(array_id.ok());
  ASSERT_TRUE(hash_id.ok());
  ASSERT_TRUE(lru_id.ok());
  ASSERT_TRUE(ring_id.ok());
  EXPECT_EQ(set.Get(*array_id)->kind(), MapKind::kArray);
  EXPECT_EQ(set.Get(*hash_id)->kind(), MapKind::kHash);
  EXPECT_EQ(set.Get(*lru_id)->kind(), MapKind::kLru);
  EXPECT_EQ(set.Get(*ring_id)->kind(), MapKind::kRing);
  EXPECT_EQ(set.size(), 4u);
}

TEST(MapSetTest, InvalidIdsReturnNull) {
  MapSet set;
  EXPECT_EQ(set.Get(0), nullptr);
  EXPECT_EQ(set.Get(-1), nullptr);
  (void)set.Create(MapKind::kArray, 1);
  EXPECT_NE(set.Get(0), nullptr);
  EXPECT_EQ(set.Get(1), nullptr);
}

TEST(MapSetTest, ZeroCapacityRejected) {
  MapSet set;
  EXPECT_FALSE(set.Create(MapKind::kHash, 0).ok());
}

TEST(MapKindTest, Names) {
  EXPECT_EQ(MapKindName(MapKind::kArray), "array");
  EXPECT_EQ(MapKindName(MapKind::kHash), "hash");
  EXPECT_EQ(MapKindName(MapKind::kLru), "lru");
  EXPECT_EQ(MapKindName(MapKind::kRing), "ring");
}

// Rate limiter and privacy primitives live next to the helper services.
TEST(RateLimiterTest, RefillsOverTime) {
  RateLimiter limiter(10, 2);
  EXPECT_TRUE(limiter.Check(1, 10, 0));   // drain the bucket
  EXPECT_FALSE(limiter.Check(1, 1, 0));   // empty
  EXPECT_TRUE(limiter.Check(1, 4, 2));    // 2 ticks * 2/tick = 4 tokens back
  EXPECT_FALSE(limiter.Check(1, 1, 2));
}

TEST(RateLimiterTest, KeysAreIndependent) {
  RateLimiter limiter(4, 1);
  EXPECT_TRUE(limiter.Check(1, 4, 0));
  EXPECT_TRUE(limiter.Check(2, 4, 0));  // separate bucket
  EXPECT_FALSE(limiter.Check(1, 1, 0));
}

TEST(RateLimiterTest, NonPositiveUnitsAlwaysAllowed) {
  RateLimiter limiter(1, 0);
  EXPECT_TRUE(limiter.Check(1, 0, 0));
  EXPECT_TRUE(limiter.Check(1, -5, 0));
}

TEST(PrivacyBudgetTest, ConsumesUntilExhausted) {
  PrivacyBudget budget(0.5, 0.2);
  EXPECT_TRUE(budget.Consume());
  EXPECT_TRUE(budget.Consume());
  EXPECT_FALSE(budget.Consume());  // 0.1 left < 0.2 per query
  EXPECT_EQ(budget.queries_answered(), 2u);
  EXPECT_EQ(budget.queries_refused(), 1u);
}

TEST(DpNoiseSourceTest, ExhaustedBudgetReturnsZero) {
  PrivacyBudget budget(0.1, 0.1);
  DpNoiseSource noise(&budget, 1.0, 7);
  (void)noise.Noisy(100);           // spends the whole budget
  EXPECT_EQ(noise.Noisy(100), 0);   // refused -> hard zero
}

TEST(DpNoiseSourceTest, NoiseIsCenteredOnValue) {
  PrivacyBudget budget(1e9, 1.0);
  DpNoiseSource noise(&budget, 1.0, 11);
  double total = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    total += static_cast<double>(noise.Noisy(1000));
  }
  EXPECT_NEAR(total / n, 1000.0, 1.0);
}

}  // namespace
}  // namespace rkd
