// Tests for the scheduler substrate: heuristic, CFS simulator dynamics,
// dataset collection, and the RMT migration oracle end to end.
#include <gtest/gtest.h>

#include "src/ml/mlp.h"
#include "src/ml/quantize.h"
#include "src/sim/sched/cfs_sim.h"
#include "src/sim/sched/rmt_oracle.h"
#include "src/workloads/cpu_jobs.h"

namespace rkd {
namespace {

SchedFeatures BaseFeatures() {
  SchedFeatures f{};
  f[kFeatSrcNrRunning] = 6;
  f[kFeatDstNrRunning] = 2;
  f[kFeatSrcLoad] = 6;
  f[kFeatDstLoad] = 2;
  f[kFeatImbalance] = 4;
  f[kFeatTaskWeight] = 1024;
  f[kFeatTicksSinceRun] = 100;   // cold
  f[kFeatCacheFootprint] = 64;   // small
  return f;
}

// --- Heuristic ---

TEST(HeuristicTest, MigratesColdTaskUnderImbalance) {
  EXPECT_EQ(CfsHeuristicCanMigrate(BaseFeatures()), 1);
}

TEST(HeuristicTest, RefusesWhenDestinationNotLessLoaded) {
  SchedFeatures f = BaseFeatures();
  f[kFeatDstNrRunning] = f[kFeatSrcNrRunning];
  EXPECT_EQ(CfsHeuristicCanMigrate(f), 0);
}

TEST(HeuristicTest, RefusesBelowImbalanceThreshold) {
  SchedFeatures f = BaseFeatures();
  f[kFeatImbalance] = 1;
  EXPECT_EQ(CfsHeuristicCanMigrate(f), 0);
}

TEST(HeuristicTest, RefusesCacheHotTaskWithSmallImbalance) {
  SchedFeatures f = BaseFeatures();
  f[kFeatTicksSinceRun] = 1;       // ran just now
  f[kFeatCacheFootprint] = 1024;   // big working set
  f[kFeatImbalance] = 1;
  EXPECT_EQ(CfsHeuristicCanMigrate(f), 0);
}

TEST(HeuristicTest, StarvationOverridesHotness) {
  SchedFeatures f = BaseFeatures();
  f[kFeatTicksSinceRun] = 1;
  f[kFeatCacheFootprint] = 1024;
  f[kFeatWaitTicks] = 500;  // starving
  EXPECT_EQ(CfsHeuristicCanMigrate(f), 1);
}

TEST(HeuristicTest, HotTaskMigratesUnderLargeImbalance) {
  SchedFeatures f = BaseFeatures();
  f[kFeatTicksSinceRun] = 1;
  f[kFeatCacheFootprint] = 1024;
  f[kFeatImbalance] = 8;
  EXPECT_EQ(CfsHeuristicCanMigrate(f), 1);
}

// --- CfsSim ---

SchedConfig TestSchedConfig() {
  SchedConfig config;
  config.cores = 4;
  return config;
}

TEST(CfsSimTest, CompletesAllJobKinds) {
  for (JobKind kind : {JobKind::kBlackscholes, JobKind::kStreamcluster, JobKind::kFib,
                       JobKind::kMatMul}) {
    JobConfig job_config;
    job_config.num_tasks = 8;
    job_config.base_work = 500;
    const JobSpec job = MakeJob(kind, job_config);
    CfsSim sim(TestSchedConfig());
    const SchedMetrics metrics = sim.Run(job);
    EXPECT_TRUE(metrics.completed) << JobKindName(kind);
    EXPECT_GT(metrics.ticks, 0u);
  }
}

TEST(CfsSimTest, DeterministicAcrossRuns) {
  const JobSpec job = MakeJob(JobKind::kStreamcluster);
  CfsSim sim(TestSchedConfig());
  const SchedMetrics a = sim.Run(job);
  const SchedMetrics b = sim.Run(job);
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.decisions, b.decisions);
}

TEST(CfsSimTest, MoreCoresFinishFaster) {
  JobConfig job_config;
  job_config.num_tasks = 16;
  job_config.base_work = 1000;
  const JobSpec job = MakeJob(JobKind::kBlackscholes, job_config);
  SchedConfig two = TestSchedConfig();
  two.cores = 2;
  SchedConfig eight = TestSchedConfig();
  eight.cores = 8;
  CfsSim sim2(two);
  CfsSim sim8(eight);
  EXPECT_GT(sim2.Run(job).ticks, sim8.Run(job).ticks);
}

TEST(CfsSimTest, LoadBalancingBeatsNoMigration) {
  // An always-deny oracle pins every task to core 0 (fork placement), so
  // completion degrades toward single-core time.
  JobConfig job_config;
  job_config.num_tasks = 8;
  job_config.base_work = 1000;
  const JobSpec job = MakeJob(JobKind::kBlackscholes, job_config);
  CfsSim sim(TestSchedConfig());
  const SchedMetrics balanced = sim.Run(job);
  const SchedMetrics pinned = sim.Run(job, [](int64_t, const SchedFeatures&) { return 0; });
  EXPECT_LT(balanced.ticks, pinned.ticks);
  EXPECT_EQ(pinned.migrations, 0u);
}

TEST(CfsSimTest, OracleNegativeFallsBackToHeuristic) {
  const JobSpec job = MakeJob(JobKind::kBlackscholes);
  CfsSim sim(TestSchedConfig());
  const SchedMetrics stock = sim.Run(job);
  const SchedMetrics fallback =
      sim.Run(job, [](int64_t, const SchedFeatures&) { return -1; });
  EXPECT_EQ(fallback.ticks, stock.ticks);  // identical behaviour
  EXPECT_EQ(fallback.oracle_fallbacks, fallback.decisions);
}

TEST(CfsSimTest, PerfectOracleScoresFullAgreement) {
  const JobSpec job = MakeJob(JobKind::kStreamcluster);
  CfsSim sim(TestSchedConfig());
  const SchedMetrics metrics = sim.Run(
      job, [](int64_t, const SchedFeatures& f) { return CfsHeuristicCanMigrate(f); });
  EXPECT_GT(metrics.decisions, 0u);
  EXPECT_NEAR(metrics.agreement(), 1.0, 1e-9);
}

TEST(CfsSimTest, DatasetCollectionMatchesDecisionCount) {
  const JobSpec job = MakeJob(JobKind::kStreamcluster);
  Dataset data(kSchedNumFeatures);
  CfsSim sim(TestSchedConfig());
  const SchedMetrics metrics = sim.Run(job, {}, &data);
  EXPECT_EQ(data.size(), metrics.decisions);
  EXPECT_EQ(data.num_features(), kSchedNumFeatures);
  // Both classes appear in a barrier-structured workload.
  size_t ones = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    ones += static_cast<size_t>(data.label(i));
  }
  EXPECT_GT(ones, 0u);
  EXPECT_LT(ones, data.size());
}

TEST(CfsSimTest, CtxStoreFullCountedSeparatelyFromGenericFallback) {
  const JobSpec job = MakeJob(JobKind::kBlackscholes);
  CfsSim sim(TestSchedConfig());
  TelemetryRegistry telemetry;
  sim.set_telemetry(&telemetry);
  const SchedMetrics full =
      sim.Run(job, [](int64_t, const SchedFeatures&) { return kOracleCtxStoreFull; });
  EXPECT_EQ(full.oracle_fallbacks, full.decisions);  // still a fallback
  EXPECT_EQ(full.ctx_store_full, full.decisions);    // but attributed to capacity
  EXPECT_EQ(telemetry.GetCounter("rkd.sim.sched.ctx_store_full")->value(),
            full.ctx_store_full);

  // A generic fallback (-1) is not misattributed to the context store.
  sim.set_telemetry(nullptr);
  const SchedMetrics generic =
      sim.Run(job, [](int64_t, const SchedFeatures&) { return -1; });
  EXPECT_EQ(generic.oracle_fallbacks, generic.decisions);
  EXPECT_EQ(generic.ctx_store_full, 0u);
}

TEST(CfsSimTest, SafetyStopOnMaxTicks) {
  JobConfig job_config;
  job_config.num_tasks = 2;
  job_config.base_work = 100000;
  const JobSpec job = MakeJob(JobKind::kMatMul, job_config);
  SchedConfig config = TestSchedConfig();
  config.max_ticks = 500;
  CfsSim sim(config);
  const SchedMetrics metrics = sim.Run(job);
  EXPECT_FALSE(metrics.completed);
  EXPECT_EQ(metrics.ticks, 500u);
}

// --- RMT oracle ---

TEST(RmtOracleTest, FallsBackWithoutModel) {
  RmtMigrationOracle oracle;
  ASSERT_TRUE(oracle.Init().ok());
  const JobSpec job = MakeJob(JobKind::kBlackscholes);
  CfsSim sim(TestSchedConfig());
  const SchedMetrics stock = sim.Run(job);
  const SchedMetrics via_rmt = sim.Run(job, oracle.AsOracle());
  EXPECT_EQ(via_rmt.ticks, stock.ticks);
  EXPECT_EQ(via_rmt.oracle_fallbacks, via_rmt.decisions);
  EXPECT_GT(oracle.queries(), 0u);
}

TEST(RmtOracleTest, FullContextStoreDegradesVisibly) {
  RmtMigrationOracle oracle;
  ASSERT_TRUE(oracle.Init().ok());
  // Fill the program's context store to capacity with synthetic pids.
  ContextStore& ctxt = oracle.control_plane().Get(oracle.handle())->context();
  uint64_t pid = 0;
  while (ctxt.FindOrCreate(pid) != nullptr) {
    ++pid;
  }
  // A pid the store has never seen cannot be admitted: the oracle reports
  // the capacity-specific sentinel rather than a silent generic fallback.
  const MigrationOracle fn = oracle.AsOracle();
  EXPECT_EQ(fn(static_cast<int64_t>(pid + 1), BaseFeatures()), kOracleCtxStoreFull);
}

TEST(RmtOracleTest, QuantizedMlpMimicsHeuristic) {
  const JobSpec job = MakeJob(JobKind::kStreamcluster);
  const SchedConfig config = TestSchedConfig();
  Dataset train = CollectMigrationDataset(config, job);
  ASSERT_GE(train.size(), 64u);

  MlpConfig mlp_config;
  mlp_config.hidden_sizes = {16, 16};
  mlp_config.epochs = 40;
  Result<Mlp> mlp = Mlp::Train(train, mlp_config);
  ASSERT_TRUE(mlp.ok());
  Result<QuantizedMlp> quantized = QuantizedMlp::FromMlp(*mlp);
  ASSERT_TRUE(quantized.ok());

  RmtMigrationOracle oracle;
  ASSERT_TRUE(oracle.Init().ok());
  ASSERT_TRUE(
      oracle.InstallModel(std::make_shared<QuantizedMlp>(std::move(quantized).value())).ok());

  CfsSim sim(config);
  const SchedMetrics metrics = sim.Run(job, oracle.AsOracle());
  EXPECT_EQ(metrics.oracle_fallbacks, 0u);
  EXPECT_GT(metrics.agreement(), 0.9);
  EXPECT_TRUE(metrics.completed);
}

TEST(RmtOracleTest, TierLadderPromotesAndBurnsInstalledModel) {
  const JobSpec job = MakeJob(JobKind::kStreamcluster);
  const SchedConfig config = TestSchedConfig();
  Dataset train = CollectMigrationDataset(config, job);
  ASSERT_GE(train.size(), 64u);

  MlpConfig mlp_config;
  mlp_config.hidden_sizes = {16, 16};
  mlp_config.epochs = 40;
  Result<Mlp> mlp = Mlp::Train(train, mlp_config);
  ASSERT_TRUE(mlp.ok());
  Result<QuantizedMlp> quantized = QuantizedMlp::FromMlp(*mlp);
  ASSERT_TRUE(quantized.ok());

  RmtOracleConfig oracle_config;
  oracle_config.tiering_hot_execs = 64;   // promote early in the run
  oracle_config.tiering_tick_queries = 32;
  RmtMigrationOracle oracle(oracle_config);
  ASSERT_TRUE(oracle.Init().ok());
  ASSERT_TRUE(
      oracle.InstallModel(std::make_shared<QuantizedMlp>(std::move(quantized).value())).ok());

  CfsSim sim(config);
  const SchedMetrics metrics = sim.Run(job, oracle.AsOracle());
  EXPECT_EQ(metrics.oracle_fallbacks, 0u);
  EXPECT_GT(metrics.agreement(), 0.9);  // tier-3 decisions are bit-identical

  auto report = oracle.control_plane().TickTiering(oracle.handle());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->tier, 3);
  EXPECT_GT(report->tier3_execs, 0u);
  EXPECT_GT(report->folded_models, 0u);  // the MLP's weights are burned in
}

TEST(RmtOracleTest, LeanFeatureSubsetStillWorks) {
  const JobSpec job = MakeJob(JobKind::kStreamcluster);
  const SchedConfig config = TestSchedConfig();
  Dataset train = CollectMigrationDataset(config, job);
  ASSERT_GE(train.size(), 64u);

  // Keep only the two causal features: the imbalance threshold and the
  // src-vs-dst queue delta together determine the heuristic for cold tasks.
  const std::vector<size_t> selected{kFeatImbalance, kFeatQueueDelta};
  Dataset projected(2);
  for (size_t i = 0; i < train.size(); ++i) {
    const std::array<int32_t, 2> row{train.row(i)[kFeatImbalance],
                                     train.row(i)[kFeatQueueDelta]};
    projected.Add(row, train.label(i));
  }
  MlpConfig mlp_config;
  mlp_config.hidden_sizes = {16, 16};
  mlp_config.epochs = 60;
  Result<Mlp> mlp = Mlp::Train(projected, mlp_config);
  ASSERT_TRUE(mlp.ok());
  Result<QuantizedMlp> quantized = QuantizedMlp::FromMlp(*mlp);
  ASSERT_TRUE(quantized.ok());

  RmtOracleConfig oracle_config;
  oracle_config.selected_features = selected;
  RmtMigrationOracle oracle(oracle_config);
  ASSERT_TRUE(oracle.Init().ok());
  ASSERT_TRUE(
      oracle.InstallModel(std::make_shared<QuantizedMlp>(std::move(quantized).value())).ok());

  CfsSim sim(config);
  const SchedMetrics metrics = sim.Run(job, oracle.AsOracle());
  EXPECT_GT(metrics.agreement(), 0.85);
}

TEST(RmtOracleTest, InterpreterTierMatchesJitTier) {
  const JobSpec job = MakeJob(JobKind::kBlackscholes);
  const SchedConfig config = TestSchedConfig();
  Dataset train = CollectMigrationDataset(config, job);
  Result<Mlp> mlp = Mlp::Train(train);
  ASSERT_TRUE(mlp.ok());

  SchedMetrics per_tier[2];
  int index = 0;
  for (ExecTier tier : {ExecTier::kJit, ExecTier::kInterpreter}) {
    Result<QuantizedMlp> quantized = QuantizedMlp::FromMlp(*mlp);
    ASSERT_TRUE(quantized.ok());
    RmtOracleConfig oracle_config;
    oracle_config.tier = tier;
    RmtMigrationOracle oracle(oracle_config);
    ASSERT_TRUE(oracle.Init().ok());
    ASSERT_TRUE(
        oracle.InstallModel(std::make_shared<QuantizedMlp>(std::move(quantized).value()))
            .ok());
    CfsSim sim(config);
    per_tier[index++] = sim.Run(job, oracle.AsOracle());
  }
  EXPECT_EQ(per_tier[0].ticks, per_tier[1].ticks);
  EXPECT_EQ(per_tier[0].migrations, per_tier[1].migrations);
  EXPECT_EQ(per_tier[0].oracle_agreements, per_tier[1].oracle_agreements);
}

TEST(RmtOracleTest, BatchedOracleMatchesSequentialOracle) {
  // The balancer's batched path (one FireBatch per remaining-candidate set,
  // re-batched after every applied migration) must reproduce the sequential
  // per-candidate path decision for decision.
  const JobSpec job = MakeJob(JobKind::kStreamcluster);
  const SchedConfig config = TestSchedConfig();
  Dataset train = CollectMigrationDataset(config, job);
  ASSERT_GE(train.size(), 64u);
  MlpConfig mlp_config;
  mlp_config.hidden_sizes = {16, 16};
  mlp_config.epochs = 40;
  Result<Mlp> mlp = Mlp::Train(train, mlp_config);
  ASSERT_TRUE(mlp.ok());

  SchedMetrics sequential;
  SchedMetrics batched;
  for (const bool use_batch : {false, true}) {
    Result<QuantizedMlp> quantized = QuantizedMlp::FromMlp(*mlp);
    ASSERT_TRUE(quantized.ok());
    RmtMigrationOracle oracle;
    ASSERT_TRUE(oracle.Init().ok());
    ASSERT_TRUE(
        oracle.InstallModel(std::make_shared<QuantizedMlp>(std::move(quantized).value()))
            .ok());
    CfsSim sim(config);
    if (use_batch) {
      batched = sim.RunBatched(job, oracle.AsBatchOracle());
    } else {
      sequential = sim.Run(job, oracle.AsOracle());
    }
  }
  EXPECT_EQ(sequential.ticks, batched.ticks);
  EXPECT_EQ(sequential.migrations, batched.migrations);
  EXPECT_EQ(sequential.decisions, batched.decisions);
  EXPECT_EQ(sequential.oracle_fallbacks, batched.oracle_fallbacks);
  EXPECT_EQ(sequential.oracle_agreements, batched.oracle_agreements);
  EXPECT_EQ(sequential.completed, batched.completed);
  EXPECT_GT(batched.decisions, 0u);
}

TEST(CfsSimTest, BatchedHeuristicFallbackMatchesStockRun) {
  // A batch oracle that leaves every decision at -1 must behave exactly like
  // the heuristic-only run, with the fallbacks counted.
  const JobSpec job = MakeJob(JobKind::kBlackscholes);
  CfsSim sim(TestSchedConfig());
  const SchedMetrics stock = sim.Run(job);
  const SchedMetrics fallback = sim.RunBatched(
      job, [](std::span<const MigrationQuery>, std::span<int64_t>) {});
  EXPECT_EQ(stock.ticks, fallback.ticks);
  EXPECT_EQ(stock.migrations, fallback.migrations);
  EXPECT_EQ(stock.decisions, fallback.decisions);
  EXPECT_EQ(fallback.oracle_fallbacks, fallback.decisions);
}

}  // namespace
}  // namespace rkd
