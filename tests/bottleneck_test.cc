// Tests for src/telemetry/bottleneck.h: causal-DAG reconstruction,
// exclusive-time attribution, the classifier rule ladder, byte-determinism
// (including input-order permutations, orphaned parents, and torn rings),
// the golden-corpus cross-tier contract, and the advisory-driven tier-3
// promotion order.
#include <algorithm>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/bytecode/assembler.h"
#include "src/replay/experience_log.h"
#include "src/replay/replay.h"
#include "src/rmt/control_plane.h"
#include "src/sim/mem/ml_prefetcher.h"
#include "src/sim/sched/rmt_oracle.h"
#include "src/telemetry/bottleneck.h"
#include "src/telemetry/span.h"
#include "src/telemetry/trace_export.h"

namespace rkd {
namespace {

// --- Synthetic span builders -----------------------------------------------

SpanRecord MakeSpan(uint64_t trace, uint64_t span, uint64_t parent, uint64_t start,
                    uint64_t end, const char* name) {
  SpanRecord record;
  record.trace_id = trace;
  record.span_id = span;
  record.parent_id = parent;
  record.start_ns = start;
  record.end_ns = end;
  std::strncpy(record.name, name, kMaxSpanNameLen);
  return record;
}

void AddTag(SpanRecord& record, const char* key, int64_t value) {
  ASSERT_LT(record.num_tags, kMaxSpanTags);
  record.tags[record.num_tags].key = key;
  record.tags[record.num_tags].value = value;
  ++record.num_tags;
}

// One well-formed fire tree: hook root with a table lookup, a VM execution,
// and a model eval nested in the execution. Span ids start at `base_id`.
std::vector<SpanRecord> MakeFireTree(uint64_t trace, uint64_t base_id, uint64_t t0) {
  std::vector<SpanRecord> spans;
  spans.push_back(MakeSpan(trace, base_id, 0, t0, t0 + 100, "hook.mem.page_fault"));
  spans.push_back(MakeSpan(trace, base_id + 1, base_id, t0 + 10, t0 + 30, "table.lookup"));
  spans.push_back(MakeSpan(trace, base_id + 2, base_id, t0 + 40, t0 + 90, "vm.exec"));
  spans.push_back(MakeSpan(trace, base_id + 3, base_id + 2, t0 + 50, t0 + 80, "ml.eval"));
  return spans;
}

const CriticalContributor* FindContributor(const BottleneckAdvisory& advisory,
                                           const std::string& name) {
  for (const CriticalContributor& c : advisory.contributors) {
    if (c.name == name) {
      return &c;
    }
  }
  return nullptr;
}

// --- DAG reconstruction & attribution --------------------------------------

TEST(CriticalPathTest, ReconstructsTheCausalDagWithExclusiveTimes) {
  const std::vector<SpanRecord> spans = MakeFireTree(1, 1, 1000);
  const BottleneckReport report = CriticalPathAnalyzer().Analyze(spans);

  EXPECT_EQ(report.spans, 4u);
  EXPECT_EQ(report.trees, 1u);
  EXPECT_EQ(report.orphan_spans, 0u);
  EXPECT_EQ(report.non_fire_spans, 0u);
  ASSERT_EQ(report.hooks.size(), 1u);

  const HookBottleneck& hook = report.hooks[0];
  EXPECT_EQ(hook.hook, "hook.mem.page_fault");
  const BottleneckEvidence& ev = hook.advisory.evidence;
  EXPECT_EQ(ev.fires, 1u);
  EXPECT_EQ(ev.critical_path_ns, 100u);
  EXPECT_EQ(ev.max_critical_path_ns, 100u);
  // Exclusive times partition the critical path exactly:
  //   root 100 - (20 + 50) = 30, vm.exec 50 - 30 = 20 -> dispatch 50
  //   table.lookup 20, ml.eval 30.
  EXPECT_EQ(ev.dispatch_ns, 50u);
  EXPECT_EQ(ev.table_ns, 20u);
  EXPECT_EQ(ev.ml_ns, 30u);
  EXPECT_EQ(ev.helper_ns, 0u);
  EXPECT_EQ(ev.other_ns, 0u);
  EXPECT_EQ(ev.dispatch_ns + ev.table_ns + ev.ml_ns + ev.helper_ns + ev.other_ns,
            ev.critical_path_ns);

  // Per-name contributors carry inclusive/exclusive/criticality/slack.
  const CriticalContributor* root = FindContributor(hook.advisory, "hook.mem.page_fault");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->inclusive_ns, 100u);
  EXPECT_EQ(root->exclusive_ns, 30u);
  EXPECT_EQ(root->criticality_permille, 300u);
  EXPECT_EQ(root->slack_ns, 70u);
  const CriticalContributor* ml = FindContributor(hook.advisory, "ml.eval");
  ASSERT_NE(ml, nullptr);
  EXPECT_EQ(ml->exclusive_ns, 30u);
  EXPECT_EQ(ml->slack_ns, 70u);

  // Contributors sort by exclusive time desc, name asc on ties.
  ASSERT_EQ(hook.advisory.contributors.size(), 4u);
  EXPECT_EQ(hook.advisory.contributors[0].name, "hook.mem.page_fault");
  EXPECT_EQ(hook.advisory.contributors[1].name, "ml.eval");
  EXPECT_EQ(hook.advisory.contributors[2].name, "table.lookup");
  EXPECT_EQ(hook.advisory.contributors[3].name, "vm.exec");

  // The critical chain descends through the slowest child at each level.
  ASSERT_EQ(hook.critical_chain.size(), 3u);
  EXPECT_EQ(hook.critical_chain[0], "hook.mem.page_fault");
  EXPECT_EQ(hook.critical_chain[1], "vm.exec");
  EXPECT_EQ(hook.critical_chain[2], "ml.eval");
}

TEST(CriticalPathTest, NonFireRootsAreCountedSeparately) {
  std::vector<SpanRecord> spans;
  spans.push_back(MakeSpan(1, 1, 0, 0, 50, "cp.install"));
  spans.push_back(MakeSpan(1, 2, 1, 10, 40, "cp.verify"));
  const std::vector<SpanRecord> fire = MakeFireTree(2, 10, 1000);
  spans.insert(spans.end(), fire.begin(), fire.end());

  const BottleneckReport report = CriticalPathAnalyzer().Analyze(spans);
  EXPECT_EQ(report.trees, 1u);
  EXPECT_EQ(report.non_fire_spans, 2u);
  ASSERT_EQ(report.hooks.size(), 1u);
}

TEST(CriticalPathTest, DeadlineAndGovernorTagsCountPressuredFires) {
  std::vector<SpanRecord> spans = MakeFireTree(1, 1, 0);
  AddTag(spans[2], "ddl", 1);  // the vm.exec span overran its deadline
  std::vector<SpanRecord> degraded = MakeFireTree(2, 10, 1000);
  AddTag(degraded[0], "gov", 1);  // admitted below GovLevel::kFull
  spans.insert(spans.end(), degraded.begin(), degraded.end());

  const BottleneckReport report = CriticalPathAnalyzer().Analyze(spans);
  ASSERT_EQ(report.hooks.size(), 1u);
  const BottleneckEvidence& ev = report.hooks[0].advisory.evidence;
  EXPECT_EQ(ev.fires, 2u);
  EXPECT_EQ(ev.deadline_fires, 1u);
  EXPECT_EQ(ev.degraded_fires, 1u);
}

// --- Orphans: ring eviction and torn parents -------------------------------

TEST(CriticalPathTest, EvictedRootOrphansTheWholeTree) {
  // The children survived the ring; the root did not. Nothing can be
  // attributed (there is no critical path without the root interval).
  std::vector<SpanRecord> spans;
  spans.push_back(MakeSpan(1, 2, 1, 10, 30, "table.lookup"));
  spans.push_back(MakeSpan(1, 3, 1, 40, 90, "vm.exec"));
  const BottleneckReport report = CriticalPathAnalyzer().Analyze(spans);
  EXPECT_EQ(report.trees, 0u);
  EXPECT_EQ(report.orphan_spans, 2u);
  EXPECT_TRUE(report.hooks.empty());
}

TEST(CriticalPathTest, EvictedMidSpanOrphansOnlyItsSubtree) {
  // The vm.exec span (id 3) was evicted: its ml.eval child is unreachable
  // from the root and must not be attributed, but the rest of the tree is.
  std::vector<SpanRecord> spans;
  spans.push_back(MakeSpan(1, 1, 0, 0, 100, "hook.mem.page_fault"));
  spans.push_back(MakeSpan(1, 2, 1, 10, 30, "table.lookup"));
  spans.push_back(MakeSpan(1, 4, 3, 50, 80, "ml.eval"));
  const BottleneckReport report = CriticalPathAnalyzer().Analyze(spans);
  EXPECT_EQ(report.trees, 1u);
  EXPECT_EQ(report.orphan_spans, 1u);
  ASSERT_EQ(report.hooks.size(), 1u);
  const BottleneckEvidence& ev = report.hooks[0].advisory.evidence;
  EXPECT_EQ(ev.critical_path_ns, 100u);
  EXPECT_EQ(ev.ml_ns, 0u);  // the orphaned eval is not attributed
  EXPECT_EQ(ev.table_ns, 20u);
  EXPECT_EQ(ev.dispatch_ns, 80u);
}

TEST(CriticalPathTest, TornRingSnapshotAnalyzesDeterministically) {
  // A real tracer with a tiny ring, snapshotted mid-fire: wraparound has
  // evicted most earlier spans, and the in-flight fire's root is still open
  // (not yet in the ring) so its completed children are orphans — exactly
  // the flight-recorder-during-a-breach shape the analyzer must absorb.
  Tracer tracer(/*ring_capacity=*/8);
  tracer.set_sample_every(1);
  for (int fire = 0; fire < 16; ++fire) {
    tracer.BeginSpan("hook.unit.fire");
    tracer.BeginSpan("table.lookup");
    tracer.EndSpan();
    tracer.BeginSpan("vm.exec");
    tracer.EndSpan();
    tracer.EndSpan();
  }
  tracer.BeginSpan("hook.unit.fire");  // the in-flight fire
  tracer.BeginSpan("table.lookup");
  tracer.EndSpan();
  tracer.BeginSpan("vm.exec");
  tracer.EndSpan();
  const std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_FALSE(spans.empty());
  ASSERT_LE(spans.size(), 8u);  // the ring really did wrap
  const CriticalPathAnalyzer analyzer;
  const BottleneckReport report = analyzer.Analyze(spans);
  EXPECT_EQ(report.spans, spans.size());
  EXPECT_GT(report.trees, 0u);         // completed fires still analyzed
  EXPECT_GT(report.orphan_spans, 0u);  // the open root's children
  EXPECT_EQ(RenderBottleneckReport(report),
            RenderBottleneckReport(analyzer.Analyze(spans)));
  tracer.EndSpan();  // close the in-flight fire before teardown
}

// --- Byte-determinism ------------------------------------------------------

TEST(CriticalPathTest, ReportIsByteIdenticalAcrossRunsAndInputOrder) {
  std::vector<SpanRecord> spans;
  uint64_t next_id = 1;
  for (int fire = 0; fire < 12; ++fire) {
    std::vector<SpanRecord> tree =
        MakeFireTree(static_cast<uint64_t>(fire + 1), next_id,
                     static_cast<uint64_t>(fire) * 1000);
    // Two hooks, interleaved, with varying durations so ties are real.
    if (fire % 2 == 1) {
      std::strncpy(tree[0].name, "hook.sched.migrate", kMaxSpanNameLen);
      tree[3].end_ns += static_cast<uint64_t>(fire);
    }
    next_id += tree.size();
    spans.insert(spans.end(), tree.begin(), tree.end());
  }

  const CriticalPathAnalyzer analyzer;
  const std::string first = RenderBottleneckReport(analyzer.Analyze(spans));
  const std::string second = RenderBottleneckReport(analyzer.Analyze(spans));
  EXPECT_EQ(first, second);

  std::vector<SpanRecord> reversed(spans.rbegin(), spans.rend());
  EXPECT_EQ(first, RenderBottleneckReport(analyzer.Analyze(reversed)));

  std::vector<SpanRecord> rotated(spans.begin() + spans.size() / 3, spans.end());
  rotated.insert(rotated.end(), spans.begin(), spans.begin() + spans.size() / 3);
  EXPECT_EQ(first, RenderBottleneckReport(analyzer.Analyze(rotated)));
}

// --- Classifier rule ladder ------------------------------------------------

BottleneckEvidence EvidenceWithShares(uint64_t dispatch, uint64_t table, uint64_t ml,
                                      uint64_t helper) {
  BottleneckEvidence ev;
  ev.fires = 100;
  ev.dispatch_ns = dispatch;
  ev.table_ns = table;
  ev.ml_ns = ml;
  ev.helper_ns = helper;
  ev.critical_path_ns = dispatch + table + ml + helper;
  ev.max_critical_path_ns = ev.critical_path_ns;
  return ev;
}

TEST(ClassifierTest, TooFewFiresIsInconclusive) {
  BottleneckEvidence ev = EvidenceWithShares(0, 0, 1000, 0);
  ev.fires = 7;  // default min_fires is 8
  EXPECT_EQ(ClassifyBottleneck(ev, {}), BottleneckLabel::kInconclusive);
  ev.fires = 8;
  EXPECT_EQ(ClassifyBottleneck(ev, {}), BottleneckLabel::kMlEvalBound);
}

TEST(ClassifierTest, EmptyCriticalPathIsInconclusive) {
  BottleneckEvidence ev;
  ev.fires = 100;
  EXPECT_EQ(ClassifyBottleneck(ev, {}), BottleneckLabel::kInconclusive);
}

TEST(ClassifierTest, EachComponentDominanceYieldsItsLabel) {
  EXPECT_EQ(ClassifyBottleneck(EvidenceWithShares(600, 200, 100, 100), {}),
            BottleneckLabel::kDispatchBound);
  EXPECT_EQ(ClassifyBottleneck(EvidenceWithShares(200, 600, 100, 100), {}),
            BottleneckLabel::kTableBound);
  EXPECT_EQ(ClassifyBottleneck(EvidenceWithShares(200, 100, 600, 100), {}),
            BottleneckLabel::kMlEvalBound);
  EXPECT_EQ(ClassifyBottleneck(EvidenceWithShares(200, 100, 100, 600), {}),
            BottleneckLabel::kHelperBound);
}

TEST(ClassifierTest, NoDominantComponentIsInconclusive) {
  // Largest share is 300 permille, below the 400 default.
  EXPECT_EQ(ClassifyBottleneck(EvidenceWithShares(300, 300, 200, 200), {}),
            BottleneckLabel::kInconclusive);
}

TEST(ClassifierTest, DeadlinePressureOutranksComponentDominance) {
  BottleneckEvidence ev = EvidenceWithShares(100, 100, 700, 100);
  ev.deadline_fires = 20;  // 200 permille >= 150 default
  EXPECT_EQ(ClassifyBottleneck(ev, {}), BottleneckLabel::kDeadlineBound);

  BottleneckEvidence degraded = EvidenceWithShares(100, 100, 700, 100);
  degraded.degraded_fires = 15;  // exactly the threshold
  EXPECT_EQ(ClassifyBottleneck(degraded, {}), BottleneckLabel::kDeadlineBound);

  BottleneckEvidence below = EvidenceWithShares(100, 100, 700, 100);
  below.deadline_fires = 14;
  EXPECT_EQ(ClassifyBottleneck(below, {}), BottleneckLabel::kMlEvalBound);
}

TEST(ClassifierTest, TiesBreakByFixedPrecedence) {
  // ml > table > helper > dispatch, the order tier-3/index tuning can act.
  EXPECT_EQ(ClassifyBottleneck(EvidenceWithShares(100, 400, 400, 100), {}),
            BottleneckLabel::kMlEvalBound);
  EXPECT_EQ(ClassifyBottleneck(EvidenceWithShares(100, 400, 100, 400), {}),
            BottleneckLabel::kTableBound);
  EXPECT_EQ(ClassifyBottleneck(EvidenceWithShares(400, 100, 100, 400), {}),
            BottleneckLabel::kHelperBound);
}

TEST(ClassifierTest, ThresholdsAreConfigurable) {
  ClassifierConfig config;
  config.min_fires = 1;
  config.dominant_permille = 800;
  BottleneckEvidence ev = EvidenceWithShares(100, 100, 700, 100);
  ev.fires = 2;
  EXPECT_EQ(ClassifyBottleneck(ev, config), BottleneckLabel::kInconclusive);
  config.dominant_permille = 700;
  EXPECT_EQ(ClassifyBottleneck(ev, config), BottleneckLabel::kMlEvalBound);
}

// --- Merging ---------------------------------------------------------------

TEST(MergeAdvisoriesTest, SumsEvidenceAndReclassifies) {
  const std::vector<SpanRecord> tree_a = MakeFireTree(1, 1, 0);
  std::vector<SpanRecord> tree_b = MakeFireTree(2, 10, 1000);
  std::strncpy(tree_b[0].name, "hook.sched.migrate", kMaxSpanNameLen);
  tree_b[3].end_ns = tree_b[3].start_ns + 800;  // ml.eval dominates hook b
  tree_b[2].end_ns = tree_b[3].end_ns + 5;
  tree_b[0].end_ns = tree_b[2].end_ns + 5;

  std::vector<SpanRecord> spans = tree_a;
  spans.insert(spans.end(), tree_b.begin(), tree_b.end());
  ClassifierConfig config;
  config.min_fires = 1;
  AnalyzerConfig analyzer_config;
  analyzer_config.classifier = config;
  const BottleneckReport report = CriticalPathAnalyzer(analyzer_config).Analyze(spans);
  ASSERT_EQ(report.hooks.size(), 2u);

  std::vector<const BottleneckAdvisory*> parts;
  for (const HookBottleneck& hook : report.hooks) {
    parts.push_back(&hook.advisory);
  }
  const BottleneckAdvisory merged = MergeAdvisories(parts, config);
  EXPECT_TRUE(merged.valid);
  EXPECT_EQ(merged.evidence.fires, 2u);
  EXPECT_EQ(merged.evidence.critical_path_ns,
            report.hooks[0].advisory.evidence.critical_path_ns +
                report.hooks[1].advisory.evidence.critical_path_ns);
  // Hook b's 800ns eval dominates the merged path.
  EXPECT_EQ(merged.label, BottleneckLabel::kMlEvalBound);
  // Contributors merged by name: one ml.eval row covering both fires.
  const CriticalContributor* ml = FindContributor(merged, "ml.eval");
  ASSERT_NE(ml, nullptr);
  EXPECT_EQ(ml->count, 2u);
  EXPECT_EQ(ml->exclusive_ns, 30u + 800u);

  const BottleneckAdvisory bounded = MergeAdvisories(parts, config, 2);
  EXPECT_EQ(bounded.contributors.size(), 2u);
}

// --- Advisory-driven tier promotion ----------------------------------------

RmtProgramSpec MakeConstSpec(const std::string& program, const std::string& table,
                             const std::string& hook_point) {
  Assembler as("const_one", HookKind::kGeneric);
  as.MovImm(0, 1);
  as.Exit();
  RmtProgramSpec spec;
  spec.name = program;
  RmtTableSpec t;
  t.name = table;
  t.hook_point = hook_point;
  t.actions.push_back(std::move(as.Build()).value());
  t.default_action = 0;
  spec.tables.push_back(std::move(t));
  return spec;
}

BottleneckAdvisory MakeAdvisory(BottleneckLabel label) {
  BottleneckAdvisory advisory;
  advisory.valid = true;
  advisory.label = label;
  advisory.evidence.fires = 64;
  advisory.evidence.critical_path_ns = 64000;
  return advisory;
}

TEST(AdvisoryPromotionTest, EffectiveHotExecsScalesByLabel) {
  ControlPlane::TieringConfig config;
  config.hot_execs = 100;
  const BottleneckAdvisory none;  // never analyzed
  EXPECT_EQ(ControlPlane::EffectiveHotExecs(config, none), 100u);
  EXPECT_EQ(ControlPlane::EffectiveHotExecs(config, MakeAdvisory(BottleneckLabel::kInconclusive)),
            100u);
  EXPECT_EQ(ControlPlane::EffectiveHotExecs(config, MakeAdvisory(BottleneckLabel::kDispatchBound)),
            100u);
  EXPECT_EQ(ControlPlane::EffectiveHotExecs(config, MakeAdvisory(BottleneckLabel::kMlEvalBound)),
            100u);
  EXPECT_EQ(ControlPlane::EffectiveHotExecs(config, MakeAdvisory(BottleneckLabel::kHelperBound)),
            200u);
  EXPECT_EQ(ControlPlane::EffectiveHotExecs(config, MakeAdvisory(BottleneckLabel::kDeadlineBound)),
            200u);
  EXPECT_EQ(ControlPlane::EffectiveHotExecs(config, MakeAdvisory(BottleneckLabel::kTableBound)),
            400u);
  config.advisory_promotion = false;
  EXPECT_EQ(ControlPlane::EffectiveHotExecs(config, MakeAdvisory(BottleneckLabel::kTableBound)),
            100u);
}

// The acceptance criterion: an ml-eval-bound program promotes to tier 3
// ahead of a hotter table-bound one, because specialization helps the
// former and index tuning (not tier 3) is the fix for the latter.
TEST(AdvisoryPromotionTest, MlEvalBoundPromotesAheadOfHotterTableBound) {
  HookRegistry hooks;
  const HookId hook_a = std::move(hooks.Register("unit.a", HookKind::kGeneric)).value();
  const HookId hook_b = std::move(hooks.Register("unit.b", HookKind::kGeneric)).value();
  ControlPlane cp(&hooks);

  Result<ControlPlane::ProgramHandle> a = cp.Install(MakeConstSpec("prog_a", "tab_a", "unit.a"));
  Result<ControlPlane::ProgramHandle> b = cp.Install(MakeConstSpec("prog_b", "tab_b", "unit.b"));
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  ControlPlane::TieringConfig tiering;
  tiering.hot_execs = 100;
  ASSERT_TRUE(cp.EnableTiering(*a, tiering).ok());
  ASSERT_TRUE(cp.EnableTiering(*b, tiering).ok());
  ASSERT_TRUE(cp.SetBottleneckAdvisory(*a, MakeAdvisory(BottleneckLabel::kMlEvalBound)).ok());
  ASSERT_TRUE(cp.SetBottleneckAdvisory(*b, MakeAdvisory(BottleneckLabel::kTableBound)).ok());

  for (int i = 0; i < 150; ++i) {
    (void)hooks.Fire(hook_a, i);
  }
  for (int i = 0; i < 300; ++i) {
    (void)hooks.Fire(hook_b, i);
  }

  Result<ControlPlane::TierReport> report_a = cp.TickTiering(*a);
  ASSERT_TRUE(report_a.ok()) << report_a.status().ToString();
  EXPECT_EQ(report_a->advisory_label, BottleneckLabel::kMlEvalBound);
  EXPECT_EQ(report_a->effective_hot_execs, 100u);
  EXPECT_EQ(report_a->tier, 3);  // 150 execs >= 100: promoted

  Result<ControlPlane::TierReport> report_b = cp.TickTiering(*b);
  ASSERT_TRUE(report_b.ok()) << report_b.status().ToString();
  EXPECT_EQ(report_b->advisory_label, BottleneckLabel::kTableBound);
  EXPECT_EQ(report_b->effective_hot_execs, 400u);
  EXPECT_EQ(report_b->tier, 2);  // hotter (300 execs) but deferred: 300 < 400

  // Once the table-bound program genuinely clears the scaled bar, it still
  // promotes — the advisory defers tier 3, it never denies it.
  for (int i = 0; i < 100; ++i) {
    (void)hooks.Fire(hook_b, i);
  }
  Result<ControlPlane::TierReport> report_b2 = cp.TickTiering(*b);
  ASSERT_TRUE(report_b2.ok());
  EXPECT_EQ(report_b2->tier, 3);
}

TEST(AdvisoryPromotionTest, RefreshBottleneckStoresTheAdvisoryAndTelemetry) {
  HookRegistry hooks;
  hooks.telemetry().tracer().set_sample_every(1);
  const HookId hook = std::move(hooks.Register("unit.hot", HookKind::kGeneric)).value();
  ControlPlane cp(&hooks);
  Result<ControlPlane::ProgramHandle> handle =
      cp.Install(MakeConstSpec("unit_prog", "tab", "unit.hot"));
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();

  for (int i = 0; i < 32; ++i) {
    (void)hooks.Fire(hook, i);
  }
  Result<BottleneckAdvisory> advisory = cp.RefreshBottleneck(*handle);
  ASSERT_TRUE(advisory.ok()) << advisory.status().ToString();
  EXPECT_TRUE(advisory->valid);
  EXPECT_GT(advisory->evidence.fires, 0u);

  InstalledProgram* program = cp.Get(*handle);
  ASSERT_NE(program, nullptr);
  EXPECT_TRUE(program->bottleneck().valid);
  EXPECT_EQ(program->bottleneck().evidence.fires, advisory->evidence.fires);
  EXPECT_EQ(hooks.telemetry().GetCounter("rkd.bottleneck.refreshes")->value(), 1u);
  EXPECT_EQ(hooks.telemetry().GetGauge("rkd.bottleneck.unit_prog.fires")->value(),
            static_cast<int64_t>(advisory->evidence.fires));
}

// --- trace_export satellites -----------------------------------------------

TEST(TraceExportTest, AggregateSpansComputesExclusiveSelfTime) {
  std::vector<SpanRecord> spans;
  spans.push_back(MakeSpan(1, 1, 0, 0, 100, "hook.unit"));
  spans.push_back(MakeSpan(1, 2, 1, 20, 60, "vm.exec"));
  spans.push_back(MakeSpan(2, 3, 0, 200, 230, "cp.install"));
  const std::vector<SpanAggregate> aggs = AggregateSpans(spans);
  std::map<std::string, SpanAggregate> by_name;
  for (const SpanAggregate& agg : aggs) {
    by_name[agg.name] = agg;
  }
  EXPECT_EQ(by_name["hook.unit"].total_ns, 100u);
  EXPECT_EQ(by_name["hook.unit"].self_ns, 60u);  // minus the nested vm.exec
  EXPECT_EQ(by_name["vm.exec"].self_ns, 40u);    // leaf: self == inclusive
  EXPECT_EQ(by_name["cp.install"].self_ns, 30u);
}

TEST(TraceExportTest, CounterTracksDeriveFromTransitionEvents) {
  std::vector<TraceEvent> events;
  TraceEvent gov;
  gov.ts_ns = 100;
  gov.source = 7;
  gov.kind = kGovTransitionEvent;
  gov.key = 0;
  gov.value = 2;
  events.push_back(gov);
  TraceEvent tier;
  tier.ts_ns = 200;
  tier.source = 7;
  tier.kind = kTierTransitionEvent;
  tier.key = 2;
  tier.value = 3;
  events.push_back(tier);
  TraceEvent canary;
  canary.ts_ns = 300;
  canary.source = 3;
  canary.kind = kCanaryRoutingEvent;
  canary.value = 200;
  events.push_back(canary);
  TraceEvent fire;  // ignored: not a counter-track kind
  fire.ts_ns = 400;
  fire.kind = kHookFireEvent;
  events.push_back(fire);

  const std::vector<CounterTrack> tracks = CounterTracksFromTrace(events);
  ASSERT_EQ(tracks.size(), 3u);
  EXPECT_EQ(tracks[0].name, "rkd.canary.permille.r3");
  ASSERT_EQ(tracks[0].samples.size(), 1u);
  EXPECT_EQ(tracks[0].samples[0].value, 200);
  EXPECT_EQ(tracks[1].name, "rkd.gov.level.p7");
  EXPECT_EQ(tracks[1].samples[0].value, 2);
  EXPECT_EQ(tracks[2].name, "rkd.tier.p7");
  EXPECT_EQ(tracks[2].samples[0].value, 3);
}

TEST(TraceExportTest, PerfettoExportWithCounterTracksStaysValidJson) {
  std::vector<SpanRecord> spans;
  spans.push_back(MakeSpan(1, 1, 0, 1000, 2000, "hook.unit"));
  TraceExportOptions options;
  CounterTrack track;
  track.name = "rkd.tier.p0";
  track.samples.push_back(CounterSample{1500, 3});
  options.counters.push_back(track);
  const std::string json = ExportPerfettoTrace(spans, options);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("rkd.tier.p0"), std::string::npos);
  // Structural sanity: balanced braces/brackets, no trailing comma before ].
  long depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(json.find(",]"), std::string::npos);
  EXPECT_EQ(json.find(",}"), std::string::npos);
}

// --- Golden-corpus replay: cross-run and cross-tier determinism ------------

// Rewrites span timestamps to structural (DFS visit) counters, preserving
// nesting and sibling order. Replay produces the same span *structure* on
// every run and on both VM tiers (same fire sequence, same instrumentation
// points, same sequentially-assigned ids) while the raw nanoseconds are
// wall-clock; normalizing makes the full report byte-comparable.
std::vector<SpanRecord> NormalizeSpanTimes(std::vector<SpanRecord> spans) {
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) { return a.span_id < b.span_id; });
  std::map<uint64_t, size_t> index_of;
  for (size_t i = 0; i < spans.size(); ++i) {
    index_of[spans[i].span_id] = i;
  }
  std::map<uint64_t, std::vector<size_t>> children;  // parent span_id -> members
  std::vector<size_t> roots;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent_id != 0 && index_of.count(spans[i].parent_id) > 0) {
      children[spans[i].parent_id].push_back(i);
    } else {
      roots.push_back(i);  // true roots and orphans alike
    }
  }
  uint64_t clock = 1;
  struct Frame {
    size_t index;
    size_t next_child;
  };
  for (size_t root : roots) {
    std::vector<Frame> stack{{root, 0}};
    spans[root].start_ns = clock++;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const std::vector<size_t>& kids = children[spans[frame.index].span_id];
      if (frame.next_child < kids.size()) {
        const size_t child = kids[frame.next_child++];
        spans[child].start_ns = clock++;
        stack.push_back(Frame{child, 0});
      } else {
        spans[frame.index].end_ns = clock++;
        stack.pop_back();
      }
    }
  }
  return spans;
}

void CheckGoldenBottleneck(const std::string& file, const RmtProgramSpec& spec) {
  const std::string path = std::string(RKD_TEST_DATA_DIR) + "/" + file;
  Result<ExperienceLog> log = ReadExperienceLog(path);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  ASSERT_GT(log->fire_count(), 0u);

  ReplayEngine engine;
  const CriticalPathAnalyzer analyzer;
  std::map<ExecTier, std::string> per_tier;
  for (const ExecTier tier : {ExecTier::kInterpreter, ExecTier::kJit}) {
    std::string normalized_first;
    for (int run = 0; run < 2; ++run) {
      ReplayOptions options;
      options.tier = tier;
      options.trace_sample_every = 1;  // force tracing on every replayed fire
      std::vector<SpanRecord> spans;
      options.capture_spans = &spans;
      Result<DivergenceReport> replayed = engine.Replay(*log, spec, options);
      ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
      ASSERT_FALSE(spans.empty());

      // The analysis itself is a pure function of the snapshot bytes.
      EXPECT_EQ(RenderBottleneckReport(analyzer.Analyze(spans)),
                RenderBottleneckReport(analyzer.Analyze(spans)));

      const std::string normalized =
          RenderBottleneckReport(analyzer.Analyze(NormalizeSpanTimes(spans)));
      if (run == 0) {
        normalized_first = normalized;
      } else {
        // Byte-identical across two runs of the same tier.
        EXPECT_EQ(normalized_first, normalized) << file;
      }
    }
    per_tier[tier] = normalized_first;
  }
  // Byte-identical across the interpreter and the JIT: both tiers emit the
  // same span structure (vm.helper included), so the normalized advisory —
  // labels, counts, critical chains, everything — must agree.
  EXPECT_EQ(per_tier[ExecTier::kInterpreter], per_tier[ExecTier::kJit]) << file;
}

TEST(GoldenBottleneckTest, PrefetchCorpusAnalyzesIdenticallyAcrossTiers) {
  CheckGoldenBottleneck("golden_prefetch.rkdr",
                        RmtMlPrefetcher().BuildProgramSpec("golden_candidate"));
}

TEST(GoldenBottleneckTest, SchedCorpusAnalyzesIdenticallyAcrossTiers) {
  CheckGoldenBottleneck("golden_sched.rkdr",
                        RmtMigrationOracle().BuildProgramSpec("golden_candidate"));
}

}  // namespace
}  // namespace rkd
