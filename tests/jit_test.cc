// Tests for the JIT tier: compile-time validation and, most importantly,
// the differential property that compiled execution matches the interpreter
// on randomly generated valid programs.
#include <array>
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/bytecode/assembler.h"
#include "src/vm/jit.h"
#include "src/vm/vm.h"

namespace rkd {
namespace {

BytecodeProgram MustBuild(Assembler& a) {
  Result<BytecodeProgram> program = a.Build();
  EXPECT_TRUE(program.ok()) << program.status();
  return std::move(program).value();
}

TEST(JitCompileTest, AcceptsStraightLineProgram) {
  Assembler a("ok");
  a.MovImm(0, 1).AddImm(0, 2).Exit();
  Result<CompiledProgram> compiled = CompiledProgram::Compile(MustBuild(a));
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  EXPECT_EQ(compiled->size(), 3u);
  EXPECT_EQ(compiled->name(), "ok");
}

TEST(JitCompileTest, RejectsBackwardJump) {
  BytecodeProgram program;
  program.name = "loop";
  Instruction jump;
  jump.opcode = Opcode::kJa;
  jump.offset = -1;
  program.code.push_back(jump);
  Instruction exit_insn;
  exit_insn.opcode = Opcode::kExit;
  program.code.push_back(exit_insn);
  Result<CompiledProgram> compiled = CompiledProgram::Compile(program);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kVerificationFailed);
}

TEST(JitCompileTest, RejectsOutOfRangeJump) {
  BytecodeProgram program;
  program.name = "far";
  Instruction jump;
  jump.opcode = Opcode::kJa;
  jump.offset = 100;
  program.code.push_back(jump);
  Instruction exit_insn;
  exit_insn.opcode = Opcode::kExit;
  program.code.push_back(exit_insn);
  EXPECT_FALSE(CompiledProgram::Compile(program).ok());
}

TEST(JitCompileTest, RejectsFallOffEnd) {
  BytecodeProgram program;
  program.name = "fall";
  Instruction add;
  add.opcode = Opcode::kAddImm;
  add.imm = 1;
  program.code.push_back(add);
  EXPECT_FALSE(CompiledProgram::Compile(program).ok());
}

TEST(JitCompileTest, RejectsBadRegister) {
  BytecodeProgram program;
  program.name = "badreg";
  Instruction mov;
  mov.opcode = Opcode::kMovImm;
  mov.dst = kNumScalarRegs;
  program.code.push_back(mov);
  Instruction exit_insn;
  exit_insn.opcode = Opcode::kExit;
  program.code.push_back(exit_insn);
  EXPECT_FALSE(CompiledProgram::Compile(program).ok());
}

TEST(JitCompileTest, RejectsBadStackOffset) {
  Assembler a("stack");
  a.StStackImm(-4, 1);  // unaligned
  a.MovImm(0, 0).Exit();
  EXPECT_FALSE(CompiledProgram::Compile(MustBuild(a)).ok());
}

TEST(JitCompileTest, RejectsBadLane) {
  Assembler a("lane");
  a.VecZero(0);
  a.MovImm(2, 1);
  a.ScalarVal(0, kVectorLanes, 2);
  a.MovImm(0, 0).Exit();
  EXPECT_FALSE(CompiledProgram::Compile(MustBuild(a)).ok());
}

TEST(JitCompileTest, RejectsUnknownHelper) {
  BytecodeProgram program;
  program.name = "badhelper";
  Instruction call;
  call.opcode = Opcode::kCall;
  call.imm = 1000;
  program.code.push_back(call);
  Instruction exit_insn;
  exit_insn.opcode = Opcode::kExit;
  program.code.push_back(exit_insn);
  EXPECT_FALSE(CompiledProgram::Compile(program).ok());
}

TEST(JitRunTest, MissingMapReadsZeroInsteadOfFaulting) {
  Assembler a("mapless");
  a.DeclareMaps(1);
  a.MovImm(2, 5);
  a.MapLookup(0, 2, 0);
  a.Exit();
  Result<CompiledProgram> compiled = CompiledProgram::Compile(MustBuild(a));
  ASSERT_TRUE(compiled.ok());
  const VmEnv env;  // no maps at all
  Result<int64_t> result = compiled->Run(env, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 0);
}

TEST(JitRunTest, TailCallChainsToResolvedProgram) {
  Assembler callee("callee");
  callee.AddImm(0, 100).Exit();
  Result<CompiledProgram> compiled_callee = CompiledProgram::Compile(MustBuild(callee));
  ASSERT_TRUE(compiled_callee.ok());

  Assembler caller("caller");
  caller.DeclareTables(1);
  caller.MovImm(0, 5);
  caller.TailCall(0);
  caller.MovImm(0, -999);  // must be skipped by a successful tail call
  caller.Exit();
  Result<CompiledProgram> compiled_caller = CompiledProgram::Compile(MustBuild(caller));
  ASSERT_TRUE(compiled_caller.ok());

  const VmEnv env;
  const CompiledProgram::Resolver resolver = [&](int64_t id) {
    return id == 0 ? &*compiled_callee : nullptr;
  };
  Result<int64_t> result = compiled_caller->Run(env, {}, nullptr, resolver);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 105);  // registers survive the tail call
}

TEST(JitRunTest, FailedTailCallFallsThrough) {
  Assembler caller("caller");
  caller.DeclareTables(1);
  caller.MovImm(0, 5);
  caller.TailCall(0);
  caller.MovImm(0, 42);
  caller.Exit();
  Result<CompiledProgram> compiled = CompiledProgram::Compile(MustBuild(caller));
  ASSERT_TRUE(compiled.ok());
  const VmEnv env;
  Result<int64_t> result = compiled->Run(env, {});  // no resolver
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(JitRunTest, TailCallDepthIsBounded) {
  // A program that tail-calls itself: the chain must stop at the depth cap
  // and then fall through.
  Assembler a("self");
  a.DeclareTables(1);
  a.AddImm(0, 1);
  a.TailCall(0);
  a.Exit();
  Result<CompiledProgram> compiled = CompiledProgram::Compile(MustBuild(a));
  ASSERT_TRUE(compiled.ok());
  const CompiledProgram::Resolver resolver = [&](int64_t) { return &*compiled; };
  const VmEnv env;
  RunStats stats;
  Result<int64_t> result = compiled->Run(env, {}, &stats, resolver);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.tail_calls, static_cast<uint64_t>(kMaxTailCallDepth));
  EXPECT_EQ(*result, kMaxTailCallDepth + 1);
}

// --- Differential property: JIT == interpreter on random valid programs ---

// Generates a random straight-line-with-forward-branches program using ALU,
// stack, and branch instructions over deterministic inputs.
BytecodeProgram RandomProgram(Rng& rng, size_t length) {
  Assembler a("random");
  // Seed some registers deterministically so reads are initialized.
  for (int reg = 0; reg <= 9; ++reg) {
    a.MovImm(reg, rng.NextInt(-1000, 1000));
  }
  // Pre-initialize a few stack slots.
  a.StStackImm(-8, rng.NextInt(-50, 50));
  a.StStackImm(-16, rng.NextInt(-50, 50));

  std::vector<Assembler::Label> pending;  // labels to bind later
  for (size_t i = 0; i < length; ++i) {
    const int dst = static_cast<int>(rng.NextBounded(10));
    const int src = static_cast<int>(rng.NextBounded(10));
    switch (rng.NextBounded(14)) {
      case 0: a.Add(dst, src); break;
      case 1: a.Sub(dst, src); break;
      case 2: a.MulImm(dst, rng.NextInt(-9, 9)); break;
      case 3: a.Div(dst, src); break;
      case 4: a.And(dst, src); break;
      case 5: a.Or(dst, src); break;
      case 6: a.Xor(dst, src); break;
      case 7: a.AshrImm(dst, rng.NextInt(0, 8)); break;
      case 8: a.Mov(dst, src); break;
      case 9: a.Neg(dst); break;
      case 10: a.LdStack(dst, rng.NextBool() ? -8 : -16); break;
      case 11: a.StStack(rng.NextBool() ? -8 : -16, src); break;
      case 12: {
        auto label = a.NewLabel();
        a.JltImm(dst, rng.NextInt(-100, 100), label);
        pending.push_back(label);
        break;
      }
      case 13: {
        auto label = a.NewLabel();
        a.Jge(dst, src, label);
        pending.push_back(label);
        break;
      }
    }
    // Bind some pending labels as we go (always forward).
    while (pending.size() > 2) {
      a.Bind(pending.front());
      pending.erase(pending.begin());
    }
  }
  for (auto& label : pending) {
    a.Bind(label);
  }
  a.Mov(0, static_cast<int>(rng.NextBounded(10)));
  a.Exit();
  Result<BytecodeProgram> program = a.Build();
  EXPECT_TRUE(program.ok()) << program.status();
  return std::move(program).value();
}

class JitDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JitDifferentialTest, MatchesInterpreterOnRandomPrograms) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const BytecodeProgram program = RandomProgram(rng, 40);
    Result<CompiledProgram> compiled = CompiledProgram::Compile(program);
    ASSERT_TRUE(compiled.ok()) << compiled.status();

    const std::array<int64_t, 3> args{rng.NextInt(-5, 5), rng.NextInt(-5, 5),
                                      rng.NextInt(-5, 5)};
    const VmEnv env;
    const Interpreter interp(env);
    Result<int64_t> interpreted = interp.Run(program, args);
    Result<int64_t> jitted = compiled->Run(env, args);
    ASSERT_TRUE(interpreted.ok()) << interpreted.status();
    ASSERT_TRUE(jitted.ok()) << jitted.status();
    EXPECT_EQ(*interpreted, *jitted) << "seed=" << GetParam() << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JitDifferentialTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(JitDifferentialTest, MatchesInterpreterOnVectorPrograms) {
  TensorRegistry tensors;
  FixedMatrix scale(4, 4);
  for (size_t i = 0; i < 4; ++i) {
    scale.at(i, i) = Fixed32::FromDouble(0.5).raw();
  }
  const int64_t tensor_id = tensors.Add(scale);

  Assembler a("vec");
  a.DeclareTensors(1);
  a.VecZero(0);
  for (int lane = 0; lane < 4; ++lane) {
    a.MovImm(2, (lane + 1) << 16);
    a.ScalarVal(0, lane, 2);
  }
  a.MatMul(1, 0, tensor_id);
  a.VecAdd(1, 0);
  a.VecRelu(1, 1);
  a.VecArgmax(0, 1);
  a.Exit();
  Result<BytecodeProgram> program = a.Build();
  ASSERT_TRUE(program.ok());

  VmEnv env;
  env.tensors = &tensors;
  const Interpreter interp(env);
  Result<int64_t> interpreted = interp.Run(*program, {});
  Result<CompiledProgram> compiled = CompiledProgram::Compile(*program);
  ASSERT_TRUE(compiled.ok());
  Result<int64_t> jitted = compiled->Run(env, {});
  ASSERT_TRUE(interpreted.ok());
  ASSERT_TRUE(jitted.ok());
  EXPECT_EQ(*interpreted, *jitted);
  EXPECT_EQ(*jitted, 3);  // lane 3 has the largest value
}

}  // namespace
}  // namespace rkd
