// Tests for src/replay/: the experience log wire format (including every
// corruption mode), the recorder's bounded-buffer behavior, the replay
// engine's determinism contract on both VM tiers, the shadow gate, and the
// checked-in golden corpora.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/failpoints.h"
#include "src/bytecode/assembler.h"
#include "src/ml/decision_tree.h"
#include "src/replay/experience_log.h"
#include "src/replay/recorder.h"
#include "src/replay/replay.h"
#include "src/replay/shadow.h"
#include "src/rmt/control_plane.h"
#include "src/sim/mem/memory_sim.h"
#include "src/sim/mem/ml_prefetcher.h"
#include "src/sim/net/rx_datapath.h"
#include "src/sim/sched/cfs_sim.h"
#include "src/sim/sched/rmt_oracle.h"
#include "src/workloads/access_trace.h"
#include "src/workloads/cpu_jobs.h"

namespace rkd {
namespace {

// --- Wire-format helpers ---------------------------------------------------

ExperienceLog MakeSmallLog() {
  ExperienceLog log;
  log.source = "unit";
  ExperienceHookInfo hook;
  hook.name = "test.hook";
  hook.kind = HookKind::kGeneric;
  hook.decision_source = DecisionSource::kResult;
  hook.label_kind = "oracle_answer";
  log.hooks.push_back(hook);

  ExperienceRecord fire;
  fire.kind = ExperienceRecordKind::kFire;
  fire.hook_index = 0;
  fire.vtime = 42;
  fire.key = 7;
  fire.num_args = 2;
  fire.args[0] = -3;
  fire.args[1] = 99;
  fire.action = 5;
  fire.flags = kExperienceLabeled | kExperienceRecordedMatch;
  fire.label = 5;
  fire.ctxt_features = {1, 2, 3};
  log.records.push_back(fire);

  ExperienceRecord map_write;
  map_write.kind = ExperienceRecordKind::kMapWrite;
  map_write.map_id = 0;
  map_write.map_key = 1;
  map_write.map_value = -8;
  log.records.push_back(map_write);

  ExperienceRecord install;
  install.kind = ExperienceRecordKind::kModelInstall;
  install.model_slot = 0;
  install.model_bytes = {0xde, 0xad, 0xbe, 0xef};
  log.records.push_back(install);
  return log;
}

TEST(ExperienceLogTest, RoundTripPreservesEverything) {
  ExperienceLog log = MakeSmallLog();
  Result<std::vector<uint8_t>> bytes = SerializeExperienceLog(log);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  EXPECT_NE(log.fingerprint, 0u);

  Result<ExperienceLog> parsed = DeserializeExperienceLog(*bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->source, "unit");
  EXPECT_EQ(parsed->fingerprint, log.fingerprint);
  ASSERT_EQ(parsed->hooks.size(), 1u);
  EXPECT_EQ(parsed->hooks[0].name, "test.hook");
  EXPECT_EQ(parsed->hooks[0].decision_source, DecisionSource::kResult);
  EXPECT_EQ(parsed->hooks[0].label_kind, "oracle_answer");
  ASSERT_EQ(parsed->records.size(), 3u);
  const ExperienceRecord& fire = parsed->records[0];
  EXPECT_EQ(fire.kind, ExperienceRecordKind::kFire);
  EXPECT_EQ(fire.vtime, 42u);
  EXPECT_EQ(fire.key, 7u);
  ASSERT_EQ(fire.num_args, 2);
  EXPECT_EQ(fire.args[0], -3);
  EXPECT_EQ(fire.args[1], 99);
  EXPECT_EQ(fire.action, 5);
  EXPECT_EQ(fire.flags, kExperienceLabeled | kExperienceRecordedMatch);
  EXPECT_EQ(fire.ctxt_features, (std::vector<int32_t>{1, 2, 3}));
  EXPECT_EQ(parsed->records[1].map_value, -8);
  EXPECT_EQ(parsed->records[2].model_bytes,
            (std::vector<uint8_t>{0xde, 0xad, 0xbe, 0xef}));
}

TEST(ExperienceLogTest, BadMagicRejected) {
  ExperienceLog log = MakeSmallLog();
  std::vector<uint8_t> bytes = std::move(SerializeExperienceLog(log)).value();
  bytes[0] ^= 0xff;
  Result<ExperienceLog> parsed = DeserializeExperienceLog(bytes);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("bad magic"), std::string::npos);
}

TEST(ExperienceLogTest, VersionMismatchNamesBothVersions) {
  ExperienceLog log = MakeSmallLog();
  std::vector<uint8_t> bytes = std::move(SerializeExperienceLog(log)).value();
  bytes[4] = 99;  // version field follows the magic
  Result<ExperienceLog> parsed = DeserializeExperienceLog(bytes);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("version mismatch"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("99"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("1"), std::string::npos);
}

TEST(ExperienceLogTest, TruncationIsAnErrorNamingTheOffset) {
  ExperienceLog log = MakeSmallLog();
  std::vector<uint8_t> bytes = std::move(SerializeExperienceLog(log)).value();
  // Cut at every possible length: parsing must never crash, and once the cut
  // eats into the records it must name a byte offset — the tail is never
  // silently dropped.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    Result<ExperienceLog> parsed = DeserializeExperienceLog(truncated);
    ASSERT_FALSE(parsed.ok()) << "cut at " << cut << " parsed successfully";
  }
  // A cut inside the last record specifically reports "record at offset".
  std::vector<uint8_t> short_tail(bytes.begin(), bytes.end() - 1);
  Result<ExperienceLog> parsed = DeserializeExperienceLog(short_tail);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("record at offset"), std::string::npos);
}

TEST(ExperienceLogTest, BitFlipIsAChecksumErrorNamingTheOffset) {
  ExperienceLog log = MakeSmallLog();
  std::vector<uint8_t> bytes = std::move(SerializeExperienceLog(log)).value();
  std::vector<uint8_t> flipped = bytes;
  flipped[flipped.size() - 2] ^= 0x40;  // inside the last record's payload
  Result<ExperienceLog> parsed = DeserializeExperienceLog(flipped);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("checksum mismatch"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("record at offset"), std::string::npos);
}

TEST(ExperienceLogTest, TrailingBytesRejected) {
  ExperienceLog log = MakeSmallLog();
  std::vector<uint8_t> bytes = std::move(SerializeExperienceLog(log)).value();
  bytes.push_back(0x00);
  Result<ExperienceLog> parsed = DeserializeExperienceLog(bytes);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("trailing bytes"), std::string::npos);
}

TEST(ExperienceLogTest, WriteFailpointForcesAnError) {
  ExperienceLog log = MakeSmallLog();
  FailpointSpec fault;
  fault.mode = FailpointMode::kAlways;
  fault.force_error = true;
  ScopedFailpoint fp("replay.log_write", fault);
  Result<std::vector<uint8_t>> bytes = SerializeExperienceLog(log);
  ASSERT_FALSE(bytes.ok());
  EXPECT_EQ(bytes.status().code(), StatusCode::kInternal);
}

TEST(ExperienceLogTest, WriteFailpointCorruptionIsCaughtOnRead) {
  ExperienceLog log = MakeSmallLog();
  std::vector<uint8_t> bytes;
  {
    FailpointSpec fault;
    fault.mode = FailpointMode::kAlways;
    fault.corrupt_xor = 0x10;
    ScopedFailpoint fp("replay.log_write", fault);
    bytes = std::move(SerializeExperienceLog(log)).value();
  }
  Result<ExperienceLog> parsed = DeserializeExperienceLog(bytes);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("record at offset"), std::string::npos);
}

TEST(ExperienceLogTest, ReadFailpointInjectsBothFaultModes) {
  ExperienceLog log = MakeSmallLog();
  const std::vector<uint8_t> bytes = std::move(SerializeExperienceLog(log)).value();
  {
    FailpointSpec fault;
    fault.mode = FailpointMode::kAlways;
    fault.force_error = true;
    ScopedFailpoint fp("replay.log_read", fault);
    Result<ExperienceLog> parsed = DeserializeExperienceLog(bytes);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kInternal);
  }
  {
    FailpointSpec fault;
    fault.mode = FailpointMode::kAlways;
    fault.corrupt_xor = 0x04;
    ScopedFailpoint fp("replay.log_read", fault);
    Result<ExperienceLog> parsed = DeserializeExperienceLog(bytes);
    ASSERT_FALSE(parsed.ok());
    EXPECT_NE(parsed.status().message().find("record at offset"), std::string::npos);
  }
  // Clean read still works after the failpoints are gone.
  EXPECT_TRUE(DeserializeExperienceLog(bytes).ok());
}

// --- Recorder --------------------------------------------------------------

TEST(RecorderTest, BoundedBufferDropsWithoutCorruptingTheTail) {
  HookRegistry hooks;
  const HookId hook = std::move(hooks.Register("unit.hook", HookKind::kGeneric)).value();
  ExperienceRecorderConfig config;
  config.source = "unit";
  config.max_records = 1;
  ExperienceRecorder recorder(&hooks, config);
  ASSERT_TRUE(recorder.Track(hook, DecisionSource::kResult).ok());
  recorder.Attach();

  (void)hooks.Fire(hook, 1);
  const uint64_t first = recorder.last_fire(hook);
  ASSERT_NE(first, ExperienceRecorder::kNoFire);
  recorder.AnnotateDecision(first, 123);

  (void)hooks.Fire(hook, 2);  // buffer full: dropped
  EXPECT_EQ(recorder.recorded(), 1u);
  EXPECT_EQ(recorder.dropped(), 1u);
  // The dropped fire must not leave a stale handle behind — annotating "the
  // last fire" now is a no-op rather than clobbering record 0.
  EXPECT_EQ(recorder.last_fire(hook), ExperienceRecorder::kNoFire);
  recorder.AnnotateDecision(recorder.last_fire(hook), 999);
  recorder.SetLabel(recorder.last_fire(hook), 999);
  EXPECT_EQ(recorder.log().records[0].action, 123);
  EXPECT_EQ(recorder.log().records[0].flags & kExperienceLabeled, 0);
}

TEST(RecorderTest, UntrackedHooksFireUnrecorded) {
  HookRegistry hooks;
  const HookId tracked = std::move(hooks.Register("unit.a", HookKind::kGeneric)).value();
  const HookId untracked = std::move(hooks.Register("unit.b", HookKind::kGeneric)).value();
  ExperienceRecorder recorder(&hooks);
  ASSERT_TRUE(recorder.Track(tracked, DecisionSource::kResult).ok());
  recorder.Attach();
  (void)hooks.Fire(tracked, 1);
  (void)hooks.Fire(untracked, 2);
  EXPECT_EQ(recorder.recorded(), 1u);
  EXPECT_EQ(recorder.log().fire_count(), 1u);
}

// --- Corpus capture helpers (small, deterministic runs of both sims) -------

ExperienceLog RecordPrefetchCorpus() {
  Rng rng(2021);
  VideoResizeConfig video;
  video.frames = 3;
  const AccessTrace trace = MakeVideoResizeTrace(video, rng);
  MemSimConfig mem_config;
  mem_config.frame_capacity = 192;

  RmtMlPrefetcher prefetcher;
  EXPECT_TRUE(prefetcher.Init().ok());
  ExperienceRecorderConfig config;
  config.source = "prefetch";
  ExperienceRecorder recorder(&prefetcher.hooks(), config);
  EXPECT_TRUE(prefetcher.AttachRecorder(&recorder).ok());
  MemorySim sim(mem_config, &prefetcher);
  (void)sim.Run(trace);
  return recorder.TakeLog();
}

ModelPtr MakeConstantTree(int32_t label) {
  Dataset data(1);
  data.Add(std::array<int32_t, 1>{0}, label);
  data.Add(std::array<int32_t, 1>{1}, label);
  return std::make_shared<DecisionTree>(std::move(DecisionTree::Train(data)).value());
}

ExperienceLog RecordSchedCorpus() {
  JobConfig job_config;
  job_config.num_tasks = 6;
  job_config.base_work = 400;
  const JobSpec job = MakeJob(JobKind::kStreamcluster, job_config);
  CfsSim sim(SchedConfig{});

  RmtMigrationOracle oracle;
  EXPECT_TRUE(oracle.Init().ok());
  ExperienceRecorderConfig config;
  config.source = "sched";
  ExperienceRecorder recorder(&oracle.hooks(), config);
  EXPECT_TRUE(oracle.AttachRecorder(&recorder).ok());
  // Installed after attach, so the corpus carries the kModelInstall record
  // and replay resolves the same kMlCall the incumbent did.
  EXPECT_TRUE(oracle.InstallModel(MakeConstantTree(1)).ok());
  (void)sim.Run(job, oracle.AsOracle());
  return recorder.TakeLog();
}

RmtProgramSpec BrokenSchedSpec() {
  Assembler a("broken_const", HookKind::kSchedMigrate);
  a.MovImm(0, 1000);
  a.Exit();
  RmtProgramSpec spec;
  spec.name = "broken_sched_prog";
  RmtTableSpec table;
  table.name = "broken_tab";
  table.hook_point = "sched.can_migrate_task";
  table.actions.push_back(std::move(a.Build()).value());
  table.default_action = 0;
  spec.tables.push_back(std::move(table));
  return spec;
}

// --- Replay determinism ----------------------------------------------------

// Records one corpus from a live sim, then replays its own program spec
// twice per VM tier: every serialized report must be byte-identical to its
// twin, and the decision statistics must agree across tiers.
void CheckDeterministicReplay(const ExperienceLog& log, const RmtProgramSpec& spec) {
  ASSERT_GT(log.fire_count(), 0u);
  ReplayEngine engine;
  std::string first_jit;
  for (const ExecTier tier : {ExecTier::kInterpreter, ExecTier::kJit}) {
    ReplayOptions options;
    options.tier = tier;
    Result<DivergenceReport> a = engine.Replay(log, spec, options);
    Result<DivergenceReport> b = engine.Replay(log, spec, options);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->Serialize(), b->Serialize());  // byte-identical per tier
    EXPECT_EQ(a->decision_match_rate(), 1.0);   // own program: zero divergence
    EXPECT_EQ(a->counterfactual_score(), a->recorded_score());
    EXPECT_EQ(a->total_exec_errors(), 0u);
    if (tier == ExecTier::kJit) {
      first_jit = a->Serialize();
    }
  }
  ASSERT_FALSE(first_jit.empty());
}

TEST(ReplayTest, PrefetchReplayIsDeterministicOnBothTiers) {
  const ExperienceLog log = RecordPrefetchCorpus();
  CheckDeterministicReplay(log, RmtMlPrefetcher().BuildProgramSpec("replay_candidate"));
}

TEST(ReplayTest, SchedReplayIsDeterministicOnBothTiers) {
  const ExperienceLog log = RecordSchedCorpus();
  CheckDeterministicReplay(log, RmtMigrationOracle().BuildProgramSpec("replay_candidate"));
}

TEST(ReplayTest, BrokenCandidateDivergesCompletely) {
  const ExperienceLog log = RecordSchedCorpus();
  ReplayEngine engine;
  Result<DivergenceReport> report = engine.Replay(log, BrokenSchedSpec());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // MovImm r0, 1000 never matches a recorded 0/1/sentinel decision.
  EXPECT_EQ(report->decision_match_rate(), 0.0);
  EXPECT_LT(report->counterfactual_score(), report->recorded_score());
}

TEST(ReplayTest, SerializedCorpusReplaysIdenticallyToInMemory) {
  ExperienceLog log = RecordSchedCorpus();
  std::vector<uint8_t> bytes = std::move(SerializeExperienceLog(log)).value();
  const ExperienceLog parsed = std::move(DeserializeExperienceLog(bytes)).value();
  const RmtProgramSpec spec = RmtMigrationOracle().BuildProgramSpec("replay_candidate");
  ReplayEngine engine;
  Result<DivergenceReport> from_memory = engine.Replay(log, spec);
  Result<DivergenceReport> from_bytes = engine.Replay(parsed, spec);
  ASSERT_TRUE(from_memory.ok());
  ASSERT_TRUE(from_bytes.ok());
  EXPECT_EQ(from_memory->Serialize(), from_bytes->Serialize());
}

// --- Shadow gate -----------------------------------------------------------

TEST(ShadowGateTest, InstallShadowedRequiresAnEvaluator) {
  RmtMigrationOracle oracle;
  ASSERT_TRUE(oracle.Init().ok());
  Result<ControlPlane::ShadowedInstall> result = oracle.control_plane().InstallShadowed(
      oracle.handle(), oracle.BuildProgramSpec("candidate"), ControlPlane::CanaryConfig{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ShadowGateTest, EvaluateWithoutCorpusFails) {
  ShadowGate gate;
  Result<ShadowEvaluator::Verdict> verdict =
      gate.Evaluate(RmtMigrationOracle().BuildProgramSpec("candidate"), ExecTier::kJit);
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.status().code(), StatusCode::kFailedPrecondition);
}

// The acceptance demo as a test, on both tiers: a deliberately broken
// candidate is rejected (with a flight-recorder dump), the incumbent's own
// spec is admitted to canary.
void CheckShadowGateEndToEnd(ExecTier tier) {
  const ExperienceLog log = RecordSchedCorpus();

  RmtMigrationOracle oracle;
  ASSERT_TRUE(oracle.Init().ok());
  ControlPlane& cp = oracle.control_plane();

  ShadowGateConfig gate_config;
  gate_config.flight_recorder_dir = ::testing::TempDir();
  ShadowGate gate(gate_config, &cp.telemetry());
  gate.AddCorpus(log);
  cp.set_shadow_evaluator(&gate);

  ControlPlane::CanaryConfig canary;
  canary.canary_permille = 200;
  canary.soak_min_execs = 16;

  Result<ControlPlane::ShadowedInstall> broken =
      cp.InstallShadowed(oracle.handle(), BrokenSchedSpec(), canary, tier);
  ASSERT_TRUE(broken.ok()) << broken.status().ToString();
  EXPECT_FALSE(broken->verdict.admitted);
  EXPECT_FALSE(broken->verdict.reason.empty());
  EXPECT_LT(broken->rollout, 0);
  EXPECT_EQ(cp.installed_count(), 1u);  // the reject never touched the hooks
  ASSERT_EQ(gate.flight_dumps(), 1u);
  std::FILE* dump = std::fopen(gate.last_flight_dump().c_str(), "rb");
  ASSERT_NE(dump, nullptr) << gate.last_flight_dump();
  std::string contents;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), dump)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(dump);
  EXPECT_NE(contents.find("broken_sched_prog"), std::string::npos);
  EXPECT_NE(contents.find("traceEvents"), std::string::npos);

  Result<ControlPlane::ShadowedInstall> good = cp.InstallShadowed(
      oracle.handle(), oracle.BuildProgramSpec("sched_candidate"), canary, tier);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_TRUE(good->verdict.admitted) << good->verdict.reason;
  EXPECT_GE(good->rollout, 0);
  EXPECT_EQ(good->verdict.decision_match_rate, 1.0);
  EXPECT_EQ(cp.Metrics().shadow_evals->value(), 2u);
  EXPECT_EQ(cp.Metrics().shadow_admits->value(), 1u);
  EXPECT_EQ(cp.Metrics().shadow_rejects->value(), 1u);
}

TEST(ShadowGateTest, RejectsBrokenAdmitsIncumbentJit) {
  CheckShadowGateEndToEnd(ExecTier::kJit);
}

TEST(ShadowGateTest, RejectsBrokenAdmitsIncumbentInterpreter) {
  CheckShadowGateEndToEnd(ExecTier::kInterpreter);
}

// --- Golden corpora --------------------------------------------------------

// Regression: the incumbents must keep passing the gate over the checked-in
// corpora on both tiers. A failure means the replay semantics, the wire
// format, or the incumbent programs drifted incompatibly.
void CheckGoldenCorpus(const std::string& file, const RmtProgramSpec& spec) {
  const std::string path = std::string(RKD_TEST_DATA_DIR) + "/" + file;
  Result<ExperienceLog> log = ReadExperienceLog(path);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  ASSERT_GT(log->fire_count(), 0u);

  ShadowGate gate;
  gate.AddCorpus(*log);
  for (const ExecTier tier : {ExecTier::kInterpreter, ExecTier::kJit}) {
    Result<ShadowEvaluator::Verdict> verdict = gate.Evaluate(spec, tier);
    ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
    EXPECT_TRUE(verdict->admitted) << verdict->reason;
    EXPECT_EQ(verdict->decision_match_rate, 1.0);
    EXPECT_EQ(verdict->replay_exec_errors, 0u);
  }
}

TEST(GoldenCorpusTest, PrefetchIncumbentPassesTheGate) {
  CheckGoldenCorpus("golden_prefetch.rkdr",
                    RmtMlPrefetcher().BuildProgramSpec("golden_candidate"));
}

TEST(GoldenCorpusTest, SchedIncumbentPassesTheGate) {
  CheckGoldenCorpus("golden_sched.rkdr",
                    RmtMigrationOracle().BuildProgramSpec("golden_candidate"));
}

TEST(GoldenCorpusTest, NetIncumbentPassesTheGate) {
  CheckGoldenCorpus("golden_net.rkdr",
                    RmtRxDatapath(NetConfig{}, RxPolicyKind::kHeuristic)
                        .BuildProgramSpec(RxPolicyKind::kHeuristic, "golden_candidate"));
}

// The determinism contract, stated on the checked-in net corpus: the same
// (corpus, candidate) pair must serialize byte-identically on every run, and
// the two VM tiers must agree on everything but the tier label itself.
TEST(GoldenCorpusTest, NetReplayReportIsByteIdenticalAcrossRunsAndTiers) {
  const std::string path = std::string(RKD_TEST_DATA_DIR) + "/golden_net.rkdr";
  Result<ExperienceLog> log = ReadExperienceLog(path);
  ASSERT_TRUE(log.ok()) << log.status().ToString();

  ReplayEngine engine;
  auto replay_once = [&](RxPolicyKind policy, ExecTier tier) {
    ReplayOptions options;
    options.tier = tier;
    const RmtProgramSpec spec = RmtRxDatapath(NetConfig{}, policy)
                                    .BuildProgramSpec(policy, "golden_candidate");
    Result<DivergenceReport> report = engine.Replay(*log, spec, options);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report.ok() ? report->Serialize() : std::string();
  };

  for (const RxPolicyKind policy : {RxPolicyKind::kHeuristic, RxPolicyKind::kLearned}) {
    const std::string jit_a = replay_once(policy, ExecTier::kJit);
    const std::string jit_b = replay_once(policy, ExecTier::kJit);
    EXPECT_EQ(jit_a, jit_b);
    std::string interp = replay_once(policy, ExecTier::kInterpreter);
    const size_t at = interp.find("\"tier\":\"interpreter\"");
    ASSERT_NE(at, std::string::npos);
    interp.replace(at, std::strlen("\"tier\":\"interpreter\""), "\"tier\":\"jit\"");
    EXPECT_EQ(jit_a, interp);
  }
}

// The golden corpus carries the incumbent's model-install record; the
// learned candidate replayed over it must out-predict the recorded static
// RSS decisions on the ideal-decision labels.
TEST(GoldenCorpusTest, NetLearnedCandidateBeatsRecordedOnTheGoldenCorpus) {
  const std::string path = std::string(RKD_TEST_DATA_DIR) + "/golden_net.rkdr";
  Result<ExperienceLog> log = ReadExperienceLog(path);
  ASSERT_TRUE(log.ok()) << log.status().ToString();

  ReplayEngine engine;
  const RmtProgramSpec spec =
      RmtRxDatapath(NetConfig{}, RxPolicyKind::kLearned)
          .BuildProgramSpec(RxPolicyKind::kLearned, "golden_learned");
  Result<DivergenceReport> report = engine.Replay(*log, spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->model_install_rejects, 0u);
  EXPECT_EQ(report->total_exec_errors(), 0u);
  EXPECT_GT(report->labeled_fires(), 0u);
  EXPECT_GT(report->counterfactual_score(), report->recorded_score());
}

}  // namespace
}  // namespace rkd
