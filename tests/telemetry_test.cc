// Tests for the unified telemetry core: histogram bucket math, trace-ring
// wraparound, exporter output, and the concurrency contract.
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/telemetry/export.h"
#include "src/telemetry/telemetry.h"

namespace rkd {
namespace {

// ---------------------------------------------------------------------------
// Counter / Gauge basics.
// ---------------------------------------------------------------------------

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(CounterTest, TwoThreadIncrementSmoke) {
  Counter c;
  constexpr uint64_t kPerThread = 100'000;
  std::thread a([&] {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      c.Increment();
    }
  });
  std::thread b([&] {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      c.Increment();
    }
  });
  a.join();
  b.join();
  EXPECT_EQ(c.value(), 2 * kPerThread);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.Set(0.25);
  g.Set(0.97);
  EXPECT_DOUBLE_EQ(g.value(), 0.97);
}

// ---------------------------------------------------------------------------
// Histogram bucket boundaries: log2 edges and overflow.
// ---------------------------------------------------------------------------

TEST(LatencyHistogramTest, BucketIndexLog2Edges) {
  // Bucket 0 = {0}; bucket i = [2^(i-1), 2^i - 1].
  EXPECT_EQ(LatencyHistogram::BucketIndex(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1), 1u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(2), 2u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(3), 2u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(4), 3u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(7), 3u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(8), 4u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1023), 10u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1024), 11u);
}

TEST(LatencyHistogramTest, OverflowLandsInLastBucket) {
  // The last finite edge is 2^(kNumBuckets-2) - 1; anything at or above
  // 2^(kNumBuckets-2) overflows.
  constexpr uint64_t kFirstOverflow = 1ull << (LatencyHistogram::kNumBuckets - 2);
  EXPECT_EQ(LatencyHistogram::BucketIndex(kFirstOverflow - 1),
            LatencyHistogram::kNumBuckets - 2);
  EXPECT_EQ(LatencyHistogram::BucketIndex(kFirstOverflow),
            LatencyHistogram::kNumBuckets - 1);
  EXPECT_EQ(LatencyHistogram::BucketIndex(~0ull), LatencyHistogram::kNumBuckets - 1);

  LatencyHistogram h;
  h.Record(~0ull);
  EXPECT_EQ(h.bucket_count(LatencyHistogram::kNumBuckets - 1), 1u);
}

TEST(LatencyHistogramTest, BucketUpperBoundMatchesIndexContract) {
  // Every bucket's inclusive upper edge must itself land in that bucket, and
  // edge+1 must land in the next (except the unbounded overflow bucket).
  for (size_t i = 0; i + 1 < LatencyHistogram::kNumBuckets; ++i) {
    const uint64_t edge = LatencyHistogram::BucketUpperBound(i);
    EXPECT_EQ(LatencyHistogram::BucketIndex(edge), i) << "bucket " << i;
    EXPECT_EQ(LatencyHistogram::BucketIndex(edge + 1), i + 1) << "bucket " << i;
  }
}

TEST(LatencyHistogramTest, RecordUpdatesCountSumAndBuckets) {
  LatencyHistogram h;
  h.Record(0);
  h.Record(1);
  h.Record(2);
  h.Record(3);
  h.Record(100);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 106u);
  EXPECT_DOUBLE_EQ(h.mean(), 106.0 / 5.0);
  EXPECT_EQ(h.bucket_count(0), 1u);  // {0}
  EXPECT_EQ(h.bucket_count(1), 1u);  // {1}
  EXPECT_EQ(h.bucket_count(2), 2u);  // {2, 3}
  EXPECT_EQ(h.bucket_count(7), 1u);  // [64, 127] holds 100
}

TEST(LatencyHistogramTest, ApproxPercentileReturnsBucketUpperEdge) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) {
    h.Record(3);  // bucket 2, edge 3
  }
  for (int i = 0; i < 10; ++i) {
    h.Record(1000);  // bucket 10, edge 1023
  }
  EXPECT_DOUBLE_EQ(h.ApproxPercentile(50), 3.0);
  EXPECT_DOUBLE_EQ(h.ApproxPercentile(99), 1023.0);
  EXPECT_DOUBLE_EQ(h.ApproxPercentile(100), 1023.0);
  LatencyHistogram empty;
  EXPECT_DOUBLE_EQ(empty.ApproxPercentile(50), 0.0);
}

// ---------------------------------------------------------------------------
// Trace ring: wraparound, totals, oldest-first snapshots.
// ---------------------------------------------------------------------------

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(1).capacity(), 2u);
  EXPECT_EQ(TraceRing(4).capacity(), 4u);
  EXPECT_EQ(TraceRing(5).capacity(), 8u);
}

TEST(TraceRingTest, WraparoundKeepsNewestOldestFirst) {
  TraceRing ring(4);
  for (uint64_t i = 0; i < 6; ++i) {
    TraceEvent ev;
    ev.key = i;
    ring.Push(ev);
  }
  EXPECT_EQ(ring.total(), 6u);
  EXPECT_EQ(ring.dropped(), 2u);
  const std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Events 0 and 1 were overwritten; 2..5 remain, oldest first.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].key, i + 2) << "slot " << i;
  }
}

TEST(TraceRingTest, PartialFillSnapshotsOnlyPushedEvents) {
  TraceRing ring(8);
  TraceEvent ev;
  ev.key = 7;
  ring.Push(ev);
  EXPECT_EQ(ring.total(), 1u);
  EXPECT_EQ(ring.dropped(), 0u);
  const std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].key, 7u);
}

// ---------------------------------------------------------------------------
// Registry: find-or-create semantics and stable pointers.
// ---------------------------------------------------------------------------

TEST(TelemetryRegistryTest, FindOrCreateReturnsStablePointers) {
  TelemetryRegistry registry;
  Counter* c1 = registry.GetCounter("rkd.test.counter");
  Counter* c2 = registry.GetCounter("rkd.test.counter");
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c1, c2);  // same name -> same instance

  // Creating many other metrics must not invalidate the first pointer.
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("rkd.test.other." + std::to_string(i));
  }
  c1->Increment();
  EXPECT_EQ(registry.GetCounter("rkd.test.counter")->value(), 1u);

  // Namespaces are per-kind: a gauge and a histogram may share the name.
  EXPECT_NE(static_cast<void*>(registry.GetGauge("rkd.test.counter")), nullptr);
  EXPECT_EQ(registry.GetHistogram("rkd.test.h"), registry.GetHistogram("rkd.test.h"));
}

TEST(TelemetryRegistryTest, SnapshotsAreSortedByName) {
  TelemetryRegistry registry;
  registry.GetCounter("b");
  registry.GetCounter("a");
  registry.GetCounter("c");
  const auto counters = registry.Counters();
  ASSERT_EQ(counters.size(), 3u);
  EXPECT_EQ(counters[0].first, "a");
  EXPECT_EQ(counters[1].first, "b");
  EXPECT_EQ(counters[2].first, "c");
}

// ---------------------------------------------------------------------------
// Exporters.
// ---------------------------------------------------------------------------

TEST(ExportTest, PrometheusGoldenForCountersAndGauges) {
  TelemetryRegistry registry;
  registry.GetCounter("rkd.hook.demo.fires")->Increment(3);
  registry.GetGauge("rkd.cp.adapt.accuracy")->Set(0.5);
  EXPECT_EQ(ExportPrometheus(registry),
            "# TYPE rkd_hook_demo_fires counter\n"
            "rkd_hook_demo_fires 3\n"
            "# TYPE rkd_cp_adapt_accuracy gauge\n"
            "rkd_cp_adapt_accuracy 0.5\n");
}

TEST(ExportTest, PrometheusHistogramHasCumulativeBucketsAndInf) {
  TelemetryRegistry registry;
  LatencyHistogram* h = registry.GetHistogram("rkd.vm.run_ns");
  h->Record(1);
  h->Record(3);
  h->Record(3);
  const std::string text = ExportPrometheus(registry);
  EXPECT_NE(text.find("# TYPE rkd_vm_run_ns histogram\n"), std::string::npos);
  EXPECT_NE(text.find("rkd_vm_run_ns_bucket{le=\"1\"} 1\n"), std::string::npos);
  // le="3" is cumulative: the one sample at 1 plus two at 3.
  EXPECT_NE(text.find("rkd_vm_run_ns_bucket{le=\"3\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("rkd_vm_run_ns_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("rkd_vm_run_ns_sum 7\n"), std::string::npos);
  EXPECT_NE(text.find("rkd_vm_run_ns_count 3\n"), std::string::npos);
}

TEST(ExportTest, JsonIncludesAllSectionsAndTrace) {
  TelemetryRegistry registry(/*trace_capacity=*/4);
  registry.GetCounter("rkd.test.c")->Increment(2);
  registry.GetGauge("rkd.test.g")->Set(1.5);
  registry.GetHistogram("rkd.test.h")->Record(5);
  TraceEvent ev;
  ev.source = 9;
  ev.kind = kHookFireEvent;
  ev.key = 42;
  ev.value = -1;
  registry.trace().Push(ev);

  const std::string json = ExportJson(registry);
  EXPECT_NE(json.find("\"rkd.test.c\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"rkd.test.g\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"sum\": 5"), std::string::npos);
  EXPECT_NE(json.find("{\"le\": 7, \"count\": 1}"), std::string::npos);
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
  EXPECT_NE(json.find("\"key\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"value\": -1"), std::string::npos);
}

TEST(ExportTest, JsonCanOmitTrace) {
  TelemetryRegistry registry;
  JsonExportOptions options;
  options.include_trace = false;
  const std::string json = ExportJson(registry, options);
  EXPECT_EQ(json.find("\"trace\""), std::string::npos);
}

}  // namespace
}  // namespace rkd
